"""E7 — §5.5: concurrent solution of many small LPs on one GPU.

Claims reproduced: "dozens of branch-and-cut nodes could be solved
simultaneously"; batching amortizes launch latency so throughput climbs
with batch size until the device saturates; the two §5.5 structuring
options — asynchronous streams vs a batched (MAGMA-style) routine — both
beat serial launches, with the batched routine ahead.
"""

import numpy as np

from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import V100
from repro.lp.batch_simplex import solve_lp_batch
from repro.problems.knapsack import generate_knapsack
from repro.reporting import render_series

BATCH_SIZES = [1, 4, 16, 64, 256]
NUM_ITEMS = 12  # small LP per node, as in §5.5


def make_batch(k):
    return [generate_knapsack(NUM_ITEMS, seed=1000 + i).relaxation() for i in range(k)]


def _single_lp_kernel_stream(device, m, n, iters, stream=None):
    """Charge one small LP's simplex kernel sequence."""
    device._charge(K.getrf_kernel(m), stream)
    for _ in range(iters):
        device._charge(K.trsv_kernel(m), stream)
        device._charge(K.trsv_kernel(m), stream)
        device._charge(K.gemv_kernel(n, m), stream)


def run_sweep():
    # First, measure the true lockstep iteration count per batch size by
    # actually solving the LPs (numerics are exact).
    rows = []
    for k in BATCH_SIZES:
        lps = make_batch(k)
        m = lps[0].num_ub_rows + NUM_ITEMS  # knapsack row + ub rows
        n = NUM_ITEMS + m

        # (a) serial: one LP after another, synchronous launches.
        serial_dev = Device(V100)
        batch_res = solve_lp_batch(lps)
        assert batch_res.all_ok
        iters = max(1, batch_res.iterations)
        for _ in range(k):
            _single_lp_kernel_stream(serial_dev, m, n, iters)
        serial_time = serial_dev.clock.now

        # (b) streams: each LP on its own stream, overlap to occupancy.
        stream_dev = Device(V100)
        for _ in range(k):
            stream = stream_dev.create_stream()
            _single_lp_kernel_stream(stream_dev, m, n, iters, stream=stream)
        stream_dev.synchronize()
        stream_time = stream_dev.clock.now

        # (c) batched: one lockstep kernel sequence for the whole batch.
        batched_dev = Device(V100)
        batched_dev._charge(K.batched_getrf_kernel(k, m), None)
        for _ in range(iters):
            batched_dev._charge(K.batched_trsv_kernel(k, m), None)
            batched_dev._charge(K.batched_trsv_kernel(k, m), None)
            batched_dev._charge(K.batched_gemm_kernel(k, 1, n, m), None)
        batched_time = batched_dev.clock.now

        rows.append(
            (
                k,
                k / serial_time,
                k / stream_time,
                k / batched_time,
            )
        )
    return rows


def test_e7_concurrent_small(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    ks = [r[0] for r in rows]
    series = render_series(
        "batch",
        ks,
        [
            ("serial LP/s", [round(r[1]) for r in rows]),
            ("streams LP/s", [round(r[2]) for r in rows]),
            ("batched LP/s", [round(r[3]) for r in rows]),
        ],
        title="E7 — small-LP throughput vs concurrency (V100, knapsack-12 relaxations)",
    )
    last = rows[-1]
    # Both concurrency schemes beat serial; batched leads at scale.
    assert last[2] > 2 * last[1]
    assert last[3] > last[2]
    # Serial throughput is flat; batched grows with k.
    assert rows[-1][3] > 5 * rows[0][3]
    report.add("E7_concurrent_small", series)
