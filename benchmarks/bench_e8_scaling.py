"""E8 — §2.2/§2.3: supervisor–worker scaling of distributed B&B.

Claims reproduced: UG-style supervisor–worker parallel branch-and-bound
(ParaSCIP's layout) speeds up with workers until the tree's parallelism
saturates; ramp-up and dynamic load balancing are what keep the workers
busy (the ablation rows show the static-partitioning collapse on skewed
trees).
"""

from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.reporting import format_seconds, render_series, render_table
from repro.strategies.distributed import solve_distributed

WORKERS = [1, 2, 4, 8, 16]


def run_scaling():
    problem = generate_knapsack(22, seed=11, correlation="strong")
    expected, _ = knapsack_dp_optimal(problem)
    baseline = solve_distributed(problem, num_workers=0)
    assert abs(baseline.objective - expected) < 1e-6
    rows = []
    for workers in WORKERS:
        run = solve_distributed(problem, num_workers=workers)
        assert abs(run.objective - expected) < 1e-6
        speedup = baseline.makespan_seconds / run.makespan_seconds
        balance = (
            min(run.per_worker) / max(run.per_worker) if run.per_worker else 1.0
        )
        rows.append((workers, run.makespan_seconds, speedup, balance, run.messages))
    return baseline, rows


def run_balancing_ablation():
    problem = generate_knapsack(20, seed=5, correlation="strong")
    rows = []
    for label, kwargs in (
        ("dynamic + ramp-up", dict(dynamic_load_balancing=True, ramp_up=True)),
        ("dynamic, no ramp-up", dict(dynamic_load_balancing=True, ramp_up=False)),
        ("static", dict(dynamic_load_balancing=False, ramp_up=True)),
    ):
        run = solve_distributed(problem, num_workers=4, **kwargs)
        balance = (
            min(run.per_worker) / max(run.per_worker) if run.per_worker else 1.0
        )
        rows.append(
            (
                label,
                format_seconds(run.makespan_seconds),
                run.nodes_evaluated,
                round(balance, 3),
            )
        )
    return rows


def test_e8_scaling(benchmark, report):
    baseline, rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    speedups = [r[2] for r in rows]
    # Speedup grows then saturates; never super-linear past the node count.
    assert speedups[1] > speedups[0]
    assert speedups[-1] >= 2.0
    series = render_series(
        "workers",
        [r[0] for r in rows],
        [
            ("speedup", [round(s, 2) for s in speedups]),
            ("balance", [round(r[3], 2) for r in rows]),
            ("messages", [r[4] for r in rows]),
        ],
        title=(
            "E8 — supervisor–worker scaling "
            f"(sequential baseline {format_seconds(baseline.makespan_seconds)})"
        ),
    )
    ablation = render_table(
        ["configuration", "makespan", "nodes", "min/max balance"],
        run_balancing_ablation(),
        title="E8b — UG mechanisms ablation (4 workers): ramp-up & balancing",
    )
    report.add("E8_scaling", series + "\n\n" + ablation)
