"""E3 — §4/§5.4: dense vs sparse linear algebra across density.

Claim reproduced: "dense linear algebra is much more efficient on GPUs,
and sparse matrix computations are generally not as efficient"; sparse
work belongs on the CPU (strategy 3), and the runtime "super-MIP"
chooser must pick per input.  The experiment solves the *same* LP
through the dense-GPU, sparse-GPU and sparse-CPU metered paths and also
prints the analytic per-iteration estimates at scale, where the
dense-GPU path overtakes.
"""

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import CPU_HOST, V100
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.reporting import format_seconds, render_series, render_table
from repro.strategies.chooser import estimate_paths
from repro.strategies.engine import DeviceCostHook


def make_lp(n, m, density, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    if density < 1.0:
        a[rng.random((m, n)) > density] = 0.0
    x0 = rng.random(n) * 2
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=a,
        b_ub=a @ x0 + 0.5,
        ub=np.full(n, 10.0),
    )


def solve_on_path(lp, mode, spec, density):
    device = Device(spec)
    hook = DeviceCostHook(device, mode=mode, density=density)
    res = solve_lp(lp, hook=hook)
    assert res.status is LPStatus.OPTIMAL
    return device.clock.now


def run_measured_sweep():
    rows = []
    densities = [0.02, 0.1, 0.3, 1.0]
    for density in densities:
        lp = make_lp(96, 64, density, seed=int(density * 100))
        dense_gpu = solve_on_path(lp, "dense", V100, density)
        sparse_gpu = solve_on_path(lp, "sparse", V100, density)
        sparse_cpu = solve_on_path(lp, "sparse", CPU_HOST, density)
        rows.append((density, dense_gpu, sparse_gpu, sparse_cpu))
    return rows


def analytic_scale_table():
    rows = []
    for m, n in ((512, 1024), (2048, 4096), (8192, 16384)):
        for density in (0.01, 0.3, 1.0):
            est = estimate_paths(m, n, density)
            rows.append(
                (
                    f"{m}x{n}",
                    density,
                    format_seconds(est.dense_gpu_seconds),
                    format_seconds(est.sparse_gpu_seconds),
                    format_seconds(est.sparse_cpu_seconds),
                    format_seconds(est.dense_cpu_seconds),
                    est.choice.value,
                )
            )
    return rows


def test_e3_dense_vs_sparse(benchmark, report):
    rows = benchmark.pedantic(run_measured_sweep, rounds=1, iterations=1)
    densities = [r[0] for r in rows]
    series = render_series(
        "density",
        densities,
        [
            ("dense-GPU s", [r[1] for r in rows]),
            ("sparse-GPU s", [r[2] for r in rows]),
            ("sparse-CPU s", [r[3] for r in rows]),
        ],
        title="E3 — metered LP solve time vs matrix density (96x64 LP)",
    )
    # The paper's asymmetry: sparse on GPU is the worst path everywhere.
    for _, dense_gpu, sparse_gpu, _cpu in rows:
        assert sparse_gpu > dense_gpu
    table = render_table(
        ["shape", "density", "dense-GPU", "sparse-GPU", "sparse-CPU", "dense-CPU", "chooser"],
        analytic_scale_table(),
        title="E3b — per-iteration estimates at scale (crossover to dense-GPU)",
    )
    report.add("E3_dense_vs_sparse", series + "\n\n" + table)
