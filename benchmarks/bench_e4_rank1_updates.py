"""E4 — §5.1: rank-1 basis updates on a resident matrix.

Claims reproduced: (a) during the simplex's iterative re-solves "the GPU
linear algebra will be exercised … with rank-1 updates and resolving the
updated matrix repeatedly with *no data transfer* from host to device or
vice versa"; (b) the eta-update scheme beats refactorizing every
iteration, with the refactor cadence a tunable (the DESIGN.md ablation).
"""

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_lp
from repro.reporting import format_seconds, render_table
from repro.strategies.engine import DeviceCostHook


def make_lp(n, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    x0 = rng.random(n)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=a,
        b_ub=a @ x0 + 1.0,
        ub=np.full(n, 10.0),
    )


def run_sweep():
    rows = []
    for m, n in ((24, 36), (48, 72), (80, 120)):
        lp = make_lp(n, m, seed=m)
        for interval, label in ((1, "refactor every iter"), (16, "eta, refactor/16"), (64, "eta, refactor/64")):
            device = Device(V100)
            hook = DeviceCostHook(device, mode="dense")
            transfers_before = device.transfers.total_transfers
            res = solve_lp(lp, SimplexOptions(refactor_interval=interval), hook=hook)
            assert res.status is LPStatus.OPTIMAL
            iteration_transfers = device.transfers.total_transfers - transfers_before
            rows.append(
                (
                    f"{m}x{n}",
                    label,
                    res.iterations,
                    device.metrics.count("kernels.getrf"),
                    format_seconds(device.clock.now),
                    iteration_transfers,
                )
            )
    return rows


def test_e4_rank1_updates(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Zero-transfer claim: no host<->device traffic inside the solve.
    assert all(r[5] == 0 for r in rows)
    # Eta updates beat refactor-every-iteration at every size (compare
    # the simulated times of rows paired per size).
    for i in range(0, len(rows), 3):
        every_iter = rows[i]
        eta64 = rows[i + 2]
        assert every_iter[3] > eta64[3]  # far more getrf kernels
    table = render_table(
        ["LP size", "basis scheme", "simplex iters", "getrf kernels", "sim time", "transfers"],
        rows,
        title="E4 — eta updates vs refactorization (resident basis, V100)",
    )
    report.add("E4_rank1_updates", table)
