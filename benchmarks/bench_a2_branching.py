"""A2 (ablation) — branching rules: tree size vs per-node effort.

DESIGN.md ablation: most-fractional is free but myopic; pseudocost
learns degradations and shrinks trees at negligible cost; strong
branching probes child LPs (expensive per node, smallest trees — and a
natural batched GPU workload, §5.5).
"""

from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.random_mip import generate_random_mip
from repro.reporting import render_table

RULES = ["most_fractional", "pseudocost", "reliability", "strong"]
INSTANCES = [
    ("rand-14x10", lambda: generate_random_mip(14, 10, seed=21, bound=4.0)),
    ("rand-16x8", lambda: generate_random_mip(16, 8, seed=5, bound=3.0)),
]


def run_rules():
    rows = []
    for name, make in INSTANCES:
        objectives = {}
        for rule in RULES:
            problem = make()
            solver = BranchAndBoundSolver(
                problem, SolverOptions(branching=rule)
            )
            result = solver.solve()
            assert result.status is MIPStatus.OPTIMAL
            objectives[rule] = result.objective
            rows.append(
                (
                    name,
                    rule,
                    result.stats.nodes_processed,
                    result.stats.lp_iterations,
                )
            )
        values = list(objectives.values())
        assert max(values) - min(values) < 1e-6, "branching changed the optimum"
    return rows


def test_a2_branching_rules(benchmark, report):
    rows = benchmark.pedantic(run_rules, rounds=1, iterations=1)
    # Strong branching's smaller trees are the whole point of its cost.
    for name in {r[0] for r in rows}:
        by_rule = {r[1]: r for r in rows if r[0] == name}
        assert by_rule["strong"][2] < by_rule["most_fractional"][2]
        assert by_rule["pseudocost"][2] <= by_rule["most_fractional"][2]
    table = render_table(
        ["instance", "branching", "nodes", "total LP iterations"],
        rows,
        title="A2 — branching-rule ablation (tree size vs per-node work)",
    )
    report.add("A2_branching", table)
