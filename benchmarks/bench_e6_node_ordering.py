"""E6 — §5.3: GPU-locality-aware node evaluation ordering.

Claim reproduced: "a GPU-based parallel MIP solver must strive to reuse
the matrix on the GPU across as many branch-and-cut nodes as possible.
This may warrant the use of a GPU-specific scheduling policy that picks
the next node to evaluate" — i.e. a locality-aware order cuts the
subtree jumps (each a basis re-upload/refactorization on real hardware)
relative to best-first, at a bounded cost in extra nodes.
"""

from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.reporting import render_table

POLICIES = ["best_first", "depth_first", "hybrid", "gpu_locality"]
INSTANCES = [
    ("knap-18", lambda: generate_knapsack(18, seed=6)),
    ("knap-20s", lambda: generate_knapsack(20, seed=2, correlation="strong")),
]


def run_policies():
    rows = []
    for name, make in INSTANCES:
        stats = {}
        for policy in POLICIES:
            problem = make()
            solver = BranchAndBoundSolver(
                problem,
                SolverOptions(node_selection=policy, use_rounding_heuristic=False),
            )
            result = solver.solve()
            assert result.status is MIPStatus.OPTIMAL
            stats[policy] = result.stats
            nodes = result.stats.nodes_processed
            switches = result.stats.matrix_switches
            rows.append(
                (
                    name,
                    policy,
                    nodes,
                    switches,
                    result.stats.reuse_distance,
                    round(switches / max(1, nodes), 3),
                )
            )
        # Locality-aware ordering jumps less often than best-first.
        bf = stats["best_first"]
        loc = stats["gpu_locality"]
        assert (
            loc.matrix_switches / max(1, loc.nodes_processed)
            < bf.matrix_switches / max(1, bf.nodes_processed)
        )
    return rows


def test_e6_node_ordering(benchmark, report):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    table = render_table(
        ["instance", "policy", "nodes", "matrix switches", "total tree distance", "switch rate"],
        rows,
        title="E6 — node evaluation order vs matrix reuse (§5.3)",
    )
    report.add("E6_node_ordering", table)
