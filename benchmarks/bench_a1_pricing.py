"""A1 (ablation) — simplex pricing rules: iterations vs per-iteration cost.

DESIGN.md ablation: Dantzig is the cheapest per iteration but can take
more pivots; Devex spends an extra btran per pivot to choose better
entering columns; Bland is the guaranteed-terminating fallback.  On the
device model the trade shows up as simulated time, not just iteration
counts.
"""

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_lp
from repro.reporting import format_seconds, render_table
from repro.strategies.engine import DeviceCostHook

RULES = ["dantzig", "devex", "bland"]


def make_lp(m, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    x0 = rng.random(n)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=a,
        b_ub=a @ x0 + 0.5,
        ub=np.full(n, 10.0),
    )


def run_rules():
    rows = []
    for m, n in ((30, 45), (60, 90)):
        objectives = {}
        for rule in RULES:
            lp = make_lp(m, n, seed=m)
            device = Device(V100)
            hook = DeviceCostHook(device, mode="dense")
            res = solve_lp(lp, SimplexOptions(pricing=rule), hook=hook)
            assert res.status is LPStatus.OPTIMAL
            objectives[rule] = res.objective
            rows.append(
                (
                    f"{m}x{n}",
                    rule,
                    res.iterations,
                    device.kernel_count(),
                    format_seconds(device.clock.now),
                )
            )
        values = list(objectives.values())
        assert max(values) - min(values) < 1e-6, "pricing changed the optimum"
    return rows


def test_a1_pricing_rules(benchmark, report):
    rows = benchmark.pedantic(run_rules, rounds=1, iterations=1)
    # Bland needs at least as many iterations as the greedy rules.
    for size in {r[0] for r in rows}:
        by_rule = {r[1]: r for r in rows if r[0] == size}
        assert by_rule["bland"][2] >= by_rule["dantzig"][2]
    table = render_table(
        ["LP size", "pricing", "iterations", "kernels", "sim time"],
        rows,
        title="A1 — pricing-rule ablation on the V100 model",
    )
    report.add("A1_pricing", table)
