"""E2 — §3: comparison of the four parallel execution strategies.

Claim reproduced: strategies 2 (CPU-orchestrated) and 3 (hybrid) are the
effective designs; strategy 1 (entirely-GPU) pays SIMD-hostile tree
management; strategy 4 (Big-MIP) pays a communication tax and only makes
sense when the LP matrix exceeds one device's memory — which the second
half of the experiment demonstrates by footprint accounting.
"""

import pytest

from repro.device.spec import V100
from repro.mip.result import MIPStatus
from repro.mip.solver import SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip
from repro.reporting import format_bytes, format_seconds, render_table
from repro.strategies.runner import STRATEGIES, run_strategy

INSTANCES = [
    ("knapsack-16", generate_knapsack(16, seed=4)),
    ("random-12x8", generate_random_mip(12, 8, seed=11, bound=4.0)),
]


def run_comparison():
    rows = []
    for instance_name, problem in INSTANCES:
        reports = {}
        for strategy in sorted(STRATEGIES):
            reports[strategy] = run_strategy(
                problem, strategy, SolverOptions()
            )
        objectives = {r.result.objective for r in reports.values()}
        assert len({round(o, 6) for o in objectives}) == 1, "strategies disagree"
        for strategy, rep in sorted(reports.items()):
            rows.append(
                (
                    instance_name,
                    strategy,
                    format_seconds(rep.makespan_seconds),
                    rep.kernels,
                    rep.h2d_transfers + rep.d2h_transfers,
                    format_bytes(rep.mem_peak_bytes),
                    f"{rep.energy_joules * 1e3:.3g} mJ",
                    rep.result.stats.nodes_processed,
                )
            )
        # Sanity of the paper's ranking on each instance.
        assert (
            reports["cpu_orchestrated"].makespan_seconds
            < reports["gpu_only"].makespan_seconds
        )
        assert (
            reports["cpu_orchestrated"].makespan_seconds
            < reports["big_mip_4"].makespan_seconds
        )
    return rows


def over_memory_analysis():
    """Strategy 4's raison d'être: a matrix larger than one device."""
    rows = []
    for m in (20_000, 60_000, 200_000):
        matrix_bytes = m * 2 * m * 8  # m rows, 2m columns, fp64
        single_fits = matrix_bytes <= V100.mem_capacity
        shards_needed = -(-matrix_bytes // V100.mem_capacity)
        rows.append(
            (
                f"{m}x{2 * m}",
                format_bytes(matrix_bytes),
                "fits" if single_fits else "OOM",
                max(1, shards_needed),
            )
        )
    return rows


def test_e2_strategy_comparison(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = render_table(
        ["instance", "strategy", "makespan", "kernels", "transfers", "dev-mem", "energy", "nodes"],
        rows,
        title="E2 — strategy comparison (same search, metered platforms)",
    )
    memory = render_table(
        ["LP matrix", "bytes", "single V100", "devices needed"],
        over_memory_analysis(),
        title="E2b — when Big-MIP becomes necessary (V100 = 16 GiB)",
    )
    report.add("E2_strategy_comparison", table + "\n\n" + memory)
