"""E13 — §5.5 end-to-end: batched-node branch-and-bound.

Extends E7 from isolated LP batches to the full search: the
:class:`repro.mip.batch_solver.BatchedNodeSolver` pops up to K open
nodes per round and charges one batched kernel sequence, versus the
serial strategy-2 engine launching a small kernel stream per node.
Claim: node throughput rises with batch size while the optimum (and the
tree, up to round-boundary effects) is unchanged.
"""

from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.reporting import format_seconds, render_series
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine

BATCHES = [1, 4, 16, 64]


def run_sweep():
    problem = generate_knapsack(20, seed=2, correlation="strong")
    expected, _ = knapsack_dp_optimal(problem)

    serial_engine = CpuOrchestratedEngine()
    serial_res = BranchAndBoundSolver(
        problem, SolverOptions(), engine=serial_engine
    ).solve()
    assert serial_res.status is MIPStatus.OPTIMAL
    assert abs(serial_res.objective - expected) < 1e-6
    serial_rate = serial_res.stats.nodes_processed / serial_engine.elapsed_seconds

    rows = [("serial", serial_res.stats.nodes_processed, serial_rate, 1.0)]
    for batch in BATCHES:
        solver = BatchedNodeSolver(problem, BatchedSolverOptions(batch_size=batch))
        res = solver.solve()
        assert res.status is MIPStatus.OPTIMAL
        assert abs(res.objective - expected) < 1e-6
        rate = res.stats.nodes_processed / solver.device.clock.now
        rows.append((f"batch {batch}", res.stats.nodes_processed, rate, rate / serial_rate))
    return rows


def test_e13_batched_bb(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rates = [r[2] for r in rows]
    # Throughput climbs with batch size and beats serial by a wide margin.
    assert rates[-1] > rates[1]
    assert rows[-1][3] > 5.0
    series = render_series(
        "configuration",
        [r[0] for r in rows],
        [
            ("nodes", [r[1] for r in rows]),
            ("nodes per sim-sec", [round(r[2]) for r in rows]),
            ("speedup vs serial", [round(r[3], 1) for r in rows]),
        ],
        title="E13 — batched-node B&B throughput (knapsack-20-strong, V100)",
    )
    report.add("E13_batched_bb", series)
