"""E11 — §2.3: the Integer-Vector-Matrix tree representation (Gmys).

Claims reproduced: IVM performs the *same* search as a linked-list tree
(equal nodes, equal optimum) in a flat, constant-size memory block —
"well-suited for the GPU programming due to its memory structure" —
while the linked representation's footprint grows with the open-node
frontier.
"""

import math

from repro.mip.ivm import ivm_branch_and_bound, linked_list_branch_and_bound
from repro.problems.flowshop import generate_flowshop
from repro.reporting import format_bytes, render_table

JOBS = [6, 7, 8, 9]
MACHINES = 3


def run_comparison():
    rows = []
    for jobs in JOBS:
        shop = generate_flowshop(jobs, MACHINES, seed=jobs)
        ivm = ivm_branch_and_bound(jobs, shop.lower_bound, shop.makespan)
        linked = linked_list_branch_and_bound(jobs, shop.lower_bound, shop.makespan)
        assert ivm.best_cost == linked.best_cost
        assert ivm.nodes_explored == linked.nodes_explored
        rows.append(
            (
                jobs,
                int(ivm.best_cost),
                ivm.nodes_explored,
                math.factorial(jobs),
                ivm.tree_memory_bytes,
                linked.tree_memory_bytes,
                round(linked.tree_memory_bytes / ivm.tree_memory_bytes, 1),
            )
        )
    return rows


def test_e11_ivm(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    # IVM footprint is flat (n² + n + 1 ints) and always smaller here.
    for jobs, _best, _nodes, _leaves, ivm_bytes, linked_bytes, _ratio in rows:
        assert ivm_bytes == jobs * jobs * 8 + jobs * 8 + 8
        assert linked_bytes > ivm_bytes
    table = render_table(
        ["jobs", "optimal makespan", "nodes (both)", "permutations", "IVM bytes", "linked-list bytes", "ratio"],
        [
            (j, b, n, p, format_bytes(iv), format_bytes(lk), r)
            for j, b, n, p, iv, lk, r in rows
        ],
        title="E11 — IVM vs linked-list tree on permutation flow-shop",
    )
    report.add("E11_ivm", table)
