"""E10 — §4.1/§4.3: batched factorization of many small matrices.

Claim reproduced: "packages that support batch matrix operation with a
large number of small matrices (i.e. MAGMA) are desirable to take the
full advantage of modern GPUs" — a single batched LU launch beats a loop
of small per-matrix launches, with the gain growing with batch size and
shrinking as matrices get big enough to fill the device alone.
"""

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.reporting import render_series, render_table


def run_sweep():
    rng = np.random.default_rng(0)
    rows = []
    for n in (8, 32, 128):
        for k in (1, 16, 64, 256):
            mats = rng.standard_normal((k, n, n)) + n * np.eye(n)
            rhs = rng.standard_normal((k, n))

            looped = Device(V100)
            for i in range(k):
                arr = looped.alloc(mats[i])
                f = looped.lu_factor(arr)
                looped.lu_solve(f, looped.alloc(rhs[i]))
            looped_time = looped.clock.now

            batched = Device(V100)
            batch_arr = batched.alloc(mats)
            factors = batched.batched_lu_factor(batch_arr)
            x = batched.batched_lu_solve(factors, batched.alloc(rhs))
            batched_time = batched.clock.now

            # Numerics are exact either way — verify against numpy once.
            np.testing.assert_allclose(
                x.payload, np.linalg.solve(mats, rhs[..., None])[..., 0], atol=1e-6
            )
            rows.append((n, k, looped_time, batched_time, looped_time / batched_time))
    return rows


def test_e10_batched_factorization(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Speedup grows with batch size at every matrix size.
    by_n = {}
    for n, k, _lo, _ba, speedup in rows:
        by_n.setdefault(n, []).append(speedup)
    for n, speedups in by_n.items():
        assert speedups[-1] > speedups[0], f"no batching gain at n={n}"
        assert speedups[-1] > 5.0
    table = render_table(
        ["n", "batch k", "looped sim time", "batched sim time", "speedup"],
        [(n, k, lo, ba, round(s, 1)) for n, k, lo, ba, s in rows],
        title="E10 — batched vs looped LU factor+solve (V100)",
    )
    ks = [1, 16, 64, 256]
    series = render_series(
        "batch",
        ks,
        [
            (f"speedup n={n}", [round(s, 1) for s in by_n[n]])
            for n in sorted(by_n)
        ],
    )
    report.add("E10_batched_factorization", table + "\n\n" + series)
