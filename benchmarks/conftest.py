"""Shared infrastructure for the experiment benchmarks.

Each benchmark computes its experiment's rows, registers the rendered
table via the ``report`` fixture, and the tables are echoed after the
pytest run (and written to ``benchmarks/results/``) so the regenerated
"tables and figures" are visible regardless of output capture.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

_REPORTS: List[Tuple[str, str]] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Reporter:
    """Collects one experiment's rendered output."""

    def add(self, experiment_id: str, text: str) -> None:
        _REPORTS.append((experiment_id, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")


@pytest.fixture
def report() -> Reporter:
    """Experiment-table reporter fixture."""
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced experiment tables")
    for experiment_id, text in sorted(_REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {experiment_id} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
