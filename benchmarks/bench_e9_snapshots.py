"""E9 — §2.1: consistent snapshots and checkpoint/restart.

Claims reproduced: a consistent snapshot (the open-leaf set) preserves
the optimum at *any* interruption point; capture is trivial
sequentially; in the distributed run the supervisor must also account
for in-flight tasks, and restarting from any distributed checkpoint
still reaches the same optimum (UG's checkpoint/restart facility).
"""

import numpy as np

from repro.mip.snapshot import SearchSnapshot, capture_snapshot, resume_from_snapshot
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.reporting import format_bytes, render_table
from repro.strategies.distributed import solve_distributed

PROBLEM = generate_knapsack(16, seed=4)
EXPECTED, _ = knapsack_dp_optimal(PROBLEM)


def run_sequential_cadence():
    rows = []
    for stop_after in (1, 4, 12, 30):
        solver = BranchAndBoundSolver(
            PROBLEM, SolverOptions(node_limit=stop_after, keep_tree=True)
        )
        partial = solver.solve()
        incumbent = partial.objective if partial.x is not None else -np.inf
        snap = capture_snapshot(
            partial.tree, incumbent_objective=incumbent, incumbent_x=partial.x
        )
        lbs, ubs = snap.to_arrays()
        resumed = resume_from_snapshot(PROBLEM, snap)
        ok = abs(resumed.objective - EXPECTED) < 1e-6
        rows.append(
            (
                stop_after,
                snap.num_leaves,
                format_bytes(int(lbs.nbytes + ubs.nbytes)),
                resumed.stats.nodes_processed,
                "yes" if ok else "NO",
            )
        )
        assert ok
    return rows


def run_distributed_restart():
    rows = []
    run = solve_distributed(PROBLEM, num_workers=3, checkpoint_every=4)
    for idx, snap_raw in enumerate(run.snapshots[:4]):
        leaves = [(lb.copy(), ub.copy()) for (lb, ub, _d) in snap_raw.tasks]
        snapshot = SearchSnapshot(
            leaves=leaves,
            incumbent_objective=(
                snap_raw.incumbent if snap_raw.incumbent is not None else -np.inf
            ),
        )
        resumed = resume_from_snapshot(PROBLEM, snapshot)
        best = resumed.objective
        if snap_raw.incumbent is not None:
            best = max(best, snap_raw.incumbent)
        ok = abs(best - EXPECTED) < 1e-6
        rows.append((idx, len(leaves), "yes" if ok else "NO"))
        assert ok
    return rows


def test_e9_snapshots(benchmark, report):
    seq_rows = benchmark.pedantic(run_sequential_cadence, rounds=1, iterations=1)
    dist_rows = run_distributed_restart()
    sequential = render_table(
        ["killed after N nodes", "open leaves", "snapshot bytes", "restart nodes", "optimum preserved"],
        seq_rows,
        title="E9 — sequential snapshot/restart at arbitrary interruption points",
    )
    distributed = render_table(
        ["checkpoint #", "captured tasks (queued+in-flight)", "optimum preserved"],
        dist_rows,
        title="E9b — distributed checkpoints (supervisor view, 3 workers)",
    )
    report.add("E9_snapshots", sequential + "\n\n" + distributed)
