"""E5 — §5.2: incorporating generated cuts.

Claim reproduced: "Until GPU-based cut generators are developed, the cut
generation can be assumed to be performed on the CPU, which will require
the latest copy of the matrix … to be copied from the device to the
host" — i.e. every CPU cut round costs a device→host matrix download
plus a host→device upload of the cut rows, while a (hypothetical)
GPU-resident generator eliminates the downloads entirely.
"""

from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.reporting import format_bytes, format_seconds, render_table
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine


def run_modes():
    rows = []
    problem = generate_knapsack(18, seed=6)
    results = {}
    for cut_rounds in (0, 1, 2, 4):
        for generation in ("cpu", "gpu"):
            if cut_rounds == 0 and generation == "gpu":
                continue
            engine = CpuOrchestratedEngine(cut_generation=generation)
            solver = BranchAndBoundSolver(
                problem, SolverOptions(cut_rounds=cut_rounds), engine=engine
            )
            result = solver.solve()
            assert result.status is MIPStatus.OPTIMAL
            results[(cut_rounds, generation)] = result
            label = "no cuts" if cut_rounds == 0 else f"{cut_rounds} rounds ({generation})"
            rows.append(
                (
                    label,
                    result.stats.cuts_added,
                    result.stats.nodes_processed,
                    engine.device.metrics.count("transfers.d2h"),
                    format_bytes(engine.device.metrics.count("transfers.d2h_bytes")),
                    format_seconds(engine.device.clock.now),
                )
            )
    objectives = {round(r.objective, 6) for r in results.values()}
    assert len(objectives) == 1, "cut modes changed the optimum"
    return rows


def test_e5_cut_incorporation(benchmark, report):
    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    # CPU generation pays matrix downloads; GPU generation pays none.
    cpu_rows = [r for r in rows if "(cpu)" in r[0]]
    gpu_rows = [r for r in rows if "(gpu)" in r[0]]
    assert all(r[3] > 0 for r in cpu_rows if r[1] > 0)
    assert all(r[3] == 0 for r in gpu_rows)
    table = render_table(
        ["configuration", "cuts", "nodes", "d2h copies", "d2h bytes", "sim time"],
        rows,
        title="E5 — cut generation: CPU round trips vs GPU-resident append",
    )
    report.add("E5_cut_incorporation", table)
