"""S1 — the serving layer: §5.5's concurrent-small-problems regime as a system.

Claims encoded:

- Under high offered load, dynamic batching (size/deadline-triggered
  coalescing into lockstep device batches) beats one-request-per-dispatch
  by ≥3× throughput — the Gurung & Ray / batched-kernel amortization
  argument applied end-to-end through a queueing front-end.
- On a duplicate-heavy stream, the fingerprint result cache (plus
  in-queue coalescing) serves ≥90% of requests without any device work.
- Per-stage breakdowns (queue wait / batch assembly / device time) are
  reported for every configuration, with p50/p95/p99 latency read from
  the :mod:`repro.obs` histograms the service populates.
"""

from pathlib import Path

from repro.obs.bench import bench_payload, write_bench_json
from repro.reporting import format_seconds, render_series, render_table
from repro.serve import BatchingPolicy, lp_pool, run_load, synthetic_stream

NUM_REQUESTS = 160
BATCH_SIZES = [1, 8, 32]
#: Mean interarrival in simulated seconds: saturating → relaxed.
LOADS = [("high", 1e-6), ("medium", 1e-4), ("low", 1e-3)]
WORKERS = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_throughput_sweep():
    """Unique-problem streams: batching is the only lever (no cache help)."""
    pool = lp_pool(NUM_REQUESTS, num_items=12, seed=31)  # all distinct
    rows = []
    for load_name, interarrival in LOADS:
        stream = synthetic_stream(pool, NUM_REQUESTS, interarrival, seed=17)
        for batch_size in BATCH_SIZES:
            policy = BatchingPolicy(max_batch_size=batch_size, max_wait=2e-3)
            summary = run_load(stream, policy=policy, num_workers=WORKERS)
            rows.append((load_name, batch_size, summary))
    return rows


def run_cache_experiment():
    """Duplicate-heavy stream: 240 requests over 8 distinct problems."""
    pool = lp_pool(8, num_items=12, seed=53)
    stream = synthetic_stream(pool, 240, 5e-5, seed=29)
    policy = BatchingPolicy(max_batch_size=16, max_wait=1e-3)
    return run_load(stream, policy=policy, num_workers=WORKERS)


def run_all():
    return run_throughput_sweep(), run_cache_experiment()


def test_s1_serve_throughput(benchmark, report):
    sweep, cached = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    for load_name, batch_size, s in sweep:
        table_rows.append(
            (
                load_name,
                batch_size,
                round(s["throughput"]),
                s["batches"],
                format_seconds(s["mean_queue_wait"]),
                format_seconds(s["mean_assembly"]),
                format_seconds(s["mean_device"]),
                format_seconds(s["p50_latency"]),
                format_seconds(s["p95_latency"]),
                format_seconds(s["p99_latency"]),
                format_seconds(s["makespan"]),
            )
        )
    table = render_table(
        [
            "load",
            "batch",
            "req/s",
            "batches",
            "queue wait",
            "assembly",
            "device",
            "p50",
            "p95",
            "p99",
            "makespan",
        ],
        table_rows,
        title=(
            f"S1 — serve throughput vs batching policy "
            f"({NUM_REQUESTS} distinct small LPs, {WORKERS} V100 workers)"
        ),
    )

    # Throughput-vs-batch figure at the highest offered load.
    high = {b: s for name, b, s in sweep if name == "high"}
    figure = render_series(
        "batch",
        BATCH_SIZES,
        [("req/s @ high load", [round(high[b]["throughput"]) for b in BATCH_SIZES])],
        title="S1 — dynamic batching at saturating load",
    )

    dedup = cached["dedup_rate"]
    cache_lines = "\n".join(
        [
            "S1 — duplicate-heavy stream (240 requests, 8 distinct, batch 16)",
            f"  cache hits      : {cached['cache_hits']}",
            f"  coalesced       : {cached['coalesced']}",
            f"  device batches  : {cached['batches']}",
            f"  dedup rate      : {dedup:.1%}",
            f"  throughput      : {round(cached['throughput'])} req/s",
        ]
    )

    # Machine-readable artifact for CI and regression tooling.
    json_rows = [
        {
            "load": load_name,
            "batch": batch_size,
            "throughput": float(s["throughput"]),
            "batches": int(s["batches"]),
            "mean_queue_wait": float(s["mean_queue_wait"]),
            "mean_device": float(s["mean_device"]),
            "p95_latency": float(s["p95_latency"]),
            "makespan": float(s["makespan"]),
        }
        for load_name, batch_size, s in sweep
    ]
    write_bench_json(
        _REPO_ROOT / "BENCH_s1.json",
        bench_payload(
            "s1_serve_throughput",
            json_rows,
            params={
                "requests": NUM_REQUESTS,
                "workers": WORKERS,
                "batch_sizes": ",".join(str(b) for b in BATCH_SIZES),
            },
            summary={
                "peak_throughput": float(high[32]["throughput"]),
                "batching_speedup": float(
                    high[32]["throughput"] / high[1]["throughput"]
                ),
                "dedup_rate": float(dedup),
            },
        ),
    )

    # Claim 1: ≥3× throughput from dynamic batching at high offered load.
    assert high[32]["throughput"] >= 3 * high[1]["throughput"]
    assert high[8]["throughput"] > high[1]["throughput"]
    # Claim 2: ≥90% of the duplicate-heavy stream never touches the device.
    assert dedup >= 0.90
    assert cached["batches"] <= 8  # at most one device batch per distinct shape-slice
    # Sanity: every admitted request completed, everywhere.
    for _name, _b, s in sweep:
        assert s["completed"] == s["offered"] - s["rejected"] - s["timeouts"]
    # Low load: deadline-triggered partial batches keep queue wait bounded.
    low = {b: s for name, b, s in sweep if name == "low"}
    assert low[32]["mean_queue_wait"] <= 2e-3 + 1e-9

    report.add("S1_serve_throughput", f"{table}\n\n{figure}\n\n{cache_lines}")
