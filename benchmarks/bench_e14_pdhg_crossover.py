"""E14 — the first-order crossover: batched PDHG vs batched simplex.

The §5.5 batched-node regime solved two ways on the simulated V100: the
lockstep tableau simplex (one batched factorization, then serial-depth-m
triangular solves per pivot) versus lockstep restarted PDHG (two fused
GEMMs per sweep, zero serial depth).  Claims encoded:

- small node LPs favor the simplex batch (few pivots, sync bill small);
- the curves cross at a measurable dense size — beyond it the
  first-order batch is the faster way to advance a B&B frontier;
- both engines agree on every member's objective (the timing comparison
  is only believed after cross-validation).

Besides the human-readable table, this benchmark exports the
machine-readable artifact ``BENCH_pdhg.json`` (schema of
:mod:`repro.obs.bench`) at the repo root — the file the CI
``bench-smoke`` job and regression tooling consume.
"""

from pathlib import Path

from repro.lp.pdhg_crossover import CROSSOVER_EPS, crossover_bench_payload
from repro.obs.bench import write_bench_json
from repro.reporting import render_series

SIZES = [16, 32, 64, 128, 192, 256]
BATCH = 16

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_sweep():
    return crossover_bench_payload(SIZES, batch=BATCH, eps=CROSSOVER_EPS)


def test_e14_pdhg_crossover(benchmark, report):
    payload = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = payload["rows"]
    summary = payload["summary"]

    # Claim: the sweep brackets the crossover — simplex wins at the
    # small end, PDHG somewhere before the top of the sweep.
    assert rows[0]["pdhg_seconds"] > rows[0]["simplex_seconds"]
    assert summary["crossover_m"] is not None
    assert summary["crossover_m"] <= SIZES[-1]
    # Cross-validation held for every row (measure_crossover_point
    # raises otherwise); keep the worst residual on record.
    assert all(r["max_rel_gap"] <= 1e-2 for r in rows)

    write_bench_json(_REPO_ROOT / "BENCH_pdhg.json", payload)

    series = render_series(
        "m (= n)",
        [r["m"] for r in rows],
        [
            ("pdhg ms", [round(r["pdhg_seconds"] * 1e3, 2) for r in rows]),
            ("simplex ms", [round(r["simplex_seconds"] * 1e3, 2) for r in rows]),
            ("pdhg sweeps", [r["pdhg_sweeps"] for r in rows]),
            ("speedup", [round(r["speedup"], 2) for r in rows]),
        ],
        title=(
            f"E14 — batched PDHG vs batched simplex, batch {BATCH}, "
            f"eps {CROSSOVER_EPS:g} (V100); crossover at m={summary['crossover_m']}"
        ),
    )
    report.add("E14_pdhg_crossover", series)
