"""E12 — §2.3: interior-point vs simplex as the GPU LP engine.

Claim reproduced: "Linear programming solvers using an interior point
method is the preferred method for solving sparse problems … Linear
programming problems using dense matrices are well suited for the GPUs"
(simplex variants).  The IPM's per-iteration work is one normal-equations
Cholesky — few, fat, regular kernels; the simplex issues thousands of
thin ones.  On the device model this shows as: IPM needs ~10-20
iterations regardless of size while the simplex iteration count grows,
so the IPM's device time scales far better on large dense LPs.
"""

import numpy as np

from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import V100
from repro.lp.interior_point import interior_point_solve
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.reporting import format_seconds, render_table
from repro.strategies.engine import DeviceCostHook


def make_lp(m, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    x0 = rng.random(n)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=a,
        b_ub=a @ x0 + 1.0,
        ub=np.full(n, 10.0),
    )


def charge_ipm(device, m_std, n_std, iterations):
    """The IPM kernel stream: normal equations + matvecs per iteration."""
    for _ in range(iterations):
        device._charge(K.gemm_kernel(m_std, m_std, n_std), None)  # A D Aᵀ
        device._charge(K.potrf_kernel(m_std), None)
        device._charge(K.trsv_kernel(m_std), None)
        device._charge(K.trsv_kernel(m_std), None)
        for _ in range(4):  # residuals / directions
            device._charge(K.gemv_kernel(m_std, n_std), None)


def run_comparison():
    rows = []
    for m, n in ((16, 24), (32, 48), (64, 96)):
        lp = make_lp(m, n, seed=m)
        sf = lp.to_standard_form()

        simplex_dev = Device(V100)
        simplex_res = solve_lp(lp, hook=DeviceCostHook(simplex_dev, mode="dense"))
        assert simplex_res.status is LPStatus.OPTIMAL

        ipm_res = interior_point_solve(sf)
        assert ipm_res.status is LPStatus.OPTIMAL
        assert abs(ipm_res.objective - simplex_res.objective) < 1e-4 * (
            1 + abs(simplex_res.objective)
        )
        ipm_dev = Device(V100)
        charge_ipm(ipm_dev, sf.m, sf.n, ipm_res.iterations)

        rows.append(
            (
                f"{m}x{n}",
                simplex_res.iterations,
                format_seconds(simplex_dev.clock.now),
                ipm_res.iterations,
                format_seconds(ipm_dev.clock.now),
                round(simplex_dev.clock.now / ipm_dev.clock.now, 2),
            )
        )
    return rows


def analytic_large_scale():
    """At MIPLIB scale the comparison is priced analytically."""
    rows = []
    for m in (1024, 4096, 16384):
        n = 2 * m
        # Simplex: iterations empirically ~2(m+n); per-iteration kernels.
        iters_simplex = 2 * (m + n)
        per_iter = (
            2 * K.trsv_kernel(m).duration(V100)
            + K.gemv_kernel(n, m).duration(V100)
        ) + K.getrf_kernel(m).duration(V100) / 64.0
        simplex_time = iters_simplex * per_iter
        # IPM: ~15 iterations of normal equations.
        ipm_time = 15 * (
            K.gemm_kernel(m, m, n).duration(V100)
            + K.potrf_kernel(m).duration(V100)
            + 2 * K.trsv_kernel(m).duration(V100)
            + 4 * K.gemv_kernel(m, n).duration(V100)
        )
        rows.append(
            (
                f"{m}x{n}",
                format_seconds(simplex_time),
                format_seconds(ipm_time),
                round(simplex_time / ipm_time, 2),
            )
        )
    return rows


def test_e12_ipm_vs_simplex(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    measured = render_table(
        ["LP", "simplex iters", "simplex time", "IPM iters", "IPM time", "ratio"],
        rows,
        title="E12 — measured: simplex vs interior point on the V100 model",
    )
    analytic = render_table(
        ["LP", "simplex time", "IPM time", "simplex/IPM"],
        analytic_large_scale(),
        title="E12b — analytic at MIPLIB scale (few fat kernels win)",
    )
    # IPM iteration counts stay flat while simplex counts grow.
    assert rows[-1][3] <= 3 * rows[0][3]
    assert rows[-1][1] > 3 * rows[0][1]
    report.add("E12_ipm_vs_simplex", measured + "\n\n" + analytic)
