"""F1 — the paper's Figure 1: the branch-and-bound solution tree.

Regenerates a solution tree with intermediate nodes tagged by their
branching variables and every leaf tagged feasible / infeasible /
pruned, and checks the paper's completion invariant: "by the completion
of the entire search, no nodes remain tagged as active."
"""

from repro.mip.result import MIPStatus
from repro.mip.snapshot import assert_search_complete
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.mip.tree import NodeTag
from repro.problems.random_mip import generate_random_mip
from repro.reporting import render_table


def run_figure1():
    problem = generate_random_mip(
        10, 6, seed=7, density=0.8, integer_fraction=1.0, bound=3.0
    )
    solver = BranchAndBoundSolver(
        problem,
        SolverOptions(keep_tree=True, use_rounding_heuristic=False),
    )
    result = solver.solve()
    assert result.status is MIPStatus.OPTIMAL
    assert_search_complete(result.tree)
    return result


def test_f1_solution_tree(benchmark, report):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    tree = result.tree
    counts = tree.tag_counts()
    assert counts[NodeTag.ACTIVE] == 0

    table = render_table(
        ["tag", "count"],
        [(tag.value, counts[tag]) for tag in NodeTag],
        title="Figure 1 — node tag census at search completion",
    )
    rendering = tree.render(max_depth=5)
    report.add(
        "F1_solution_tree",
        f"{table}\n\nSolution tree (top 5 levels):\n{rendering}\n"
        f"\noptimal objective = {result.objective:.6g}, "
        f"nodes processed = {result.stats.nodes_processed}",
    )
