"""E15 — warm-started node LPs and parametric serve re-solves.

The §5.3 reuse claims, measured end to end:

- branch-and-bound children re-solved from the parent basis (and its
  resident factorization) need ≥ 2x fewer dual-simplex pivots per node
  than cold solves — same trees, same optima, cross-validated;
- a serve stream of near-duplicate LPs answers from the parametric
  cache (sensitivity range hits + warm re-solves) at a fraction of the
  cold dispatch latency, every answer certificate-audited.

Besides the human-readable table, this benchmark exports the
machine-readable artifact ``BENCH_warm.json`` (schema of
:mod:`repro.obs.bench`) at the repo root — the file the CI
``warm-smoke`` / ``bench-smoke`` jobs and regression tooling consume.
"""

from pathlib import Path

from repro.mip.warmbench import warm_bench_payload
from repro.obs.bench import write_bench_json
from repro.reporting import render_series

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_sweep():
    return warm_bench_payload()


def test_e15_warm(benchmark, report):
    payload = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = payload["rows"]
    summary = payload["summary"]
    mip_rows = [r for r in rows if "pivot_reduction" in r]
    serve_row = rows[-1]

    # Claim: warm starts cut node-LP pivots at least 2x overall (and on
    # every measured instance), without touching the search outcome —
    # _solve_both raises on any warm/cold status or objective mismatch.
    assert summary["pivot_reduction"] >= 2.0
    assert all(r["pivot_reduction"] >= 2.0 for r in mip_rows)
    assert all(r["audit_failures"] == 0 for r in mip_rows)
    # Claim: the near-duplicate stream actually exercises both parametric
    # paths, and answering warm beats cold dispatch on latency.
    assert serve_row["range_hits"] > 0
    assert serve_row["warm_hits"] > 0
    assert serve_row["parametric_audit_failures"] == 0
    assert summary["serve_warm_latency_speedup"] > 1.0

    write_bench_json(_REPO_ROOT / "BENCH_warm.json", payload)

    series = render_series(
        "instance",
        [r["instance"].split("-")[0] + f"[{i}]" for i, r in enumerate(mip_rows)],
        [
            ("warm piv/node", [r["warm_pivots_per_node"] for r in mip_rows]),
            ("cold piv/node", [r["cold_pivots_per_node"] for r in mip_rows]),
            ("reduction", [r["pivot_reduction"] for r in mip_rows]),
            ("factor reuses", [r["factor_reuses"] for r in mip_rows]),
        ],
        title=(
            f"E15 — warm vs cold node LPs: {summary['pivot_reduction']}x "
            f"fewer pivots/node; serve {serve_row['range_hits']} range + "
            f"{serve_row['warm_hits']} warm hits, "
            f"{summary['serve_warm_latency_speedup']}x latency"
        ),
    )
    report.add("E15_warm", series)
