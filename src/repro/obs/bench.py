"""Machine-readable benchmark artifacts: a stable JSON schema.

The E-series benchmarks render human tables (:mod:`repro.reporting`),
but a table is a dead end for tooling — CI gates, regression diffs, and
cross-run plots all want numbers, not box-drawing.  This module defines
the one JSON shape every benchmark exports:

``{"schema_version": 1, "bench": <name>, "params": {...},
"rows": [{...}, ...], "summary": {...}, "metrics": {...}}``

- ``rows`` is the measured sweep: a list of flat dicts of JSON scalars,
  one per configuration point (a crossover sweep's per-size timings, a
  throughput sweep's per-load summaries);
- ``params`` pins the knobs the sweep ran under, so a diff between two
  artifacts is meaningful;
- ``summary`` holds the headline derived quantities (the crossover
  point, the peak throughput);
- ``metrics`` is optional and takes a
  :meth:`repro.obs.registry.MetricsRegistry.to_dict` export verbatim.

Writing is deterministic — sorted keys, fixed separators, trailing
newline — so re-running an unchanged benchmark reproduces the artifact
byte-for-byte (timestamps are deliberately excluded).  ``load``/
``validate`` are what the CI ``bench-smoke`` job gates on: a missing or
schema-invalid artifact fails the build, not just the eyeball check.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError

#: Bump when the artifact shape changes incompatibly.
BENCH_SCHEMA_VERSION = 1

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _check_scalar_map(mapping: Any, where: str) -> None:
    if not isinstance(mapping, dict):
        raise ReproError(f"bench payload: {where} must be a dict, got {type(mapping).__name__}")
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise ReproError(f"bench payload: {where} has a non-string key {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ReproError(
                f"bench payload: {where}[{key!r}] must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        if isinstance(value, float) and not math.isfinite(value):
            raise ReproError(
                f"bench payload: {where}[{key!r}] is non-finite ({value!r}); "
                "encode missing measurements as null"
            )


def bench_payload(
    name: str,
    rows: List[Dict[str, Any]],
    params: Optional[Dict[str, Any]] = None,
    summary: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble (and validate) one benchmark artifact payload."""
    payload: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "params": dict(params or {}),
        "rows": [dict(row) for row in rows],
        "summary": dict(summary or {}),
    }
    if metrics is not None:
        payload["metrics"] = metrics
    validate_bench_payload(payload)
    return payload


def validate_bench_payload(payload: Any) -> Dict[str, Any]:
    """Check an artifact against the schema; returns it on success.

    Raises :class:`repro.errors.ReproError` naming the first offending
    field — the error message is the CI gate's failure output, so it
    points at the field, not just "invalid".
    """
    if not isinstance(payload, dict):
        raise ReproError(f"bench payload must be a dict, got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ReproError(
            f"bench payload: schema_version {version!r} != {BENCH_SCHEMA_VERSION}"
        )
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        raise ReproError("bench payload: 'bench' must be a non-empty string")
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ReproError("bench payload: 'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        _check_scalar_map(row, f"rows[{i}]")
    _check_scalar_map(payload.get("params", {}), "params")
    _check_scalar_map(payload.get("summary", {}), "summary")
    metrics = payload.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        raise ReproError("bench payload: 'metrics' must be a dict when present")
    unknown = set(payload) - {
        "schema_version",
        "bench",
        "params",
        "rows",
        "summary",
        "metrics",
    }
    if unknown:
        raise ReproError(f"bench payload: unknown top-level keys {sorted(unknown)}")
    return payload


def write_bench_json(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Validate and write one artifact; deterministic byte-for-byte."""
    validate_bench_payload(payload)
    path = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    path.write_text(text + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one artifact (the CI gate's entry point)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"bench artifact missing: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"bench artifact {path} is not valid JSON: {exc}") from exc
    return validate_bench_payload(payload)
