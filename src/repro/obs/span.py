"""Hierarchical span tracing over two timelines (host wall clock + sim).

A :class:`Tracer` records *spans* — named intervals with attributes and
parent/child structure — from two kinds of sources:

- **host spans** opened with the context-manager API (``with
  tracer.span("mip.node", depth=3): ...``), timed on a wall clock
  relative to the tracer's epoch;
- **sim spans/events** reported with explicit timestamps by the
  simulated subsystems (device kernels and transfers, MPI messages,
  the serving timeline), all in simulated seconds.

The two timelines export as separate *processes* of one Chrome trace
(:mod:`repro.obs.export`), so ``about://tracing`` shows the real-time
shape of the search next to the simulated device/service timeline.

Tracing is **off by default** and the disabled path is engineered to be
near-free: :func:`span` returns a shared no-op context manager and the
hot device/comm call sites guard on :func:`active` returning ``None``
(one global read), so benchmarks pay no measurable cost untraced.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Chrome-trace process for host (wall-clock) spans.
HOST = "host"
#: Chrome-trace process for simulated-time spans and events.
SIM = "sim"


@dataclass
class Span:
    """One finished span (or instant event, when ``duration`` is 0).

    ``timeline`` is :data:`HOST` (wall-clock seconds since the tracer's
    epoch) or :data:`SIM` (simulated seconds); ``track`` is the row the
    span renders on (a device, an MPI rank, a request, or the host call
    stack); ``parent_id`` links host spans into their nesting tree
    (``-1`` for roots and sim events).
    """

    span_id: int
    name: str
    category: str
    timeline: str
    track: str
    start: float
    duration: float
    parent_id: int = -1
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Completion time on this span's timeline."""
        return self.start + self.duration


class _SpanHandle:
    """Context manager for one in-flight host span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach attributes to the live span (chainable)."""
        self._span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._finish(self._span)


class _NullSpan:
    """Shared no-op span handle used whenever tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from the host and the simulated subsystems.

    ``trace_id`` names the whole trace (solve- or request-scoped ids
    are attached per span by the instrumented layers); ``clock`` is the
    host wall clock (override for deterministic tests).
    """

    def __init__(self, trace_id: str = "", clock=time.perf_counter):
        self.trace_id = trace_id or next_trace_id()
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []
        self._ids = itertools.count()
        self._stack: List[Span] = []

    # -- host spans -------------------------------------------------------------

    def now(self) -> float:
        """Wall-clock seconds since this tracer's epoch."""
        return self._clock() - self._epoch

    def span(self, name: str, category: str = "solve", **attrs: Any) -> _SpanHandle:
        """Open a host span; close it by exiting the context manager."""
        span = Span(
            span_id=next(self._ids),
            name=name,
            category=category,
            timeline=HOST,
            track=HOST,
            start=self.now(),
            duration=0.0,
            parent_id=self._stack[-1].span_id if self._stack else -1,
            attrs=dict(attrs) if attrs else {},
        )
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.duration = self.now() - span.start
        # Exception-safe unwind: drop everything above this span too.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)

    def event(self, name: str, category: str = "solve", **attrs: Any) -> None:
        """Record an instant host event at the current wall time."""
        self.spans.append(
            Span(
                span_id=next(self._ids),
                name=name,
                category=category,
                timeline=HOST,
                track=HOST,
                start=self.now(),
                duration=0.0,
                parent_id=self._stack[-1].span_id if self._stack else -1,
                attrs=dict(attrs) if attrs else {},
            )
        )

    # -- simulated-time spans ----------------------------------------------------

    def sim_span(
        self,
        name: str,
        start: float,
        duration: float,
        track: str,
        category: str = "device",
        parent_id: int = -1,
        **attrs: Any,
    ) -> Span:
        """Record one interval on the simulated timeline.

        Returns the span so callers can chain children via
        ``parent_id=parent.span_id`` (the serving layer nests
        queue/assembly/device under each request span this way).
        """
        span = Span(
            span_id=next(self._ids),
            name=name,
            category=category,
            timeline=SIM,
            track=track,
            start=start,
            duration=duration,
            parent_id=parent_id,
            attrs=dict(attrs) if attrs else {},
        )
        self.spans.append(span)
        return span

    # -- queries ------------------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All recorded spans with this name, in completion order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> List[Span]:
        """Direct children of a span."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def __len__(self) -> int:
        return len(self.spans)


# -- global active tracer ----------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
_TRACE_IDS = itertools.count(1)


def next_trace_id() -> str:
    """Process-unique, deterministic trace id."""
    return f"trace-{next(_TRACE_IDS):06d}"


def active() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _ACTIVE


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> None:
    """Remove the active tracer; instrumentation reverts to no-ops."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope a tracer: installs on entry, restores the previous on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def span(name: str, category: str = "solve", **attrs: Any):
    """Open a span on the active tracer (shared no-op when disabled)."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, category, **attrs)


def event(name: str, category: str = "solve", **attrs: Any) -> None:
    """Record an instant event on the active tracer (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.event(name, category, **attrs)
