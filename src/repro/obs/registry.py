"""The metrics registry: counters, time buckets, gauges, histograms.

This is the storage layer behind :class:`repro.metrics.Metrics` (which
remains the adapter every subsystem already holds) plus the typed
instrument API new code programs against::

    reg = MetricsRegistry()
    reg.counter("serve.requests").inc()
    reg.gauge("queue.depth").set(17)
    reg.histogram("serve.latency").observe(2.3e-4)
    reg.histogram("serve.latency").percentile(95)

Everything is deterministic: ``to_dict``/``items`` iterate in sorted key
order, histogram summaries are exact (all samples retained — the streams
here are benchmark-sized, not production-sized), and ``merge`` /
``snapshot`` / ``diff`` cover all four instrument families so the
before/after differencing pattern benchmarks rely on keeps working.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, Iterator, List, Sequence, Tuple

#: Percentiles exported in histogram summaries.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


def percentile_of(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default), 0 ≤ q ≤ 100."""
    if not values:
        return math.nan
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class Counter:
    """Handle to one monotonically increasing integer counter."""

    __slots__ = ("_store", "name")

    def __init__(self, store: Dict[str, int], name: str):
        self._store = store
        self.name = name

    def inc(self, amount: int = 1) -> None:
        self._store[self.name] += amount

    @property
    def value(self) -> int:
        return self._store.get(self.name, 0)


class Gauge:
    """Handle to one last-value-wins float gauge."""

    __slots__ = ("_store", "name")

    def __init__(self, store: Dict[str, float], name: str):
        self._store = store
        self.name = name

    def set(self, value: float) -> None:
        self._store[self.name] = float(value)

    @property
    def value(self) -> float:
        return self._store.get(self.name, math.nan)


class Histogram:
    """All-samples histogram with exact percentile export."""

    __slots__ = ("values",)

    def __init__(self, values: List[float] = None):
        self.values = [] if values is None else values

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else math.nan

    def percentile(self, q: float) -> float:
        """q-th percentile (0–100) of the observed samples."""
        return percentile_of(self.values, q)

    def summary(self) -> Dict[str, float]:
        """Stable JSON summary: count, mean, min/max, p50/p95/p99."""
        out: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean if self.values else 0.0,
            "min": float(min(self.values)) if self.values else 0.0,
            "max": float(max(self.values)) if self.values else 0.0,
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q) if self.values else 0.0
        return out

    def copy(self) -> "Histogram":
        return Histogram(list(self.values))


class MetricsRegistry:
    """Named counters, simulated-time buckets, gauges, and histograms.

    ``counters``/``times`` are the same default-dict stores the legacy
    :class:`repro.metrics.Metrics` adapter exposes, so both APIs read
    and write one set of numbers.
    """

    def __init__(self):
        self.counters: Dict[str, int] = defaultdict(int)
        self.times: Dict[str, float] = defaultdict(float)
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- typed instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Counter handle (created on first use)."""
        return Counter(self.counters, name)

    def gauge(self, name: str) -> Gauge:
        """Gauge handle (created on first use)."""
        return Gauge(self.gauges, name)

    def histogram(self, name: str) -> Histogram:
        """Histogram instrument (created on first use)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # -- untyped conveniences (the adapter's vocabulary) -------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        self.times[name] += seconds

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def percentile(self, name: str, q: float) -> float:
        """q-th percentile of histogram ``name`` (NaN if never observed)."""
        hist = self.histograms.get(name)
        return hist.percentile(q) if hist is not None else math.nan

    # -- lifecycle --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/times sum, gauges take the
        other's value, histograms concatenate samples."""
        for key, val in other.counters.items():
            self.counters[key] += val
        for key, val in other.times.items():
            self.times[key] += val
        self.gauges.update(other.gauges)
        for key, hist in other.histograms.items():
            self.histogram(key).values.extend(hist.values)

    def reset(self) -> None:
        self.counters.clear()
        self.times.clear()
        self.gauges.clear()
        self.histograms.clear()

    def snapshot(self) -> "MetricsRegistry":
        """Deep copy suitable for before/after differencing."""
        snap = MetricsRegistry()
        snap.counters = defaultdict(int, self.counters)
        snap.times = defaultdict(float, self.times)
        snap.gauges = dict(self.gauges)
        snap.histograms = {k: h.copy() for k, h in self.histograms.items()}
        return snap

    def diff(self, before: "MetricsRegistry") -> "MetricsRegistry":
        """Activity since ``before``: counter/time deltas, gauges as-is,
        histogram samples observed after the snapshot."""
        out = MetricsRegistry()
        for key, val in self.counters.items():
            delta = val - before.counters.get(key, 0)
            if delta:
                out.counters[key] = delta
        for key, val in self.times.items():
            delta = val - before.times.get(key, 0.0)
            if delta:
                out.times[key] = delta
        out.gauges = dict(self.gauges)
        for key, hist in self.histograms.items():
            seen = before.histograms.get(key)
            tail = hist.values[len(seen.values) if seen else 0 :]
            if tail:
                out.histograms[key] = Histogram(list(tail))
        return out

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Structured view with deterministic (sorted) key ordering.

        Always carries ``counters`` and ``times`` (the legacy shape);
        ``gauges`` and ``histograms`` appear only when non-empty so
        existing benchmark JSON stays byte-stable until histograms are
        actually used.
        """
        out: Dict[str, Dict[str, Any]] = {
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
            "times": {k: float(v) for k, v in sorted(self.times.items())},
        }
        if self.gauges:
            out["gauges"] = {k: float(v) for k, v in sorted(self.gauges.items())}
        if self.histograms:
            out["histograms"] = {
                k: h.summary() for k, h in sorted(self.histograms.items())
            }
        return out

    def items(self) -> Iterator[Tuple[str, float]]:
        """``(name, value)`` over counters then times, each sorted."""
        yield from sorted(self.counters.items())
        yield from sorted(self.times.items())
