"""Trace exporters: Chrome trace JSON, JSON-lines, and summary rows.

The Chrome trace export loads directly into ``about://tracing`` /
`Perfetto <https://ui.perfetto.dev>`_: the host (wall-clock) spans and
the simulated timeline (device kernels, transfers, MPI messages, the
serving request lifecycle) render as two processes, with one named
thread row per track.  :func:`validate_chrome_trace` is the schema check
CI's trace-smoke step runs on every exported file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.span import HOST, SIM, Span, Tracer

#: Chrome-trace process ids for the two timelines.
PID_HOST = 1
PID_SIM = 2

_PROCESS_NAMES = {PID_HOST: "host (wall clock)", PID_SIM: "simulated platform"}


def _json_safe(value: Any) -> Any:
    """Coerce attribute values (numpy scalars included) to JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _safe_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {k: _json_safe(v) for k, v in attrs.items()}


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render a tracer's spans as a Chrome trace object."""
    events: List[Dict[str, Any]] = []
    tids: Dict[Tuple[int, str], int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tid = len([k for k in tids if k[0] == pid])
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tids[key]

    for pid, name in _PROCESS_NAMES.items():
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "args": {"name": name}}
        )

    for span in tracer.spans:
        pid = PID_HOST if span.timeline == HOST else PID_SIM
        event: Dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": tid_for(pid, span.track),
            "ts": span.start * 1e6,  # Chrome traces are in microseconds
            "dur": span.duration * 1e6,
            "args": _safe_attrs(span.attrs),
        }
        if span.parent_id >= 0:
            event["args"]["parent_id"] = span.parent_id
        event["args"]["span_id"] = span.span_id
        events.append(event)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": tracer.trace_id, "spans": len(tracer.spans)},
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON; returns the exported object."""
    trace = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


def load_trace(path: str) -> Dict[str, Any]:
    """Load a Chrome trace JSON file."""
    with open(path) as fh:
        return json.load(fh)


def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema-check a Chrome trace object; returns problems (empty = valid).

    Checks the JSON Object Format contract ``about://tracing`` relies
    on: a ``traceEvents`` array whose members carry ``ph``/``name``/
    ``pid``/``tid``, microsecond ``ts`` on phase-X/i events, and a
    non-negative ``dur`` on complete (phase-X) events.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if "pid" not in ev:
            problems.append(f"{where}: missing pid")
        if ph != "M":
            if "tid" not in ev:
                problems.append(f"{where}: missing tid")
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args not an object")
    return problems


# -- JSON-lines event log -----------------------------------------------------------


def to_jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One JSON object per span, in completion order."""
    for span in tracer.spans:
        yield json.dumps(
            {
                "trace_id": tracer.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "category": span.category,
                "timeline": span.timeline,
                "track": span.track,
                "start": span.start,
                "duration": span.duration,
                "attrs": _safe_attrs(span.attrs),
            },
            sort_keys=True,
        )


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the JSON-lines event log; returns the number of lines."""
    count = 0
    with open(path, "w") as fh:
        for line in to_jsonl_lines(tracer):
            fh.write(line + "\n")
            count += 1
    return count


# -- summaries ----------------------------------------------------------------------


def summarize_spans(spans: List[Span]) -> List[Tuple[str, str, int, float, float, float]]:
    """Aggregate rows ``(timeline, name, count, total, mean, max)``.

    Sorted by total duration, descending — the "where did the time go"
    table :func:`repro.reporting.render_trace` prints.
    """
    agg: Dict[Tuple[str, str], List[float]] = {}
    for span in spans:
        agg.setdefault((span.timeline, span.name), []).append(span.duration)
    rows = []
    for (timeline, name), durations in agg.items():
        total = float(sum(durations))
        rows.append(
            (timeline, name, len(durations), total, total / len(durations), max(durations))
        )
    rows.sort(key=lambda r: (-r[3], r[0], r[1]))
    return rows


def summarize_trace_file(trace: Dict[str, Any]) -> List[Tuple[str, str, int, float, float, float]]:
    """Same aggregation computed from a loaded Chrome trace object."""
    spans: List[Span] = []
    for ev in trace.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        spans.append(
            Span(
                span_id=int(ev.get("args", {}).get("span_id", -1)),
                name=str(ev.get("name", "")),
                category=str(ev.get("cat", "")),
                timeline=HOST if ev.get("pid") == PID_HOST else SIM,
                track=str(ev.get("tid", "")),
                start=float(ev.get("ts", 0.0)) / 1e6,
                duration=float(ev.get("dur", 0.0)) / 1e6,
            )
        )
    return summarize_spans(spans)
