"""repro.obs — unified tracing, metrics registry, and timeline export.

One observability surface for the whole stack (the §5.1–§5.3 arguments
are claims about counts and timelines — this makes them visible per
solve and per request):

- **span tracing** (:mod:`repro.obs.span`): hierarchical host spans via
  a context-manager API plus simulated-time spans reported by the
  device, comm, and serving layers; off by default with a near-free
  disabled path;
- **metrics registry** (:mod:`repro.obs.registry`): counters, gauges,
  and histograms with percentile export, storage-shared with the
  legacy :class:`repro.metrics.Metrics` adapter;
- **exporters** (:mod:`repro.obs.export`): Chrome-trace JSON (loadable
  in ``about://tracing`` / Perfetto), a JSON-lines event log, and
  summary rows rendered by :func:`repro.reporting.render_trace`;
- **benchmark artifacts** (:mod:`repro.obs.bench`): the machine-readable
  JSON schema the benchmarks export (``BENCH_*.json``) and the CI
  ``bench-smoke`` job validates.

Typical use::

    from repro import obs

    with obs.tracing() as tracer:
        report = repro.api.solve(problem)
    obs.write_chrome_trace(tracer, "solve-trace.json")
"""

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)
from repro.obs.export import (
    load_trace,
    summarize_spans,
    summarize_trace_file,
    to_chrome_trace,
    to_jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_of,
)
from repro.obs.span import (
    HOST,
    NULL_SPAN,
    SIM,
    Span,
    Tracer,
    active,
    disable,
    enable,
    event,
    next_trace_id,
    span,
    tracing,
)

__all__ = [
    "HOST",
    "SIM",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active",
    "disable",
    "enable",
    "event",
    "next_trace_id",
    "span",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_of",
    "BENCH_SCHEMA_VERSION",
    "bench_payload",
    "load_bench_json",
    "validate_bench_payload",
    "write_bench_json",
    "load_trace",
    "summarize_spans",
    "summarize_trace_file",
    "to_chrome_trace",
    "to_jsonl_lines",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
