"""Linear program representation and standard-form conversion.

:class:`LinearProgram` is the user-facing form (paper Eq. 1):

    maximize  cᵀx
    s.t.      A_ub x ≤ b_ub
              A_eq x = b_eq
              lb ≤ x ≤ ub

:class:`StandardFormLP` is the solver-facing equality form the paper
describes ("the inequality Ax ≤ b can be replaced with equality with the
introduction of slack variables y ≥ 0"):

    maximize  ĉᵀx̂ + offset
    s.t.      Â x̂ = b̂,  x̂ ≥ 0

Conversion: finite lower bounds are shifted out, free variables are
split into positive/negative parts, finite upper bounds become rows,
and every inequality row gains a slack column.  The mapping back to
original variables is retained for postsolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ProblemFormatError


@dataclass
class LinearProgram:
    """A maximization LP over dense data.

    Any of the constraint blocks may be ``None``; bounds default to
    ``x ≥ 0`` (lb=0, ub=+inf) when omitted.
    """

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    lb: Optional[np.ndarray] = None
    ub: Optional[np.ndarray] = None

    def __post_init__(self):
        self.c = np.asarray(self.c, dtype=np.float64)
        n = self.n
        if self.a_ub is not None:
            self.a_ub = np.atleast_2d(np.asarray(self.a_ub, dtype=np.float64))
            self.b_ub = np.atleast_1d(np.asarray(self.b_ub, dtype=np.float64))
            if self.a_ub.shape[1] != n:
                raise ProblemFormatError(
                    f"a_ub has {self.a_ub.shape[1]} columns, expected {n}"
                )
            if self.a_ub.shape[0] != self.b_ub.shape[0]:
                raise ProblemFormatError("a_ub/b_ub row mismatch")
        elif self.b_ub is not None:
            raise ProblemFormatError("b_ub given without a_ub")
        if self.a_eq is not None:
            self.a_eq = np.atleast_2d(np.asarray(self.a_eq, dtype=np.float64))
            self.b_eq = np.atleast_1d(np.asarray(self.b_eq, dtype=np.float64))
            if self.a_eq.shape[1] != n:
                raise ProblemFormatError(
                    f"a_eq has {self.a_eq.shape[1]} columns, expected {n}"
                )
            if self.a_eq.shape[0] != self.b_eq.shape[0]:
                raise ProblemFormatError("a_eq/b_eq row mismatch")
        elif self.b_eq is not None:
            raise ProblemFormatError("b_eq given without a_eq")
        self.lb = (
            np.zeros(n) if self.lb is None else np.asarray(self.lb, dtype=np.float64)
        )
        self.ub = (
            np.full(n, np.inf)
            if self.ub is None
            else np.asarray(self.ub, dtype=np.float64)
        )
        if self.lb.shape != (n,) or self.ub.shape != (n,):
            raise ProblemFormatError("bound vectors must have length n")
        if np.any(self.lb > self.ub + 1e-12):
            raise ProblemFormatError("lb > ub for some variable")

    @property
    def n(self) -> int:
        """Number of decision variables."""
        return self.c.shape[0]

    @property
    def num_ub_rows(self) -> int:
        """Number of inequality rows."""
        return 0 if self.a_ub is None else self.a_ub.shape[0]

    @property
    def num_eq_rows(self) -> int:
        """Number of equality rows."""
        return 0 if self.a_eq is None else self.a_eq.shape[0]

    def with_bounds(self, index: int, lb: float = None, ub: float = None) -> "LinearProgram":
        """Copy with one variable's bounds tightened (branching helper)."""
        new_lb = self.lb.copy()
        new_ub = self.ub.copy()
        if lb is not None:
            new_lb[index] = max(new_lb[index], lb)
        if ub is not None:
            new_ub[index] = min(new_ub[index], ub)
        return LinearProgram(
            c=self.c.copy(),
            a_ub=None if self.a_ub is None else self.a_ub.copy(),
            b_ub=None if self.b_ub is None else self.b_ub.copy(),
            a_eq=None if self.a_eq is None else self.a_eq.copy(),
            b_eq=None if self.b_eq is None else self.b_eq.copy(),
            lb=new_lb,
            ub=new_ub,
        )

    def density(self) -> float:
        """Nonzero fraction of the combined constraint matrix."""
        blocks = [m for m in (self.a_ub, self.a_eq) if m is not None]
        if not blocks:
            return 0.0
        total = sum(m.size for m in blocks)
        nnz = sum(int(np.count_nonzero(m)) for m in blocks)
        return nnz / total if total else 0.0

    def to_standard_form(self) -> "StandardFormLP":
        """Convert to equality standard form with x ≥ 0."""
        return StandardFormLP.from_linear_program(self)


@dataclass
class StandardFormLP:
    """Equality-form LP: maximize cᵀx + offset s.t. Ax = b, x ≥ 0."""

    c: np.ndarray
    a: np.ndarray
    b: np.ndarray
    offset: float = 0.0
    #: Number of *structural* columns before slacks were appended.
    num_structural: int = 0
    #: For original variable i: column of its positive part.
    pos_col: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: For original variable i: column of its negative part, or -1.
    neg_col: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: Shift applied to each original variable (its finite lb, else 0).
    shift: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def m(self) -> int:
        """Number of rows."""
        return self.a.shape[0]

    @property
    def n(self) -> int:
        """Number of columns (structural + slack)."""
        return self.a.shape[1]

    @classmethod
    def from_linear_program(cls, lp: LinearProgram) -> "StandardFormLP":
        """Build the equality standard form (see the module docstring)."""
        n = lp.n
        pos_col = np.zeros(n, dtype=np.int64)
        neg_col = np.full(n, -1, dtype=np.int64)
        shift = np.zeros(n)

        # Build structural columns: shifted (and possibly split) originals.
        col_of_next = 0
        col_blocks = []  # per-original (sign, original index) for each column
        for i in range(n):
            lo, hi = lp.lb[i], lp.ub[i]
            if np.isfinite(lo):
                shift[i] = lo
                pos_col[i] = col_of_next
                col_blocks.append((1.0, i))
                col_of_next += 1
            else:
                # Free below: split x_i = x⁺ - x⁻ (both ≥ 0).
                pos_col[i] = col_of_next
                col_blocks.append((1.0, i))
                col_of_next += 1
                neg_col[i] = col_of_next
                col_blocks.append((-1.0, i))
                col_of_next += 1
        num_structural = col_of_next

        def expand_matrix(mat: np.ndarray) -> np.ndarray:
            out = np.zeros((mat.shape[0], num_structural))
            for col, (sign, i) in enumerate(col_blocks):
                out[:, col] = sign * mat[:, i]
            return out

        rows_a = []
        rows_b = []
        ineq_rows = 0

        shift_full = shift  # x = x_struct(+/-) + shift

        if lp.a_ub is not None:
            a_ub = expand_matrix(lp.a_ub)
            b_ub = lp.b_ub - lp.a_ub @ shift_full
            rows_a.append(a_ub)
            rows_b.append(b_ub)
            ineq_rows += a_ub.shape[0]

        # Finite upper bounds become rows x_i ≤ ub_i - shift_i.
        ub_rows = []
        ub_rhs = []
        for i in range(n):
            hi = lp.ub[i]
            if np.isfinite(hi):
                row = np.zeros(num_structural)
                row[pos_col[i]] = 1.0
                if neg_col[i] >= 0:
                    row[neg_col[i]] = -1.0
                ub_rows.append(row)
                ub_rhs.append(hi - shift[i])
        if ub_rows:
            rows_a.append(np.vstack(ub_rows))
            rows_b.append(np.array(ub_rhs))
            ineq_rows += len(ub_rows)

        eq_a = eq_b = None
        if lp.a_eq is not None:
            eq_a = expand_matrix(lp.a_eq)
            eq_b = lp.b_eq - lp.a_eq @ shift_full

        total_ineq = ineq_rows
        total_rows = total_ineq + (0 if eq_a is None else eq_a.shape[0])
        total_cols = num_structural + total_ineq

        a = np.zeros((total_rows, total_cols))
        b = np.zeros(total_rows)
        row0 = 0
        slack0 = num_structural
        for block_a, block_b in zip(rows_a, rows_b):
            r = block_a.shape[0]
            a[row0 : row0 + r, :num_structural] = block_a
            a[row0 : row0 + r, slack0 + row0 : slack0 + row0 + r] = np.eye(r)
            b[row0 : row0 + r] = block_b
            row0 += r
        if eq_a is not None:
            r = eq_a.shape[0]
            a[row0 : row0 + r, :num_structural] = eq_a
            b[row0 : row0 + r] = eq_b

        c = np.zeros(total_cols)
        for col, (sign, i) in enumerate(col_blocks):
            c[col] = sign * lp.c[i]
        offset = float(lp.c @ shift_full)

        return cls(
            c=c,
            a=a,
            b=b,
            offset=offset,
            num_structural=num_structural,
            pos_col=pos_col,
            neg_col=neg_col,
            shift=shift,
        )

    def with_appended_rows(
        self, rows: np.ndarray, rhs: np.ndarray
    ) -> "StandardFormLP":
        """Copy with extra ≤-rows appended (each gains a slack column).

        ``rows`` has shape (k, n_current) over the *current* columns; the
        result has k extra rows and k extra slack columns.  This is the
        cut-incorporation operation of paper §5.2 (and how branching
        could be done if bounds were rows).
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        k = rows.shape[0]
        if rows.shape[1] != self.n or rhs.shape[0] != k:
            raise ProblemFormatError(
                f"appended rows shape {rows.shape}/{rhs.shape} does not "
                f"match {self.n} columns"
            )
        m, n = self.m, self.n
        a = np.zeros((m + k, n + k))
        a[:m, :n] = self.a
        a[m:, :n] = rows
        a[m:, n:] = np.eye(k)
        b = np.concatenate([self.b, rhs])
        c = np.concatenate([self.c, np.zeros(k)])
        return StandardFormLP(
            c=c,
            a=a,
            b=b,
            offset=self.offset,
            num_structural=self.num_structural,
            pos_col=self.pos_col,
            neg_col=self.neg_col,
            shift=self.shift,
        )

    def recover_x(self, x_standard: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to original variables."""
        n = self.pos_col.shape[0]
        x = np.zeros(n)
        for i in range(n):
            value = x_standard[self.pos_col[i]]
            if self.neg_col[i] >= 0:
                value -= x_standard[self.neg_col[i]]
            x[i] = value + self.shift[i]
        return x

    def objective_value(self, x_standard: np.ndarray) -> float:
        """Objective (original space) of a standard-form solution."""
        return float(self.c @ x_standard) + self.offset
