"""Post-optimal sensitivity analysis for LP solutions.

Branch-and-cut consumes more than the optimum from each relaxation:
reduced costs drive *reduced-cost fixing* (variables provably at their
bound in any improving solution), and dual values price constraint
tightenings.  These routines compute, from an optimal basis:

- reduced costs for every standard-form column;
- right-hand-side ranging (how far each ``b_i`` may move before the
  basis changes);
- cost ranging for nonbasic columns (how far ``c_j`` may move);
- reduced-cost fixing of integer variables given an incumbent.

All quantities are exact consequences of ``B⁻¹`` via the same
ftran/btran kernels the simplex itself uses — on a GPU they would run
on the resident factors at zero transfer cost (§5.1's regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import LPError
from repro.la.updates import ProductFormInverse
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult


@dataclass
class SensitivityReport:
    """Exact post-optimal ranges at a basic optimal solution."""

    #: Reduced cost d_j = c_j − yᵀA_j for every column (0 on basics).
    reduced_costs: np.ndarray
    #: Dual value per row.
    duals: np.ndarray
    #: (lo, hi) additive range for each b_i keeping the basis optimal.
    rhs_ranges: List[Tuple[float, float]]
    #: (lo, hi) additive range for each nonbasic c_j keeping it nonbasic.
    cost_ranges: List[Tuple[float, float]]


def analyze(sf: StandardFormLP, result: LPResult) -> SensitivityReport:
    """Sensitivity analysis at an optimal basic solution.

    Requires ``result`` to carry a basis (simplex solutions do; interior
    point ones do not and raise :class:`LPError`).
    """
    if result.basis is None or result.x_standard is None:
        raise LPError("sensitivity analysis needs a basic optimal solution")
    basis = np.asarray(result.basis, dtype=np.int64)
    m, n = sf.a.shape
    if np.any(basis < 0) or np.any(basis >= n):
        raise LPError("basis references columns outside the problem")

    pfi = ProductFormInverse(sf.a[:, basis])
    y = pfi.btran(sf.c[basis])
    reduced = sf.c - sf.a.T @ y
    reduced[basis] = 0.0

    x_basic = pfi.ftran(sf.b)

    # RHS ranging: b_i -> b_i + t moves x_B by t * (B^-1 e_i); the basis
    # stays primal feasible while x_B + t*col >= 0.
    rhs_ranges: List[Tuple[float, float]] = []
    for i in range(m):
        e_i = np.zeros(m)
        e_i[i] = 1.0
        col = pfi.ftran(e_i)
        lo, hi = -np.inf, np.inf
        for r in range(m):
            c_r = col[r]
            if abs(c_r) <= 1e-12:
                continue
            limit = -x_basic[r] / c_r
            if c_r > 0:
                lo = max(lo, limit)
            else:
                hi = min(hi, limit)
        rhs_ranges.append((lo, hi))

    # Cost ranging for nonbasic columns (maximization, x >= 0): column j
    # stays nonbasic while its reduced cost stays <= 0, i.e. c_j may
    # increase by at most -d_j and decrease without bound.
    nonbasic = np.ones(n, dtype=bool)
    nonbasic[basis] = False
    cost_ranges: List[Tuple[float, float]] = []
    for j in range(n):
        if nonbasic[j]:
            cost_ranges.append((-np.inf, -float(reduced[j])))
        else:
            cost_ranges.append((np.nan, np.nan))  # basic: not covered here

    return SensitivityReport(
        reduced_costs=reduced,
        duals=y,
        rhs_ranges=rhs_ranges,
        cost_ranges=cost_ranges,
    )


def reduced_cost_fixing(
    sf: StandardFormLP,
    result: LPResult,
    incumbent_objective: float,
    integer_columns: np.ndarray,
) -> np.ndarray:
    """Columns provably zero in every solution beating the incumbent.

    For a maximization LP bound ``z*`` and incumbent ``z_inc``, a
    nonbasic column with reduced cost ``d_j`` can take value at most
    ``(z* − z_inc) / (−d_j)``; when that is < 1 for an integer column,
    the variable is fixed at 0 in the subtree.  Returns the fixable
    column indices.
    """
    if result.basis is None:
        raise LPError("reduced-cost fixing needs a basic optimal solution")
    report = analyze(sf, result)
    slack = result.objective - incumbent_objective
    if slack < 0:
        slack = 0.0
    fixable = []
    nonbasic = np.ones(sf.n, dtype=bool)
    nonbasic[np.asarray(result.basis, dtype=np.int64)] = False
    for j in np.asarray(integer_columns, dtype=np.int64):
        if not nonbasic[j]:
            continue
        d_j = report.reduced_costs[j]
        if d_j < -1e-9 and slack / (-d_j) < 1.0 - 1e-9:
            fixable.append(int(j))
    return np.array(fixable, dtype=np.int64)
