"""Mehrotra predictor–corrector interior-point method.

Paper §2.3: interior-point methods are "the preferred method for solving
sparse problems" and several GPU implementations exist.  This solver
provides the interior-point alternative to the simplex for the E3
dense/sparse code-path experiments: its per-iteration work is one
normal-equations Cholesky (``A D Aᵀ``), the kernel whose dense/sparse
GPU efficiency gap the paper discusses.

Standard form, maximization: ``max cᵀx, Ax = b, x ≥ 0`` is solved as the
equivalent minimization of ``−cᵀx``.  Implementation follows Wright's
*Primal-Dual Interior-Point Methods* (Ch. 10): affine predictor,
centering corrector with σ = (μ_aff/μ)³, 0.995 fraction-to-boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, Config
from repro.errors import NotPositiveDefiniteError, ReproError
from repro.guard import budget as guard_budget
from repro.guard.watchdog import IterationWatchdog, WatchdogSignal
from repro.la.dense import back_substitution, cholesky, forward_substitution
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult, LPStatus


@dataclass
class IPMOptions:
    """Interior-point tuning knobs."""

    max_iterations: int = 100
    #: Relative tolerance on primal/dual residuals and duality gap.
    tolerance: float = 1e-8
    #: Initial diagonal regularization of the normal equations.
    regularization: float = 1e-10
    config: Config = None

    def __post_init__(self):
        if self.config is None:
            self.config = DEFAULT_CONFIG
        if self.max_iterations <= 0:
            raise ReproError(
                f"max_iterations must be positive, got {self.max_iterations!r}"
            )
        if not self.tolerance > 0:
            raise ReproError(
                f"tolerance must be positive, got {self.tolerance!r}"
            )


def _solve_normal_equations(
    a: np.ndarray, d: np.ndarray, rhs: np.ndarray, reg: float
) -> np.ndarray:
    """Solve (A D Aᵀ + reg·I) dy = rhs via our Cholesky."""
    m = a.shape[0]
    attempt = reg
    for _ in range(8):
        try:
            normal = (a * d) @ a.T + attempt * np.eye(m)
            low = cholesky(normal)
            y = forward_substitution(low, rhs)
            return back_substitution(low.T, y)
        except NotPositiveDefiniteError:
            attempt = max(attempt * 100.0, 1e-12)
    raise NotPositiveDefiniteError(
        f"normal equations not SPD even with regularization {attempt:g}"
    )


def interior_point_solve(
    sf: StandardFormLP, options: Optional[IPMOptions] = None
) -> LPResult:
    """Solve ``max cᵀx + offset, Ax = b, x ≥ 0`` by Mehrotra's method.

    Returns OPTIMAL with an interior (non-basic) solution, or
    ITERATION_LIMIT when convergence fails (degenerate/unbounded
    problems should use the simplex path instead).
    """
    options = options or IPMOptions()
    a = sf.a
    b = sf.b
    c = -sf.c  # minimize -c^T x
    m, n = a.shape
    if m == 0 or n == 0:
        return LPResult(status=LPStatus.ITERATION_LIMIT)

    # Starting point (Mehrotra's heuristic, simplified).
    x = np.ones(n)
    s = np.ones(n)
    y = np.zeros(m)
    norm_scale = 1.0 + max(np.linalg.norm(b), np.linalg.norm(c))

    guard_ctx = guard_budget.active()
    watchdog = (
        IterationWatchdog(
            "interior_point", options=guard_ctx.watchdog_options, sense="min"
        )
        if guard_ctx is not None
        else None
    )

    for iteration in range(options.max_iterations):
        r_p = b - a @ x
        r_d = c - a.T @ y - s
        mu = float(x @ s) / n

        if guard_ctx is not None:
            if guard_ctx.deadline_hit():
                return LPResult(status=LPStatus.TIME_LIMIT, iterations=iteration)
            signal = watchdog.observe(iteration, merit=mu, vector=x)
            if signal in (WatchdogSignal.NONFINITE, WatchdogSignal.DIVERGED):
                return LPResult(status=LPStatus.NUMERICAL, iterations=iteration)

        if (
            np.linalg.norm(r_p) <= options.tolerance * norm_scale
            and np.linalg.norm(r_d) <= options.tolerance * norm_scale
            and mu <= options.tolerance
        ):
            return LPResult(
                status=LPStatus.OPTIMAL,
                objective=float(sf.c @ x) + sf.offset,
                x_standard=x.copy(),
                duals=-y,
                iterations=iteration,
            )

        d = x / s

        # Affine (predictor) direction.
        rhs_aff = r_p + (a * d) @ r_d + a @ x
        # note: A S⁻¹(XSe) = A x, so the -r_xs term contributes +A x.
        dy_aff = _solve_normal_equations(a, d, rhs_aff, options.regularization)
        ds_aff = r_d - a.T @ dy_aff
        dx_aff = -x - d * ds_aff

        alpha_p_aff = _step_length(x, dx_aff)
        alpha_d_aff = _step_length(s, ds_aff)
        mu_aff = float((x + alpha_p_aff * dx_aff) @ (s + alpha_d_aff * ds_aff)) / n
        sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.1

        # Corrector: r_xs = -XSe - dXaff dSaff e + sigma*mu*e.
        r_xs = -x * s - dx_aff * ds_aff + sigma * mu
        rhs = r_p + (a * d) @ r_d - a @ (r_xs / s)
        dy = _solve_normal_equations(a, d, rhs, options.regularization)
        ds = r_d - a.T @ dy
        dx = r_xs / s - d * ds

        alpha_p = min(1.0, 0.995 * _step_length(x, dx, cap=np.inf))
        alpha_d = min(1.0, 0.995 * _step_length(s, ds, cap=np.inf))
        x = x + alpha_p * dx
        s = s + alpha_d * ds
        y = y + alpha_d * dy
        # Keep strictly interior.
        x = np.maximum(x, 1e-14)
        s = np.maximum(s, 1e-14)

    return LPResult(status=LPStatus.ITERATION_LIMIT, iterations=options.max_iterations)


def _step_length(v: np.ndarray, dv: np.ndarray, cap: float = 1.0) -> float:
    """Largest α ≤ cap with v + α dv ≥ 0."""
    negative = dv < 0
    if not negative.any():
        return float(cap) if np.isfinite(cap) else 1.0
    limit = float(np.min(-v[negative] / dv[negative]))
    return min(cap, limit) if np.isfinite(cap) else limit
