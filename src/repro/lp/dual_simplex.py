"""Dual simplex re-optimization from a warm basis.

This is the §5.2/§5.3 reuse engine: after a branch tightens a bound or a
cut row is appended, the parent node's optimal basis remains *dual*
feasible (reduced costs unchanged; the new slack prices at zero) while
primal feasibility breaks only in the new/changed rows.  The dual
simplex repairs primal feasibility in a handful of pivots instead of
re-solving from scratch — with the matrix staying resident on the device
the whole time.

``dual_simplex_resolve`` raises :class:`repro.errors.LPError` when the
supplied basis is unusable (singular, references internal artificial
columns, or is not dual feasible); callers fall back to a cold
:func:`repro.lp.simplex.solve_standard_form`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LPError, SingularMatrixError
from repro.guard import budget as guard_budget
from repro.guard.watchdog import IterationWatchdog, WatchdogSignal
from repro.la.updates import ProductFormInverse
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import GUARD_EVERY, NULL_HOOK, CostHook, SimplexOptions
from repro import obs


def dual_simplex_resolve(
    sf: StandardFormLP,
    basis: np.ndarray,
    options: Optional[SimplexOptions] = None,
    hook: CostHook = NULL_HOOK,
    pfi: Optional[ProductFormInverse] = None,
    state_out: Optional[dict] = None,
) -> LPResult:
    """Re-optimize ``max cᵀx, Ax=b, x≥0`` starting from ``basis``.

    ``basis`` must name m valid columns forming a dual-feasible basis
    (the typical source: the parent LP's optimal basis extended with the
    slacks of any newly appended rows).

    ``pfi`` is an optional resident factorization of ``sf.a[:, basis]``
    (the parent node's, via :mod:`repro.lp.warm`): when supplied it is
    cloned and pivoted on directly, skipping the initial refactorization
    — the caller must guarantee the matrix columns are unchanged (a
    stale factorization is caught by the caller's warm audit, not here).
    ``state_out``, when given, receives ``{"pfi", "basis",
    "reused_factors"}`` on an OPTIMAL return so the caller can hand the
    live factorization to the next warm start.
    """
    with obs.span(
        "lp.dual_resolve", category="lp", m=sf.a.shape[0], n=sf.a.shape[1]
    ) as sp:
        result = _dual_simplex_resolve(sf, basis, options, hook, pfi, state_out)
        sp.set(status=result.status.value, iterations=result.iterations)
        return result


def _dual_simplex_resolve(
    sf: StandardFormLP,
    basis: np.ndarray,
    options: Optional[SimplexOptions],
    hook: CostHook,
    warm_pfi: Optional[ProductFormInverse] = None,
    state_out: Optional[dict] = None,
) -> LPResult:
    options = options or SimplexOptions()
    tol = options.config.tolerances
    m, n = sf.a.shape
    basis = np.asarray(basis, dtype=np.int64).copy()

    if basis.shape[0] != m:
        raise LPError(f"basis has {basis.shape[0]} entries for {m} rows")
    if np.any(basis < 0) or np.any(basis >= n):
        raise LPError("basis references columns outside the problem")
    if len(set(basis.tolist())) != m:
        raise LPError("basis has repeated columns")

    reused_factors = False
    if warm_pfi is not None and warm_pfi.n == m:
        # Clone so our pivots never corrupt the caller's resident copy
        # (siblings and strong-branching probes share the parent state).
        pfi = warm_pfi.clone()
        if pfi.num_etas >= options.refactor_interval:
            try:
                pfi.refactorize(sf.a[:, basis])
            except SingularMatrixError as exc:
                raise LPError(f"warm basis is singular: {exc}") from exc
            hook.on_factorize(m)
        else:
            reused_factors = True
    else:
        try:
            pfi = ProductFormInverse(sf.a[:, basis])
        except SingularMatrixError as exc:
            raise LPError(f"warm basis is singular: {exc}") from exc
        hook.on_factorize(m)

    def ftran(v: np.ndarray) -> np.ndarray:
        hook.on_ftran(m, pfi.num_etas)
        return pfi.ftran(v)

    def btran(v: np.ndarray) -> np.ndarray:
        hook.on_btran(m, pfi.num_etas)
        return pfi.btran(v)

    y = btran(sf.c[basis])
    hook.on_pricing(m, n)
    reduced = sf.c - sf.a.T @ y
    nonbasic = np.ones(n, dtype=bool)
    nonbasic[basis] = False
    if np.any(reduced[nonbasic] > 1e-6):
        raise LPError("warm basis is not dual feasible")

    x_basic = ftran(sf.b)
    max_iter = options.max_iterations
    if max_iter is None:
        max_iter = options.config.solver.simplex_iter_limit(m, n)

    iterations = 0
    updates = 0
    guard_ctx = guard_budget.active()
    watchdog = (
        IterationWatchdog(
            "dual_simplex", options=guard_ctx.watchdog_options, sense="min"
        )
        if guard_ctx is not None
        else None
    )
    while iterations < max_iter:
        if guard_ctx is not None and iterations % GUARD_EVERY == 0:
            if guard_ctx.deadline_hit():
                return LPResult(status=LPStatus.TIME_LIMIT, iterations=iterations)
            # Merit: total primal infeasibility, driven to zero.
            signal = watchdog.observe(
                iterations,
                merit=float(np.sum(np.maximum(-x_basic, 0.0))),
                vector=x_basic,
            )
            if signal in (WatchdogSignal.NONFINITE, WatchdogSignal.DIVERGED):
                return LPResult(status=LPStatus.NUMERICAL, iterations=iterations)
        leave_pos = int(np.argmin(x_basic))
        if x_basic[leave_pos] >= -tol.feasibility:
            # Primal feasible and dual feasible: optimal.
            x_std = np.zeros(n)
            x_std[basis] = np.maximum(x_basic, 0.0)
            y = btran(sf.c[basis])
            if state_out is not None:
                state_out["pfi"] = pfi
                state_out["basis"] = basis.copy()
                state_out["reused_factors"] = reused_factors
            return LPResult(
                status=LPStatus.OPTIMAL,
                objective=float(sf.c @ x_std) + sf.offset,
                x_standard=x_std,
                duals=y,
                iterations=iterations,
                basis=basis.copy(),
            )

        e_r = np.zeros(m)
        e_r[leave_pos] = 1.0
        rho = btran(e_r)
        hook.on_pricing(m, n)
        alpha = sf.a.T @ rho
        # Keep reduced costs consistent with the current basis.
        y = btran(sf.c[basis])
        reduced = sf.c - sf.a.T @ y
        reduced[basis] = 0.0

        candidates = nonbasic & (alpha < -tol.pivot)
        if not candidates.any():
            return LPResult(status=LPStatus.INFEASIBLE, iterations=iterations)
        ratios = np.where(candidates, reduced / np.where(candidates, alpha, 1.0), np.inf)
        # Dual ratio test: smallest |d_j / alpha_j| keeps dual feasibility.
        entering = int(np.argmin(ratios))
        if not np.isfinite(ratios[entering]):
            return LPResult(status=LPStatus.INFEASIBLE, iterations=iterations)

        w = ftran(sf.a[:, entering])
        if abs(w[leave_pos]) <= tol.pivot:
            # Numerically unusable pivot; refactorize and retry once.
            pfi.refactorize(sf.a[:, basis])
            hook.on_factorize(m)
            x_basic = ftran(sf.b)
            w = ftran(sf.a[:, entering])
            if abs(w[leave_pos]) <= tol.pivot:
                raise LPError("dual simplex stalled on a zero pivot")

        theta_p = x_basic[leave_pos] / w[leave_pos]
        x_basic = x_basic - theta_p * w
        x_basic[leave_pos] = theta_p
        nonbasic[entering] = False
        nonbasic[basis[leave_pos]] = True
        basis[leave_pos] = entering
        try:
            pfi.update(w, leave_pos)
            hook.on_update(m)
        except SingularMatrixError:
            pfi.refactorize(sf.a[:, basis])
            hook.on_factorize(m)
            x_basic = ftran(sf.b)
        updates += 1
        iterations += 1
        if updates >= options.refactor_interval:
            pfi.refactorize(sf.a[:, basis])
            hook.on_factorize(m)
            x_basic = ftran(sf.b)
            updates = 0

    return LPResult(status=LPStatus.ITERATION_LIMIT, iterations=iterations)
