"""LP presolve: cheap reductions applied before the simplex.

Conventional solver front-end (SCIP-style, heavily simplified): fixed
variables are substituted out, empty rows are checked and dropped, and
singleton inequality rows become bound tightenings.  Presolve runs to a
fixpoint and reports trivial infeasibility without invoking the simplex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.lp.problem import LinearProgram


class PresolveStatus(enum.Enum):
    """Outcome of presolve."""

    REDUCED = "reduced"        # a (possibly smaller) LP remains
    INFEASIBLE = "infeasible"  # proven infeasible without solving
    SOLVED = "solved"          # all variables fixed; solution known


@dataclass
class PresolveResult:
    """Presolve outcome plus the postsolve mapping."""

    status: PresolveStatus
    #: The reduced problem (None unless status is REDUCED).
    lp: Optional[LinearProgram]
    #: Maps a reduced-space solution back to the original space.
    postsolve: Callable[[np.ndarray], np.ndarray]
    #: Objective contribution of eliminated variables.
    fixed_objective: float
    #: Original indices of the variables kept in the reduced problem.
    kept: np.ndarray


def presolve(lp: LinearProgram, max_passes: int = 10) -> PresolveResult:
    """Apply fixpoint presolve reductions to ``lp``."""
    from repro import obs

    with obs.span("lp.presolve", category="lp", n=lp.n) as sp:
        result = _presolve(lp, max_passes)
        sp.set(status=result.status.value)
        return result


def _presolve(lp: LinearProgram, max_passes: int) -> PresolveResult:
    n = lp.n
    lb = lp.lb.copy()
    ub = lp.ub.copy()
    a_ub = None if lp.a_ub is None else lp.a_ub.copy()
    b_ub = None if lp.b_ub is None else lp.b_ub.copy()
    a_eq = None if lp.a_eq is None else lp.a_eq.copy()
    b_eq = None if lp.b_eq is None else lp.b_eq.copy()
    tol = 1e-9

    keep_rows_ub = (
        np.ones(0, dtype=bool) if a_ub is None else np.ones(a_ub.shape[0], dtype=bool)
    )

    for _ in range(max_passes):
        changed = False

        if np.any(lb > ub + 1e-9):
            return _infeasible(n)

        # Singleton inequality rows -> bound tightening.
        if a_ub is not None:
            for i in range(a_ub.shape[0]):
                if not keep_rows_ub[i]:
                    continue
                nz = np.nonzero(np.abs(a_ub[i]) > tol)[0]
                if nz.size == 0:
                    if b_ub[i] < -1e-9:
                        return _infeasible(n)
                    keep_rows_ub[i] = False
                    changed = True
                elif nz.size == 1:
                    j = int(nz[0])
                    coeff = a_ub[i, j]
                    bound = b_ub[i] / coeff
                    if coeff > 0 and bound < ub[j] - 1e-12:
                        ub[j] = bound
                        changed = True
                    elif coeff < 0 and bound > lb[j] + 1e-12:
                        lb[j] = bound
                        changed = True
                    keep_rows_ub[i] = False

        # Empty equality rows.
        if a_eq is not None:
            for i in range(a_eq.shape[0]):
                nz = np.nonzero(np.abs(a_eq[i]) > tol)[0]
                if nz.size == 0 and abs(b_eq[i]) > 1e-9:
                    return _infeasible(n)

        if not changed:
            break

    if np.any(lb > ub + 1e-9):
        return _infeasible(n)

    # Substitute out fixed variables.
    fixed = np.isfinite(lb) & np.isfinite(ub) & (ub - lb <= 1e-12)
    kept = np.nonzero(~fixed)[0]
    fixed_vals = np.where(fixed, np.where(np.isfinite(lb), lb, 0.0), 0.0)
    fixed_objective = float(lp.c[fixed] @ fixed_vals[fixed])

    def make_postsolve(kept_idx: np.ndarray, fixed_values: np.ndarray):
        def postsolve(x_reduced: np.ndarray) -> np.ndarray:
            x = fixed_values.copy()
            x[kept_idx] = x_reduced
            return x

        return postsolve

    postsolve = make_postsolve(kept, fixed_vals)

    if kept.size == 0:
        # Everything fixed; feasibility of remaining rows must be checked.
        x = fixed_vals
        if a_ub is not None and np.any(a_ub @ x > b_ub + 1e-7):
            return _infeasible(n)
        if a_eq is not None and np.any(np.abs(a_eq @ x - b_eq) > 1e-7):
            return _infeasible(n)
        return PresolveResult(
            status=PresolveStatus.SOLVED,
            lp=None,
            postsolve=postsolve,
            fixed_objective=fixed_objective,
            kept=kept,
        )

    new_a_ub = new_b_ub = None
    if a_ub is not None and keep_rows_ub.any():
        rows = np.nonzero(keep_rows_ub)[0]
        new_a_ub = a_ub[np.ix_(rows, kept)]
        new_b_ub = b_ub[rows] - a_ub[rows][:, fixed] @ fixed_vals[fixed]
    new_a_eq = new_b_eq = None
    if a_eq is not None and a_eq.shape[0]:
        new_a_eq = a_eq[:, kept]
        new_b_eq = b_eq - a_eq[:, fixed] @ fixed_vals[fixed]

    reduced = LinearProgram(
        c=lp.c[kept],
        a_ub=new_a_ub,
        b_ub=new_b_ub,
        a_eq=new_a_eq,
        b_eq=new_b_eq,
        lb=lb[kept],
        ub=ub[kept],
    )
    return PresolveResult(
        status=PresolveStatus.REDUCED,
        lp=reduced,
        postsolve=postsolve,
        fixed_objective=fixed_objective,
        kept=kept,
    )


def _infeasible(n: int) -> PresolveResult:
    return PresolveResult(
        status=PresolveStatus.INFEASIBLE,
        lp=None,
        postsolve=lambda x: np.zeros(n),
        fixed_objective=0.0,
        kept=np.zeros(0, dtype=np.int64),
    )
