"""The dense crossover: batched PDHG vs batched simplex on one device.

The design question behind :mod:`repro.lp.pdhg` (and experiment E14): at
what node-LP size does the first-order engine's kernel stream — fixed
launch count per sweep, **zero** serial depth — beat the batched simplex
stream, whose triangular solves pay ``serial_depth = m`` synchronization
per lockstep iteration?  Small LPs favor simplex (few pivots, the sync
cost hasn't compounded).  As ``m`` grows two effects compound against
it: the per-iteration sync bill grows like ``m`` while the pivot count
grows like ``m`` again (a quadratic total), and — on the box-constrained
LPs MIP nodes actually are — every finite upper bound becomes an extra
tableau row, roughly doubling the effective ``m``.  PDHG's sweep count
is governed by conditioning, not dimension (it plateaus once Ruiz
scaling has done its work), and bounds are free projections.  Somewhere
in between the curves cross — this module measures where.

Both engines solve the *same* batch of dense box-constrained LPs
(shared ``A`` across members, per-member rhs — the B&B-frontier shape,
which also satisfies the lockstep-simplex preconditions) on fresh
simulated devices, and the sweep asserts they agree on every member
before timing is believed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import V100, DeviceSpec
from repro.lp.batch_simplex import solve_lp_batch_on_device
from repro.lp.pdhg import PDHGOptions
from repro.lp.pdhg_batch import solve_lp_pdhg_batch_on_device
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.obs.bench import bench_payload

#: Default KKT tolerance for the crossover sweep.  The node-LP regime
#: needs bound-quality answers, not vertex precision; 1e-4 is the
#: accuracy class the batched-MIP literature runs first-order node
#: relaxations at (bounds are tolerance-padded downstream).
CROSSOVER_EPS = 1e-4

#: Relative objective agreement required between the two engines before
#: a timing row is believed (generous vs eps: both sides are inexact at
#: the KKT scale, the comparison is on objectives).
CROSSOVER_AGREE_RTOL = 1e-2


def crossover_instances(
    m: int, n: int, batch: int, seed: int = 2027
) -> List[LinearProgram]:
    """A B&B-frontier-shaped batch of dense box-constrained LPs.

    Shared positive ``A`` (so PDHG's fused-GEMM fast path and the
    lockstep simplex both apply), per-member rhs at 30–50% of the row
    sums, and the unit box ``0 ≤ x ≤ 1`` — the fractional-knapsack shape
    a MIP relaxation presents.  The box is the honest asymmetry: the
    lockstep simplex materializes each finite upper bound as a tableau
    row (its ``m`` is really ``m + n``), while PDHG projects bounds for
    free.
    """
    rng = np.random.default_rng(seed)
    a = 0.1 + rng.random((m, n))
    c = 1.0 + rng.random(n)
    lps = []
    for _ in range(batch):
        b = a.sum(axis=1) * (0.3 + 0.2 * rng.random(m))
        lps.append(
            LinearProgram(
                c=c.copy(),
                a_ub=a.copy(),
                b_ub=b,
                lb=np.zeros(n),
                ub=np.ones(n),
            )
        )
    return lps


def measure_crossover_point(
    sizes: Sequence[int],
    batch: int = 16,
    eps: float = CROSSOVER_EPS,
    spec: DeviceSpec = V100,
    seed: int = 2027,
) -> Tuple[List[Dict], Dict]:
    """Time both engines across ``sizes``; returns (rows, summary).

    Each row is a flat JSON-ready dict; the summary carries the measured
    crossover (smallest ``m`` where batched PDHG's simulated makespan
    beats batched simplex's), or ``None`` when the sweep never crossed.
    """
    options = PDHGOptions(tolerance=eps)
    rows: List[Dict] = []
    for size in sizes:
        m = n = int(size)
        lps = crossover_instances(m, n, batch, seed=seed)

        pdhg_dev = Device(spec)
        pdhg = solve_lp_pdhg_batch_on_device(lps, pdhg_dev, options=options)
        pdhg_seconds = pdhg_dev.clock.now

        simplex_dev = Device(spec)
        simplex = solve_lp_batch_on_device(lps, simplex_dev)
        simplex_seconds = simplex_dev.clock.now

        max_rel_gap = 0.0
        for i in range(batch):
            if pdhg.statuses[i] is not LPStatus.OPTIMAL:
                raise AssertionError(
                    f"crossover sweep: PDHG member {i} at m={m} ended "
                    f"{pdhg.statuses[i].value}, not optimal"
                )
            if simplex.statuses[i] is not LPStatus.OPTIMAL:
                raise AssertionError(
                    f"crossover sweep: simplex member {i} at m={m} ended "
                    f"{simplex.statuses[i].value}, not optimal"
                )
            scale = 1.0 + abs(float(simplex.objectives[i]))
            rel = abs(float(pdhg.objectives[i]) - float(simplex.objectives[i])) / scale
            max_rel_gap = max(max_rel_gap, rel)
        if max_rel_gap > CROSSOVER_AGREE_RTOL:
            raise AssertionError(
                f"crossover sweep: engines disagree at m={m} "
                f"(relative gap {max_rel_gap:.3g})"
            )

        rows.append(
            {
                "m": m,
                "n": n,
                "batch": batch,
                "pdhg_seconds": pdhg_seconds,
                "simplex_seconds": simplex_seconds,
                "speedup": simplex_seconds / pdhg_seconds,
                "pdhg_sweeps": int(pdhg.iterations),
                "pdhg_restarts": int(pdhg.restarts),
                "max_rel_gap": max_rel_gap,
            }
        )

    crossover_m: Optional[int] = None
    for row in rows:
        if row["pdhg_seconds"] < row["simplex_seconds"]:
            crossover_m = row["m"]
            break
    summary = {
        "crossover_m": crossover_m,
        "largest_speedup": max(r["speedup"] for r in rows),
        "device": spec.name,
    }
    return rows, summary


def crossover_bench_payload(
    sizes: Sequence[int],
    batch: int = 16,
    eps: float = CROSSOVER_EPS,
    spec: DeviceSpec = V100,
    seed: int = 2027,
) -> Dict:
    """Run the sweep and package it in the ``repro.obs.bench`` schema."""
    rows, summary = measure_crossover_point(
        sizes, batch=batch, eps=eps, spec=spec, seed=seed
    )
    return bench_payload(
        "pdhg_crossover",
        rows,
        params={
            "batch": batch,
            "eps": eps,
            "seed": seed,
            "device": spec.name,
            "sizes": ",".join(str(s) for s in sizes),
        },
        summary=summary,
    )
