"""Lockstep batched PDHG: a whole B&B frontier per matvec sweep.

Paper §5.5 argues the way to keep a GPU busy on MIP is to advance many
node LPs at once; "Batched First-Order Methods for Parallel LP Solving
in MIP" shows first-order methods make that *trivially* fusable, because
every PDHG iteration of every member is the same two matvecs.  This
module stacks k same-shape LPs into ``(k, n)`` / ``(k, m)`` iterate
blocks and advances them in lockstep:

- **shared-K fast path**: sibling node LPs from branch-and-bound share
  the constraint matrix and differ only in bounds (and possibly rhs), so
  the whole sweep collapses to two dense GEMMs — ``Y @ K`` and
  ``X̄ @ Kᵀ`` — one fused matvec workload for the entire frontier;
- heterogeneous batches fall back to batched matvecs (einsum), the
  batched-GEMV shape a MAGMA-style library would run;
- members terminate (eps-KKT), are declared infeasible/unbounded by the
  same two-consecutive-checks Farkas-ray test as the single solver, or
  hit the iteration limit — each is frozen by masking while the rest of
  the batch keeps sweeping, mirroring :mod:`repro.lp.batch_simplex`;
- restarts and primal-weight rebalancing are per member: each member
  keeps its own running average, restart anchor, and ω.

``solve_lp_pdhg_batch_on_device`` prices the sweep on a simulated
device: the shared-K path charges plain GEMMs, the heterogeneous path
batched GEMMs, plus the elementwise update traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import obs
from repro.errors import LPError, ShapeError
from repro.guard import budget as guard_budget
from repro.lp.pdhg import (
    NULL_PDHG_HOOK,
    PDHGCostHook,
    PDHGOptions,
    PDHGResult,
    PDHGStats,
    _check_dual_ray,
    _check_primal_ray,
    _kkt,
    _score,
    _solve_box_only,
    power_iteration_norm,
    ruiz_equilibrate,
    saddle_from_lp,
    solve_saddle_pdhg,
)
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus


@dataclass
class BatchPDHGResult:
    """Per-member outcomes of a batched PDHG solve."""

    statuses: List[LPStatus]
    #: Original (maximization) objectives; NaN unless optimal.
    objectives: np.ndarray
    #: (k, n) primal solutions in the original variable space.
    x: np.ndarray
    #: Tolerance-padded upper bounds (B&B-safe); −inf for infeasible
    #: members, +inf when no usable dual information exists.
    bounds: np.ndarray
    #: Lockstep sweeps executed (shared across the batch).
    iterations: int
    #: Sweeps each member was live for.
    member_iterations: np.ndarray
    #: Restarts summed over members.
    restarts: int
    #: Full per-member detail.
    results: List[PDHGResult] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        """True when every member reached an eps-KKT point."""
        return all(s is LPStatus.OPTIMAL for s in self.statuses)


def batch_compatible(lps: List[LinearProgram]) -> bool:
    """True when the members can advance in one lockstep batch.

    PDHG handles bounds by projection and equality rows natively, so the
    only precondition is shape agreement: same n and the same eq/ub row
    counts.  (Compare :func:`repro.lp.batch_simplex.lockstep_compatible`,
    which also needs ``lb == 0``, ``b ≥ 0``, and a shared finite-ub
    pattern — the batched-PDHG batch is strictly more inclusive.)
    """
    if not lps:
        return False
    first = lps[0]
    return all(
        lp.n == first.n
        and lp.num_eq_rows == first.num_eq_rows
        and lp.num_ub_rows == first.num_ub_rows
        for lp in lps
    )


@dataclass
class _Member:
    """Restart-span bookkeeping for one batch member."""

    score_at_restart: float = np.inf
    last_candidate_score: float = np.inf
    span_start: int = 0
    ray_streak_infeasible: int = 0
    ray_streak_unbounded: int = 0
    stats: PDHGStats = field(default_factory=PDHGStats)


def solve_lp_pdhg_batch(
    lps: List[LinearProgram],
    options: Optional[PDHGOptions] = None,
    hook: PDHGCostHook = NULL_PDHG_HOOK,
) -> BatchPDHGResult:
    """Advance k same-shape LPs by lockstep restarted PDHG."""
    if not lps:
        raise LPError("empty LP batch")
    if not batch_compatible(lps):
        raise ShapeError("all batch members must share (n, eq rows, ub rows)")
    options = options or PDHGOptions()

    saddles = [saddle_from_lp(lp) for lp in lps]
    k = len(saddles)
    m, n = saddles[0].m, saddles[0].n
    num_eq = saddles[0].num_eq
    max_iterations = options.max_iterations
    if max_iterations is None:
        max_iterations = 4000 + 200 * (m + n)

    results: List[Optional[PDHGResult]] = [None] * k
    member_iterations = np.zeros(k, dtype=int)

    if m == 0 or all(not np.any(s.k) for s in saddles):
        # No (effective) rows anywhere: each member is a box LP with a
        # closed form — no sweeping to fuse.
        for i, s in enumerate(saddles):
            results[i] = solve_saddle_pdhg(s, options, hook)
        return _collect(results, member_iterations, 0, n)

    with obs.span("lp.pdhg_batch", category="lp", batch=k, m=m, n=n) as sp:
        shared = all(np.array_equal(saddles[0].k, s.k) for s in saddles[1:])

        # Conditioning: Ruiz-equilibrate the shared matrix (sibling node
        # LPs).  Heterogeneous batches run unscaled — members from the
        # same generator are already commensurate, and per-member diagonal
        # scaling would forfeit the fused-sweep layout.
        if shared:
            d_row, d_col = ruiz_equilibrate(saddles[0].k, options.scaling_iterations)
        else:
            d_row, d_col = np.ones(m), np.ones(n)
        ks_shared = saddles[0].k * d_row[:, None] * d_col[None, :]
        if not shared:
            ks_all = np.stack([s.k for s in saddles])

        qs = np.stack([s.q * d_row for s in saddles])            # (k, m)
        cs = np.stack([s.c_hat * d_col for s in saddles])        # (k, n)
        lbs = np.stack([s.lb / d_col for s in saddles])
        ubs = np.stack([s.ub / d_col for s in saddles])

        if shared:
            norm_k = power_iteration_norm(ks_shared, options.power_iterations, hook)
            norms = np.full(k, norm_k if norm_k > 0 else 1.0)
        else:
            norms = np.empty(k)
            for i in range(k):
                nk = power_iteration_norm(
                    saddles[i].k, options.power_iterations, hook
                )
                norms[i] = nk if nk > 0 else 1.0
        eta = options.step_size_scale / norms                    # (k,)

        c_norms = np.linalg.norm(cs, axis=1)
        q_norms = np.linalg.norm(qs, axis=1)
        omega = np.where(
            (c_norms > 1e-12) & (q_norms > 1e-12), c_norms / np.maximum(q_norms, 1e-12), 1.0
        )
        tau = eta / omega
        sigma = eta * omega

        x = np.clip(np.zeros((k, n)), lbs, ubs)
        y = np.zeros((k, m))
        x_anchor, y_anchor = x.copy(), y.copy()
        x_prev_anchor, y_prev_anchor = x.copy(), y.copy()
        sum_x, sum_y = np.zeros((k, n)), np.zeros((k, m))
        navg = np.zeros(k, dtype=int)

        active = np.ones(k, dtype=bool)
        for i, s in enumerate(saddles):
            if np.any(s.lb > s.ub):
                results[i] = PDHGResult(status=LPStatus.INFEASIBLE)
                active[i] = False
        members = [_Member() for _ in range(k)]
        eps = options.tolerance
        sweeps = 0

        def unscale(i: int):
            return x[i] * d_col, y[i] * d_row

        def finish(i: int, st: LPStatus, pr, dr, gp, p, d) -> None:
            xo, yo = unscale(i)
            s = saddles[i]
            members[i].stats.iterations = int(member_iterations[i])
            results[i] = PDHGResult(
                status=st,
                objective=-p,
                x=xo,
                y=yo,
                reduced_costs=s.c_hat - s.k.T @ yo,
                primal_residual=pr,
                dual_residual=dr,
                gap=gp,
                primal_objective_min=p,
                dual_objective_min=d,
                stats=members[i].stats,
            )
            active[i] = False

        guard_ctx = guard_budget.active()
        timed_out = False

        while active.any() and sweeps < max_iterations:
            if guard_ctx is not None and guard_ctx.deadline_hit():
                timed_out = True
                break
            steps = min(options.check_every, max_iterations - sweeps)
            act_col = active[:, None]
            for _ in range(steps):
                hook.on_iteration(int(active.sum()), m, n)
                if shared:
                    kt_y = y @ ks_shared                          # (k, n)
                else:
                    kt_y = np.einsum("kmn,km->kn", ks_all, y)
                x_new = np.clip(x - tau[:, None] * (cs - kt_y), lbs, ubs)
                if shared:
                    k_xbar = (2.0 * x_new - x) @ ks_shared.T      # (k, m)
                else:
                    k_xbar = np.einsum("kmn,kn->km", ks_all, 2.0 * x_new - x)
                y_new = y + sigma[:, None] * (qs - k_xbar)
                if num_eq < m:
                    y_new[:, num_eq:] = np.maximum(y_new[:, num_eq:], 0.0)
                x = np.where(act_col, x_new, x)
                y = np.where(active[:, None], y_new, y)
                sum_x[active] += x[active]
                sum_y[active] += y[active]
                navg[active] += 1
                member_iterations[active] += 1
                sweeps += 1

            hook.on_check(int(active.sum()), m, n)
            for i in np.nonzero(active)[0]:
                s = saddles[i]
                mem = members[i]
                if not (np.all(np.isfinite(x[i])) and np.all(np.isfinite(y[i]))):
                    # Poisoned member: freeze it as NUMERICAL so the
                    # rest of the lockstep batch keeps converging.
                    mem.stats.iterations = int(member_iterations[i])
                    results[i] = PDHGResult(
                        status=LPStatus.NUMERICAL, stats=mem.stats
                    )
                    active[i] = False
                    if guard_ctx is not None:
                        guard_ctx.note(
                            "watchdog",
                            engine="pdhg_batch",
                            signal="nonfinite",
                            member=int(i),
                        )
                    continue
                candidates = [(x[i], y[i])]
                if navg[i] > 1:
                    candidates.append((sum_x[i] / navg[i], sum_y[i] / navg[i]))
                best = None
                for xv, yv in candidates:
                    xo, yo = xv * d_col, yv * d_row
                    pr, dr, gp, p, d = _kkt(s, xo, yo)
                    mem.stats.kkt_checks += 1
                    sc = _score(pr, dr, gp)
                    if best is None or sc < best[0]:
                        best = (sc, xv, yv, pr, dr, gp, p, d)
                score, xv, yv, pr, dr, gp, p, d = best

                if pr <= eps and dr <= eps and gp <= eps:
                    x[i], y[i] = xv, yv
                    finish(i, LPStatus.OPTIMAL, pr, dr, gp, p, d)
                    continue

                if options.detect_rays:
                    dxo = (x[i] - x_anchor[i]) * d_col
                    dyo = (y[i] - y_anchor[i]) * d_row
                    if _check_dual_ray(s, dyo, options.ray_tolerance):
                        mem.ray_streak_infeasible += 1
                    else:
                        mem.ray_streak_infeasible = 0
                    if _check_primal_ray(s, dxo, options.ray_tolerance):
                        mem.ray_streak_unbounded += 1
                    else:
                        mem.ray_streak_unbounded = 0
                    if mem.ray_streak_infeasible >= 2:
                        members[i].stats.iterations = int(member_iterations[i])
                        results[i] = PDHGResult(
                            status=LPStatus.INFEASIBLE, stats=mem.stats
                        )
                        active[i] = False
                        continue
                    if mem.ray_streak_unbounded >= 2:
                        members[i].stats.iterations = int(member_iterations[i])
                        results[i] = PDHGResult(
                            status=LPStatus.UNBOUNDED, stats=mem.stats
                        )
                        active[i] = False
                        continue

                span_len = int(member_iterations[i]) - mem.span_start
                do_restart = (
                    score <= options.restart_sufficient * mem.score_at_restart
                    or (
                        score <= options.restart_necessary * mem.score_at_restart
                        and score > mem.last_candidate_score
                    )
                    or span_len
                    >= options.artificial_restart * max(int(member_iterations[i]), 1)
                )
                mem.last_candidate_score = score
                if do_restart:
                    mem.stats.restarts += 1
                    x[i], y[i] = xv.copy(), yv.copy()
                    dx_norm = np.linalg.norm(x[i] - x_prev_anchor[i])
                    dy_norm = np.linalg.norm(y[i] - y_prev_anchor[i])
                    if dx_norm > 1e-12 and dy_norm > 1e-12:
                        theta = options.primal_weight_smoothing
                        omega[i] = np.exp(
                            theta * np.log(dy_norm / dx_norm)
                            + (1.0 - theta) * np.log(omega[i])
                        )
                        tau[i] = eta[i] / omega[i]
                        sigma[i] = eta[i] * omega[i]
                    x_prev_anchor[i], y_prev_anchor[i] = x[i].copy(), y[i].copy()
                    x_anchor[i], y_anchor[i] = x[i].copy(), y[i].copy()
                    sum_x[i] = 0.0
                    sum_y[i] = 0.0
                    navg[i] = 0
                    mem.span_start = int(member_iterations[i])
                    mem.score_at_restart = score
                    mem.last_candidate_score = np.inf

        # Members that never terminated: report the iterate as-is.
        tail_status = LPStatus.TIME_LIMIT if timed_out else LPStatus.ITERATION_LIMIT
        for i in np.nonzero(active)[0]:
            xo, yo = unscale(i)
            pr, dr, gp, p, d = _kkt(saddles[i], xo, yo)
            members[i].stats.kkt_checks += 1
            finish(i, tail_status, pr, dr, gp, p, d)

        out = _collect(results, member_iterations, sweeps, n)
        sp.set(
            sweeps=sweeps,
            restarts=out.restarts,
            optimal=sum(s is LPStatus.OPTIMAL for s in out.statuses),
        )
        return out


def _collect(
    results: List[Optional[PDHGResult]],
    member_iterations: np.ndarray,
    sweeps: int,
    n: int,
) -> BatchPDHGResult:
    k = len(results)
    statuses = []
    objectives = np.full(k, np.nan)
    x = np.zeros((k, n))
    bounds = np.full(k, np.inf)
    restarts = 0
    for i, res in enumerate(results):
        assert res is not None
        statuses.append(res.status)
        restarts += res.stats.restarts
        if res.status is LPStatus.INFEASIBLE:
            bounds[i] = -np.inf
        elif res.x is not None:
            x[i] = res.x
            bounds[i] = res.upper_bound()
            if res.status is LPStatus.OPTIMAL:
                objectives[i] = res.objective
    return BatchPDHGResult(
        statuses=statuses,
        objectives=objectives,
        x=x,
        bounds=bounds,
        iterations=sweeps,
        member_iterations=member_iterations,
        restarts=restarts,
        results=[r for r in results if r is not None],
    )


def solve_lp_pdhg_batch_on_device(
    lps: List[LinearProgram],
    device,
    stream=None,
    options: Optional[PDHGOptions] = None,
) -> BatchPDHGResult:
    """Solve a PDHG batch charging the fused kernel stream to ``device``.

    Per sweep the shared-K path launches two plain GEMMs (the whole
    frontier's matvecs fused, ``(k×m)·(m×n)`` and back) plus the
    elementwise update kernels; a heterogeneous batch launches batched
    GEMVs instead.  KKT checks price a matvec pair plus reductions.
    Compare :func:`repro.lp.batch_simplex.solve_lp_batch_on_device`,
    which pays ``serial_depth=m`` triangular solves per pivot — the sync
    cost PDHG exists to avoid.
    """
    from repro.device import kernels as K

    shared = bool(lps) and all(
        lp.num_eq_rows == lps[0].num_eq_rows
        and np.array_equal(
            lp.a_ub if lp.a_ub is not None else np.zeros(0),
            lps[0].a_ub if lps[0].a_ub is not None else np.zeros(0),
        )
        and np.array_equal(
            lp.a_eq if lp.a_eq is not None else np.zeros(0),
            lps[0].a_eq if lps[0].a_eq is not None else np.zeros(0),
        )
        for lp in lps[1:]
    )

    class _DeviceHook(PDHGCostHook):
        def _matvec_pair(self, k: int, m: int, n: int) -> None:
            if shared:
                device._charge(K.gemm_kernel(k, n, m), stream)
                device._charge(K.gemm_kernel(k, m, n), stream)
            else:
                device._charge(K.batched_gemm_kernel(k, 1, n, m), stream)
                device._charge(K.batched_gemm_kernel(k, 1, m, n), stream)

        def on_setup(self, k: int, m: int, n: int) -> None:
            self._matvec_pair(k, m, n)

        def on_iteration(self, k: int, m: int, n: int) -> None:
            self._matvec_pair(k, m, n)
            device._charge(K.axpy_kernel(k * n), stream)
            device._charge(K.axpy_kernel(k * m), stream)

        def on_check(self, k: int, m: int, n: int) -> None:
            self._matvec_pair(k, m, n)
            device._charge(K.dot_kernel(k * max(m, n)), stream)

    return solve_lp_pdhg_batch(lps, options=options, hook=_DeviceHook())
