"""LP solver result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np


class LPStatus(enum.Enum):
    """Terminal status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    #: Cooperative deadline budget (:mod:`repro.guard`) expired mid-solve.
    TIME_LIMIT = "time_limit"
    #: A watchdog tripped (NaN/Inf iterates, divergence) and the engine
    #: surrendered the instance instead of iterating on garbage.
    NUMERICAL = "numerical"

    @property
    def ok(self) -> bool:
        """True when an optimal solution was proven."""
        return self is LPStatus.OPTIMAL


@dataclass
class LPResult:
    """Outcome of an LP solve in the *original* variable space."""

    status: LPStatus
    #: Objective value (maximization); meaningful only when optimal.
    objective: float = np.nan
    #: Primal solution in original variables; None unless optimal.
    x: Optional[np.ndarray] = None
    #: Dual values for the rows of the standard form (None if unavailable).
    duals: Optional[np.ndarray] = None
    #: Simplex iterations (or IPM iterations) used.
    iterations: int = 0
    #: Basic-variable indices in standard form (for warm starts).
    basis: Optional[np.ndarray] = None
    #: Standard-form primal solution (for cut generation / warm starts).
    x_standard: Optional[np.ndarray] = None
    #: Rich first-order detail (:class:`repro.lp.pdhg.PDHGResult`) when
    #: the solve came from an inexact first-order engine; None for the
    #: Fraction-exact vertex solvers.
    first_order: Optional[object] = None

    @property
    def ok(self) -> bool:
        """True when an optimal solution was proven."""
        return self.status.ok
