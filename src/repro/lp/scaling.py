"""Geometric-mean equilibration scaling.

Poorly scaled MIP matrices wreck both simplex pivots and IPM normal
equations; solvers scale rows/columns so entry magnitudes cluster near 1.
Classic iterative geometric-mean scheme (Curtis & Reid flavour): repeat
row and column passes until the spread stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ScalingResult:
    """Row/column scale vectors with the scaled matrix.

    ``scaled = diag(row_scale) @ a @ diag(col_scale)``.  To solve the
    original system: scale b by ``row_scale``, unscale x by
    ``col_scale``.
    """

    row_scale: np.ndarray
    col_scale: np.ndarray
    scaled: np.ndarray

    def apply_rhs(self, b: np.ndarray) -> np.ndarray:
        """Rhs of the scaled system."""
        return b * self.row_scale

    def recover_x(self, x_scaled: np.ndarray) -> np.ndarray:
        """Solution of the original system from the scaled one."""
        return x_scaled * self.col_scale


def equilibrate(a: np.ndarray, max_passes: int = 10, tol: float = 1e-2) -> ScalingResult:
    """Geometric-mean scale ``a`` until the entry spread stabilizes."""
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    row_scale = np.ones(m)
    col_scale = np.ones(n)
    scaled = a.copy()

    def spread(mat: np.ndarray) -> float:
        nz = np.abs(mat[mat != 0])
        if nz.size == 0:
            return 1.0
        return float(nz.max() / nz.min())

    last = spread(scaled)
    for _ in range(max_passes):
        # Row pass: divide by sqrt(min*max) of each row's magnitudes.
        with np.errstate(divide="ignore"):
            for i in range(m):
                nz = np.abs(scaled[i][scaled[i] != 0])
                if nz.size:
                    factor = 1.0 / np.sqrt(nz.min() * nz.max())
                    scaled[i] *= factor
                    row_scale[i] *= factor
            for j in range(n):
                nz = np.abs(scaled[:, j][scaled[:, j] != 0])
                if nz.size:
                    factor = 1.0 / np.sqrt(nz.min() * nz.max())
                    scaled[:, j] *= factor
                    col_scale[j] *= factor
        current = spread(scaled)
        if current >= last * (1.0 - tol):
            break
        last = current
    return ScalingResult(row_scale=row_scale, col_scale=col_scale, scaled=scaled)
