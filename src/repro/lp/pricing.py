"""Pricing (entering-variable selection) rules for the revised simplex.

The pricing rule determines how many iterations the simplex needs and
how much linear algebra each iteration costs — one of the DESIGN.md
ablations.  Three rules are provided:

- ``dantzig`` — most-positive reduced cost; cheapest per iteration.
- ``devex`` — Devex reference-framework weights (Harris 1973), a
  practical approximation of steepest edge that needs only the pivot
  column; usually far fewer iterations on hard bases.
- ``bland`` — smallest eligible index; slowest but provably anti-cycling
  (used automatically as a fallback under degeneracy).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PricingRule:
    """Interface: pick the entering column from reduced costs."""

    name = "base"

    def reset(self, n: int) -> None:
        """Prepare for a fresh basis (n = total columns)."""

    def select(self, reduced: np.ndarray, eligible: np.ndarray) -> Optional[int]:
        """Entering column index, or None when no eligible candidate.

        ``reduced`` are the reduced costs d (maximization: want d > 0);
        ``eligible`` is a boolean mask of candidate columns.
        """
        raise NotImplementedError

    def update(self, entering: int, leaving: int, w: np.ndarray, pivot_row_coeffs: np.ndarray) -> None:
        """Post-pivot bookkeeping (only Devex needs it)."""


class DantzigPricing(PricingRule):
    """Most-positive reduced cost."""

    name = "dantzig"

    def select(self, reduced: np.ndarray, eligible: np.ndarray) -> Optional[int]:
        masked = np.where(eligible, reduced, -np.inf)
        best = int(np.argmax(masked))
        if masked[best] == -np.inf:
            return None
        return best


class BlandPricing(PricingRule):
    """Smallest eligible index (anti-cycling)."""

    name = "bland"

    def select(self, reduced: np.ndarray, eligible: np.ndarray) -> Optional[int]:
        idx = np.nonzero(eligible)[0]
        return int(idx[0]) if idx.size else None


class DevexPricing(PricingRule):
    """Devex: reduced cost scaled by an evolving reference weight.

    Weights start at 1; after a pivot on (entering q, leaving row r)
    with pivot column ``w`` and pivot row ``alpha`` (row r of B⁻¹N), a
    column j's weight becomes
    ``max(w_j_old, (alpha_j / alpha_q)² · w_q_old)`` — the standard
    Devex recurrence.
    """

    name = "devex"

    def __init__(self):
        self._weights: Optional[np.ndarray] = None

    def reset(self, n: int) -> None:
        self._weights = np.ones(n)

    def select(self, reduced: np.ndarray, eligible: np.ndarray) -> Optional[int]:
        if self._weights is None or self._weights.shape != reduced.shape:
            self.reset(reduced.shape[0])
        score = np.where(eligible, reduced * reduced / self._weights, -np.inf)
        best = int(np.argmax(score))
        if score[best] == -np.inf:
            return None
        return best

    def update(self, entering: int, leaving: int, w: np.ndarray, pivot_row_coeffs: np.ndarray) -> None:
        if self._weights is None:
            return
        alpha_q = pivot_row_coeffs[entering]
        if alpha_q == 0.0:
            return
        ratio = pivot_row_coeffs / alpha_q
        candidate = ratio * ratio * self._weights[entering]
        self._weights = np.maximum(self._weights, candidate)
        # The leaving variable re-enters the nonbasic set with weight
        # derived from the entering column's weight.
        self._weights[entering] = max(
            1.0, self._weights[entering] / (alpha_q * alpha_q)
        )


def make_pricing(name: str) -> PricingRule:
    """Factory for pricing rules by name."""
    rules = {
        "dantzig": DantzigPricing,
        "devex": DevexPricing,
        "bland": BlandPricing,
    }
    try:
        return rules[name]()
    except KeyError:
        raise ValueError(
            f"unknown pricing rule {name!r}; choose from {sorted(rules)}"
        ) from None
