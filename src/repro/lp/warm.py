"""Warm-start state management for dual-simplex re-solves.

The §5.3 reuse pattern: a branch-and-bound child differs from its parent
by one tightened variable bound, so the parent's optimal basis is dual
feasible for the child and the parent's *factorization* of that basis is
still exact whenever the standard-form matrix is unchanged (a bound
change only moves ``b``/``c``/``offset`` unless it flips a bound between
finite and infinite, which changes the column layout).  This module
packages that reuse so every driver — serial B&B, the batched node
solver, the metered strategy engines, and serve's parametric path — goes
through one audited entry point:

- :class:`WarmStartState` — a basis plus (when shapes still match) the
  live :class:`~repro.la.updates.ProductFormInverse` it was optimal
  under.
- :func:`warm_resolve` — attempt a warm dual-simplex re-solve, returning
  ``None`` whenever the state is unusable so the caller cold-solves.
  Optimal answers are KKT-audited *from scratch* against the actual
  problem, which is what makes factorization reuse safe: a stale or
  corrupted factorization can only produce an answer that fails the
  audit, never a silently wrong bound.
- :class:`WarmStateCache` — a bounded LRU of per-node states so deep
  trees cannot hoard factorizations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.errors import LPError
from repro.la.updates import ProductFormInverse
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import NULL_HOOK, CostHook, SimplexOptions


@dataclass
class WarmStartState:
    """A re-solve starting point captured from an optimal basic solution.

    ``shape`` records the standard form the state was captured on;
    ``pfi`` is only reused when the target problem has the same shape
    (same matrix layout), otherwise the basis alone seeds the re-solve.
    """

    basis: np.ndarray
    shape: Tuple[int, int]
    pfi: Optional[ProductFormInverse] = None

    def factors_usable_for(self, sf: StandardFormLP) -> bool:
        """True when the resident factorization can seed ``sf``."""
        return self.pfi is not None and self.shape == (sf.m, sf.n)


@dataclass
class WarmSolveOutcome:
    """What a warm attempt produced, and the state it leaves behind."""

    result: LPResult
    reused_factors: bool = False
    audit_failed: bool = False
    state: Optional[WarmStartState] = None


def state_from_result(sf: StandardFormLP, result: LPResult) -> Optional[WarmStartState]:
    """Capture a warm state from a cold solve's basic optimal solution.

    No factorization is built here — the cold engine's internal factors
    are not exposed — so the state seeds the next solve with the basis
    only; the first warm re-solve then leaves a live PFI behind.
    """
    if result.status is not LPStatus.OPTIMAL or result.basis is None:
        return None
    return WarmStartState(
        basis=np.asarray(result.basis, dtype=np.int64).copy(),
        shape=(sf.m, sf.n),
        pfi=None,
    )


def audit_warm_lp(
    sf: StandardFormLP,
    result: LPResult,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> bool:
    """From-scratch KKT check of a warm-started optimal answer.

    Recomputes primal feasibility, dual feasibility, and strong duality
    directly from ``sf`` — deliberately *not* via the factorization that
    produced the answer, so a stale PFI cannot vouch for itself.
    """
    if result.status is not LPStatus.OPTIMAL:
        return False
    x = result.x_standard
    y = result.duals
    if x is None or y is None:
        return False
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        return False
    scale_b = 1.0 + float(np.max(np.abs(sf.b))) if sf.b.size else 1.0
    if np.any(x < -tol.feasibility * scale_b):
        return False
    residual = sf.a @ x - sf.b
    if residual.size and float(np.max(np.abs(residual))) > tol.feasibility * scale_b:
        return False
    # Dual feasibility for max cᵀx, Ax=b, x≥0: Aᵀy ≥ c.
    reduced = sf.c - sf.a.T @ y
    scale_c = 1.0 + float(np.max(np.abs(sf.c))) if sf.c.size else 1.0
    if reduced.size and float(np.max(reduced)) > tol.optimality * scale_c:
        return False
    # Strong duality (complementary slackness summed): cᵀx = bᵀy.
    primal = float(sf.c @ x)
    dual = float(sf.b @ y)
    gap_scale = 1.0 + max(abs(primal), abs(dual))
    if abs(primal - dual) > tol.optimality * gap_scale * 10.0:
        return False
    return True


def warm_resolve(
    sf: StandardFormLP,
    warm: Optional[WarmStartState],
    options: Optional[SimplexOptions] = None,
    hook: CostHook = NULL_HOOK,
    audit: bool = True,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> Optional[WarmSolveOutcome]:
    """Attempt a warm dual-simplex re-solve of ``sf`` from ``warm``.

    Returns ``None`` when the state cannot seed this problem (missing,
    wrong basis size, singular, or not dual feasible) — the caller must
    cold-solve.  Otherwise returns the outcome; ``audit_failed=True``
    marks an OPTIMAL answer that failed the from-scratch KKT audit and
    must be discarded in favor of a cold solve.  Non-OPTIMAL statuses
    (TIME_LIMIT, ITERATION_LIMIT, NUMERICAL, INFEASIBLE) pass through
    for the caller's usual handling — a deadline hit mid-re-solve is
    still an anytime stop, not an error.
    """
    if warm is None or warm.basis is None:
        return None
    basis = np.asarray(warm.basis, dtype=np.int64)
    if basis.ndim != 1 or basis.shape[0] != sf.m:
        return None
    pfi = warm.pfi if warm.factors_usable_for(sf) else None
    state_out: dict = {}
    try:
        result = dual_simplex_resolve(
            sf, basis, options, hook, pfi=pfi, state_out=state_out
        )
    except LPError:
        return None
    outcome = WarmSolveOutcome(result=result)
    if state_out:
        outcome.reused_factors = bool(state_out.get("reused_factors", False))
        outcome.state = WarmStartState(
            basis=state_out["basis"],
            shape=(sf.m, sf.n),
            pfi=state_out.get("pfi"),
        )
    if result.status is LPStatus.OPTIMAL and audit:
        if not audit_warm_lp(sf, result, tol):
            outcome.audit_failed = True
            outcome.state = None
    return outcome


class WarmStateCache:
    """Bounded LRU of :class:`WarmStartState` keyed by node id.

    Deep trees produce one state per open node; factorizations are a
    dense (m×m) LU each, so the cache holds at most ``capacity`` of them
    and silently drops the least recently used — a miss just means that
    node's children cold-start, never an error.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, WarmStartState]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[WarmStartState]:
        state = self._entries.get(key)
        if state is not None:
            self._entries.move_to_end(key)
        return state

    def put(self, key: Hashable, state: WarmStartState) -> None:
        self._entries[key] = state
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def pop(self, key: Hashable) -> Optional[WarmStartState]:
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
