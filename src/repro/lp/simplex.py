"""Two-phase revised primal simplex with product-form basis management.

This is the exterior-point workhorse the paper's §5.1 describes: a
resident basis inverse maintained by rank-1 eta updates
(:class:`repro.la.updates.ProductFormInverse`), refactorized on a cadence,
with pricing via ``btran`` and the ratio test via ``ftran``.  An optional
*cost hook* receives one callback per linear-algebra operation so a
simulated device can charge the exact kernel stream a GPU implementation
would launch (how strategies in :mod:`repro.strategies` meter their GPUs).

Algorithm notes:

- Standard form ``max cᵀx, Ax = b, x ≥ 0``; rows are pre-negated so
  ``b ≥ 0`` and phase 1 starts from an all-artificial identity basis.
- Phase 1 maximizes −Σ artificials; a positive infeasibility at its
  optimum proves infeasibility; lingering zero-valued artificial basics
  are pivoted out or their rows marked redundant.
- Degeneracy: after 40 consecutive degenerate pivots the pricing rule
  falls back to Bland's (provably cycle-free) until progress resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, Config
from repro.errors import ReproError, SingularMatrixError
from repro.guard import budget as guard_budget
from repro.guard.watchdog import IterationWatchdog, WatchdogSignal
from repro.la.updates import ProductFormInverse
from repro import obs
from repro.lp.pricing import BlandPricing, PricingRule, make_pricing
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus

#: Poll the guard context every this-many pivots (cheap, off the hot path).
GUARD_EVERY = 32


class CostHook:
    """Receives one call per linear-algebra operation of the simplex.

    The default implementation is a no-op; the device-backed hook in
    :mod:`repro.strategies.engine` charges the corresponding kernels.
    """

    def on_factorize(self, m: int) -> None:
        """Basis (re)factorization of an m×m matrix."""

    def on_ftran(self, m: int, num_etas: int) -> None:
        """Forward solve B x = b through the eta chain."""

    def on_btran(self, m: int, num_etas: int) -> None:
        """Backward solve Bᵀ y = c through the eta chain."""

    def on_pricing(self, m: int, n: int) -> None:
        """Full reduced-cost computation (Aᵀy gemv)."""

    def on_update(self, m: int) -> None:
        """One eta append (rank-1 basis change)."""

    def on_ratio_test(self, m: int) -> None:
        """Elementwise ratio test over the basic solution."""


NULL_HOOK = CostHook()


@dataclass
class SimplexOptions:
    """Tuning knobs for the revised simplex."""

    pricing: str = "dantzig"
    refactor_interval: int = 64
    max_iterations: Optional[int] = None
    config: Config = field(default_factory=lambda: DEFAULT_CONFIG)
    #: Consecutive degenerate pivots before switching to Bland's rule.
    degenerate_switch: int = 40

    def __post_init__(self):
        if self.refactor_interval <= 0:
            raise ReproError(
                f"refactor_interval must be positive, got {self.refactor_interval!r}"
            )
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ReproError(
                f"max_iterations must be positive, got {self.max_iterations!r}"
            )
        if self.degenerate_switch <= 0:
            raise ReproError(
                f"degenerate_switch must be positive, got {self.degenerate_switch!r}"
            )


@dataclass
class _Workspace:
    """Mutable state of one simplex run over standard form data."""

    a: np.ndarray  # (m, n) with b >= 0 after row negation
    b: np.ndarray
    basis: np.ndarray  # (m,) basic column per row
    pfi: ProductFormInverse
    x_basic: np.ndarray
    hook: CostHook
    options: SimplexOptions
    updates_since_refactor: int = 0
    iterations: int = 0

    def refactorize(self) -> None:
        basis_matrix = self.a[:, self.basis]
        self.pfi.refactorize(basis_matrix)
        self.hook.on_factorize(self.a.shape[0])
        obs.event(
            "lp.refactorize", category="lp",
            m=self.a.shape[0], iteration=self.iterations,
        )
        self.x_basic = self.ftran(self.b)
        self.updates_since_refactor = 0

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        self.hook.on_ftran(self.a.shape[0], self.pfi.num_etas)
        return self.pfi.ftran(rhs)

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        self.hook.on_btran(self.a.shape[0], self.pfi.num_etas)
        return self.pfi.btran(rhs)


def solve_lp(
    lp: LinearProgram, options: Optional[SimplexOptions] = None, hook: CostHook = NULL_HOOK
) -> LPResult:
    """Solve a :class:`LinearProgram` by two-phase revised simplex."""
    sf = lp.to_standard_form()
    result = solve_standard_form(sf, options=options, hook=hook)
    if result.ok and result.x_standard is not None:
        result.x = sf.recover_x(result.x_standard)
    return result


def solve_standard_form(
    sf: StandardFormLP,
    options: Optional[SimplexOptions] = None,
    hook: CostHook = NULL_HOOK,
) -> LPResult:
    """Solve ``max cᵀx + offset, Ax = b, x ≥ 0`` from scratch (two-phase)."""
    with obs.span("lp.solve", category="lp", m=sf.a.shape[0], n=sf.a.shape[1]) as sp:
        result = _solve_standard_form(sf, options, hook)
        sp.set(status=result.status.value, iterations=result.iterations)
        return result


def _solve_standard_form(
    sf: StandardFormLP,
    options: Optional[SimplexOptions],
    hook: CostHook,
) -> LPResult:
    options = options or SimplexOptions()
    tol = options.config.tolerances
    m, n = sf.a.shape

    if m == 0:
        # No constraints: optimum is 0 unless a positive cost is unbounded.
        if np.any(sf.c > tol.optimality):
            return LPResult(status=LPStatus.UNBOUNDED)
        return LPResult(
            status=LPStatus.OPTIMAL,
            objective=sf.offset,
            x_standard=np.zeros(n),
            duals=np.zeros(0),
            basis=np.zeros(0, dtype=np.int64),
        )

    # Normalize rows so b >= 0, then append artificial columns.
    a = sf.a.copy()
    b = sf.b.copy()
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    a_ext = np.hstack([a, np.eye(m)])
    basis = np.arange(n, n + m, dtype=np.int64)

    pfi = ProductFormInverse(np.eye(m))
    hook.on_factorize(m)
    ws = _Workspace(
        a=a_ext,
        b=b,
        basis=basis,
        pfi=pfi,
        x_basic=b.copy(),
        hook=hook,
        options=options,
    )

    max_iter = options.max_iterations
    if max_iter is None:
        max_iter = options.config.solver.simplex_iter_limit(m, n)

    # ---- Phase 1: drive artificial infeasibility to zero -------------------
    c_phase1 = np.zeros(n + m)
    c_phase1[n:] = -1.0
    allowed_phase1 = np.ones(n + m, dtype=bool)
    status = _iterate(ws, c_phase1, allowed_phase1, max_iter, tol)
    if status in (
        LPStatus.ITERATION_LIMIT,
        LPStatus.TIME_LIMIT,
        LPStatus.NUMERICAL,
    ):
        return LPResult(status=status, iterations=ws.iterations)
    infeasibility = float(np.sum(ws.x_basic[np.asarray(ws.basis) >= n]))
    if infeasibility > 1e-6:
        return LPResult(status=LPStatus.INFEASIBLE, iterations=ws.iterations)

    _expel_artificials(ws, n, tol)

    # ---- Phase 2: optimize the true objective ------------------------------
    c_phase2 = np.concatenate([sf.c, np.zeros(m)])
    allowed_phase2 = np.ones(n + m, dtype=bool)
    allowed_phase2[n:] = False  # artificials may never re-enter
    status = _iterate(ws, c_phase2, allowed_phase2, max_iter, tol)

    x_std = np.zeros(n)
    structural = ws.basis < n
    x_std[ws.basis[structural]] = ws.x_basic[structural]
    x_std = np.maximum(x_std, 0.0)

    if status != LPStatus.OPTIMAL:
        return LPResult(status=status, iterations=ws.iterations)

    y = ws.btran(c_phase2[ws.basis])
    # Undo the row negations in the reported duals.
    y_orig = y.copy()
    y_orig[neg] *= -1.0
    return LPResult(
        status=LPStatus.OPTIMAL,
        objective=float(sf.c @ x_std) + sf.offset,
        x_standard=x_std,
        duals=y_orig,
        iterations=ws.iterations,
        basis=ws.basis.copy(),
    )


def _iterate(
    ws: _Workspace,
    c: np.ndarray,
    allowed: np.ndarray,
    max_iter: int,
    tol,
) -> LPStatus:
    """Primal simplex iterations until optimal/unbounded/limit."""
    options = ws.options
    pricing: PricingRule = make_pricing(options.pricing)
    pricing.reset(c.shape[0])
    bland = BlandPricing()
    degenerate_streak = 0
    m = ws.a.shape[0]
    guard_ctx = guard_budget.active()
    watchdog = (
        IterationWatchdog(
            "simplex", options=guard_ctx.watchdog_options, sense="max"
        )
        if guard_ctx is not None
        else None
    )

    while ws.iterations < max_iter:
        if guard_ctx is not None and ws.iterations % GUARD_EVERY == 0:
            if guard_ctx.deadline_hit():
                return LPStatus.TIME_LIMIT
            if watchdog is not None:
                signal = watchdog.observe(
                    ws.iterations,
                    merit=float(c[ws.basis] @ ws.x_basic),
                    vector=ws.x_basic,
                )
                # STALL/CYCLING are handled locally by the Bland switch
                # below; only iterate corruption aborts the run.
                if signal in (WatchdogSignal.NONFINITE, WatchdogSignal.DIVERGED):
                    return LPStatus.NUMERICAL
        y = ws.btran(c[ws.basis])
        ws.hook.on_pricing(m, ws.a.shape[1])
        reduced = c - ws.a.T @ y
        eligible = allowed & (reduced > tol.optimality)
        eligible[ws.basis] = False
        rule = bland if degenerate_streak >= options.degenerate_switch else pricing
        entering = rule.select(reduced, eligible)
        if entering is None:
            return LPStatus.OPTIMAL

        w = ws.ftran(ws.a[:, entering])
        ws.hook.on_ratio_test(m)
        positive = w > tol.pivot
        if not positive.any():
            return LPStatus.UNBOUNDED
        ratios = np.where(positive, ws.x_basic / np.where(positive, w, 1.0), np.inf)
        theta = ratios.min()
        # Tie-break leaving row by largest pivot magnitude for stability.
        tied = np.nonzero(np.abs(ratios - theta) <= 1e-12 + 1e-9 * abs(theta))[0]
        leave_pos = int(tied[np.argmax(np.abs(w[tied]))])

        if theta <= tol.pivot:
            degenerate_streak += 1
        else:
            degenerate_streak = 0

        # Devex needs the pivot row of B⁻¹N before the basis changes.
        if rule is pricing and pricing.name == "devex":
            e_r = np.zeros(m)
            e_r[leave_pos] = 1.0
            rho = ws.btran(e_r)
            ws.hook.on_pricing(m, ws.a.shape[1])
            pivot_row = ws.a.T @ rho
            pricing.update(entering, int(ws.basis[leave_pos]), w, pivot_row)

        ws.x_basic = ws.x_basic - theta * w
        ws.x_basic[leave_pos] = theta
        ws.x_basic = np.maximum(ws.x_basic, 0.0)
        ws.basis[leave_pos] = entering
        try:
            ws.pfi.update(w, leave_pos)
            ws.hook.on_update(m)
        except SingularMatrixError:
            ws.refactorize()
        ws.updates_since_refactor += 1
        ws.iterations += 1

        if ws.updates_since_refactor >= options.refactor_interval:
            ws.refactorize()

    return LPStatus.ITERATION_LIMIT


def _expel_artificials(ws: _Workspace, n: int, tol) -> None:
    """Pivot zero-valued artificial variables out of the phase-1 basis.

    Rows whose artificial cannot be replaced are redundant; their
    artificial stays basic at zero and phase 2 forbids re-entry, which
    keeps it harmless.
    """
    m = ws.a.shape[0]
    for pos in range(m):
        if ws.basis[pos] < n:
            continue
        e_r = np.zeros(m)
        e_r[pos] = 1.0
        rho = ws.btran(e_r)
        row = ws.a[:, :n].T @ rho
        candidates = np.nonzero(np.abs(row) > 1e-8)[0]
        candidates = [j for j in candidates if j not in set(ws.basis.tolist())]
        if not candidates:
            continue  # redundant row
        entering = int(candidates[0])
        w = ws.ftran(ws.a[:, entering])
        if abs(w[pos]) <= tol.pivot:
            continue
        ws.basis[pos] = entering
        try:
            ws.pfi.update(w, pos)
            ws.hook.on_update(m)
        except SingularMatrixError:
            ws.refactorize()
        ws.x_basic = ws.ftran(ws.b)
        ws.x_basic = np.maximum(ws.x_basic, 0.0)
