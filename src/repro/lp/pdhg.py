"""Restarted primal-dual hybrid gradient (PDHG) for LP — the PDLP recipe.

The related work is unambiguous about which LP algorithm actually scales
on massively parallel hardware: not the simplex method with its serial
pivot chain, but restarted PDHG, whose every iteration is two
matrix-vector products plus elementwise work ("An Overview of GPU-based
First-Order Methods for Linear Programming and Extensions"; "Batched
First-Order Methods for Parallel LP Solving in MIP").  This module is
that engine, built from scratch over the repo's dense data model:

- the LP is posed as the saddle point  min_x max_y  ĉᵀx + yᵀ(q − Kx)
  over the bound box and the dual cone (equality duals free, inequality
  duals ≥ 0), where ĉ = −c converts the repo's maximization form;
- Ruiz equilibration conditions K; the step size comes from a power
  iteration on ‖K‖₂; τ = η/ω and σ = ηω split it by the primal weight ω;
- the iterate *and its running average* are scored by relative KKT
  residuals every ``check_every`` iterations; adaptive restarts reset
  to the better candidate (sufficient decay 0.2 / necessary decay 0.8 /
  artificial restart at 36% of total work — the PDLP schedule) and
  rebalance ω from the primal/dual movement since the last restart;
- termination is a *relative KKT certificate*: primal residual, dual
  residual, and duality gap each below ``tolerance`` at their natural
  scales — exactly the contract :func:`repro.check.certify_first_order_lp`
  re-audits in exact rational arithmetic;
- infeasibility/unboundedness are detected from the normalized iterate
  displacement, which for diverging PDHG approximates a Farkas ray
  (dual ray ⇒ primal infeasible, primal ray ⇒ unbounded); a ray must
  validate on two consecutive checks before a status is declared.

The optional :class:`PDHGCostHook` receives one callback per matvec
sweep so a simulated device can charge the exact kernel stream a GPU
implementation would launch (mirroring :class:`repro.lp.simplex.CostHook`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.guard import budget as guard_budget
from repro.guard.watchdog import IterationWatchdog, WatchdogSignal
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus


class PDHGCostHook:
    """Receives one call per linear-algebra sweep of the PDHG loop.

    The default implementation is a no-op; device-backed hooks (see
    :class:`repro.strategies.pdhg_engine.PdhgDeviceHook`) charge the
    corresponding kernels.  ``k`` is the number of LPs advancing in the
    sweep (1 for the single-LP solver, the active batch size for
    :mod:`repro.lp.pdhg_batch`).
    """

    def on_setup(self, k: int, m: int, n: int) -> None:
        """One power-iteration step (a Kᵀ(K v) matvec pair)."""

    def on_iteration(self, k: int, m: int, n: int) -> None:
        """One PDHG iteration: Kᵀy, K x̄, and the elementwise updates."""

    def on_check(self, k: int, m: int, n: int) -> None:
        """One KKT evaluation: K x, Kᵀy, and the reductions."""


NULL_PDHG_HOOK = PDHGCostHook()


@dataclass
class PDHGOptions:
    """Tuning knobs for the restarted PDHG solver."""

    #: Relative KKT tolerance (primal residual, dual residual, gap).
    tolerance: float = 1e-8
    #: Iteration cap; None derives ``4000 + 200·(m+n)`` from the shape.
    max_iterations: Optional[int] = None
    #: Iterations between KKT evaluations / restart decisions.
    check_every: int = 40
    #: Step size as a fraction of the stability bound 1/‖K‖₂.
    step_size_scale: float = 0.9
    #: Restart when the candidate KKT score decays below this factor.
    restart_sufficient: float = 0.2
    #: ... or below this factor once progress has stalled.
    restart_necessary: float = 0.8
    #: Artificial restart once the current span exceeds this fraction
    #: of all iterations so far (keeps averages from going stale).
    artificial_restart: float = 0.36
    #: Log-space smoothing of the primal-weight update (PDLP's θ).
    primal_weight_smoothing: float = 0.5
    #: Ruiz equilibration sweeps applied to K before solving.
    scaling_iterations: int = 10
    #: Power-iteration steps for the ‖K‖₂ estimate.
    power_iterations: int = 30
    #: Attempt Farkas-ray infeasibility/unboundedness detection.
    detect_rays: bool = True
    #: Relative tolerance for validating a candidate ray.
    ray_tolerance: float = 1e-6

    def __post_init__(self):
        from repro.errors import ReproError

        if not self.tolerance > 0:
            raise ReproError(
                f"tolerance must be positive, got {self.tolerance!r}"
            )
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ReproError(
                f"max_iterations must be positive, got {self.max_iterations!r}"
            )
        if self.check_every <= 0:
            raise ReproError(
                f"check_every must be positive, got {self.check_every!r}"
            )
        if not 0 < self.step_size_scale <= 1:
            raise ReproError(
                "step_size_scale must lie in (0, 1], "
                f"got {self.step_size_scale!r}"
            )
        if self.power_iterations <= 0:
            raise ReproError(
                f"power_iterations must be positive, got {self.power_iterations!r}"
            )


@dataclass
class PDHGStats:
    """Work counters of one PDHG solve."""

    iterations: int = 0
    restarts: int = 0
    kkt_checks: int = 0
    power_iterations: int = 0


@dataclass
class PDHGResult:
    """Outcome of a PDHG solve, in the *original* LP's variable space.

    Dual quantities use the **minimization saddle form** the solver works
    in: rows ordered ``[a_eq; −a_ub]`` with equality duals free and
    inequality duals ≥ 0, and reduced costs ``r = −c − Kᵀy``.  The
    certificate auditor (:func:`repro.check.certify_first_order_lp`)
    consumes exactly this convention.
    """

    status: LPStatus
    #: Objective of the original (maximization) LP.
    objective: float = np.nan
    x: Optional[np.ndarray] = None
    #: Saddle-form duals, rows ``[eq; ineq]`` (ineq duals ≥ 0).
    y: Optional[np.ndarray] = None
    #: Saddle-form reduced costs ĉ − Kᵀy.
    reduced_costs: Optional[np.ndarray] = None
    #: Relative KKT residuals at the returned point.
    primal_residual: float = np.inf
    dual_residual: float = np.inf
    gap: float = np.inf
    #: Saddle-form (minimization) primal and dual objective values.
    primal_objective_min: float = np.nan
    dual_objective_min: float = np.nan
    stats: PDHGStats = field(default_factory=PDHGStats)

    @property
    def ok(self) -> bool:
        """True when an eps-KKT point was reached."""
        return self.status is LPStatus.OPTIMAL

    @property
    def iterations(self) -> int:
        return self.stats.iterations

    def upper_bound(self, pad_factor: float = 10.0) -> float:
        """Tolerance-padded upper bound on the original LP's optimum.

        ``max(primal, dual)`` objective (maximization form) plus a
        ``pad_factor`` multiple of the residual scale — the bound the
        branch-and-bound drivers prune with, so an eps-low PDHG value
        can never cut off the true optimum within the declared gap.
        """
        p = self.objective
        d = -self.dual_objective_min
        scale = 1.0 + abs(p) + abs(d)
        slack = pad_factor * max(self.gap, self.dual_residual, 0.0) * scale
        return max(p, d) + slack


@dataclass
class _Saddle:
    """The minimization saddle form PDHG iterates on."""

    c_hat: np.ndarray  # (n,) minimize ĉᵀx
    k: np.ndarray      # (m, n) rows [eq; ineq], ineq written as Gx ≥ h
    q: np.ndarray      # (m,)
    num_eq: int
    lb: np.ndarray
    ub: np.ndarray

    @property
    def m(self) -> int:
        return self.k.shape[0]

    @property
    def n(self) -> int:
        return self.k.shape[1]


def saddle_from_lp(lp: LinearProgram) -> _Saddle:
    """Pose a (maximization) :class:`LinearProgram` as the saddle form."""
    blocks = []
    rhs = []
    num_eq = lp.num_eq_rows
    if lp.a_eq is not None:
        blocks.append(lp.a_eq)
        rhs.append(lp.b_eq)
    if lp.a_ub is not None:
        # A_ub x ≤ b_ub  ⇔  (−A_ub) x ≥ (−b_ub): inequality duals ≥ 0.
        blocks.append(-lp.a_ub)
        rhs.append(-lp.b_ub)
    n = lp.n
    if blocks:
        k = np.vstack(blocks)
        q = np.concatenate(rhs)
    else:
        k = np.zeros((0, n))
        q = np.zeros(0)
    return _Saddle(
        c_hat=-lp.c.astype(np.float64),
        k=np.asarray(k, dtype=np.float64),
        q=np.asarray(q, dtype=np.float64),
        num_eq=num_eq,
        lb=lp.lb.copy(),
        ub=lp.ub.copy(),
    )


def ruiz_equilibrate(
    k: np.ndarray, iterations: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Ruiz scaling: returns (d_row, d_col) with K̃ = D_r K D_c balanced."""
    m, n = k.shape
    d_row = np.ones(m)
    d_col = np.ones(n)
    if k.size == 0 or iterations <= 0:
        return d_row, d_col
    work = k.copy()
    for _ in range(iterations):
        row_max = np.max(np.abs(work), axis=1)
        col_max = np.max(np.abs(work), axis=0)
        row_scale = 1.0 / np.sqrt(np.where(row_max > 0, row_max, 1.0))
        col_scale = 1.0 / np.sqrt(np.where(col_max > 0, col_max, 1.0))
        work *= row_scale[:, None]
        work *= col_scale[None, :]
        d_row *= row_scale
        d_col *= col_scale
        if (
            np.all(np.abs(1.0 - row_max[row_max > 0]) < 1e-3)
            and np.all(np.abs(1.0 - col_max[col_max > 0]) < 1e-3)
        ):
            break
    return d_row, d_col


def power_iteration_norm(
    k: np.ndarray,
    iterations: int,
    hook: PDHGCostHook = NULL_PDHG_HOOK,
    batch: int = 1,
) -> float:
    """Deterministic power-iteration estimate of ‖K‖₂ (via KᵀK).

    Returns 0.0 for empty, all-zero, near-zero, or non-finite matrices —
    never NaN/Inf — so callers can substitute a safe step size instead
    of dividing by a garbage norm (an all-zero constraint block would
    otherwise turn 1/‖K‖ into a NaN step and poison every iterate).
    """
    m, n = k.shape
    if k.size == 0 or not np.all(np.isfinite(k)):
        return 0.0
    # Deterministic non-degenerate start (a seeded RNG would make solves
    # depend on call order; a fixed ramp never does).
    v = 1.0 + np.arange(n) / max(1, n)
    v /= np.linalg.norm(v)
    sigma = 0.0
    for _ in range(iterations):
        hook.on_setup(batch, m, n)
        w = k.T @ (k @ v)
        norm = np.linalg.norm(w)
        if not np.isfinite(norm) or norm <= 1e-150:
            return 0.0
        sigma = np.sqrt(norm)
        v = w / norm
    return float(sigma) if np.isfinite(sigma) else 0.0


def _kkt(
    s: _Saddle, x: np.ndarray, y: np.ndarray
) -> Tuple[float, float, float, float, float]:
    """Relative KKT residuals at (x, y) in the original (unscaled) data.

    Returns ``(primal_res, dual_res, gap, p, d)`` where ``p``/``d`` are
    the min-form primal/dual objectives.
    """
    kx = s.k @ x
    resid = kx - s.q
    if s.num_eq < s.m:
        # Inequality rows Gx ≥ h: only violations below q count.
        resid[s.num_eq:] = np.minimum(resid[s.num_eq:], 0.0)
    q_scale = 1.0 + np.linalg.norm(s.q)
    primal_res = float(np.linalg.norm(resid)) / q_scale

    r = s.c_hat - s.k.T @ y
    lb_fin = np.isfinite(s.lb)
    ub_fin = np.isfinite(s.ub)
    # A positive reduced cost is absorbed by a finite lower bound, a
    # negative one by a finite upper bound; otherwise it is a violation.
    viol = np.where(~ub_fin, np.maximum(-r, 0.0), 0.0)
    viol += np.where(~lb_fin, np.maximum(r, 0.0), 0.0)
    c_scale = 1.0 + np.linalg.norm(s.c_hat)
    dual_res = float(np.linalg.norm(viol)) / c_scale

    p = float(s.c_hat @ x)
    d = float(s.q @ y)
    pos = np.maximum(r, 0.0)
    neg = np.minimum(r, 0.0)
    if lb_fin.any():
        d += float(s.lb[lb_fin] @ pos[lb_fin])
    if ub_fin.any():
        d += float(s.ub[ub_fin] @ neg[ub_fin])
    gap = abs(p - d) / (1.0 + abs(p) + abs(d))
    return primal_res, dual_res, gap, p, d


def _score(primal_res: float, dual_res: float, gap: float) -> float:
    return float(np.sqrt(primal_res**2 + dual_res**2 + gap**2))


def _check_dual_ray(s: _Saddle, dy: np.ndarray, tol: float) -> bool:
    """Farkas certificate of primal infeasibility from a dual direction.

    ``ŷ`` (eq rows free, ineq rows ≥ 0) proves ``{lb ≤ x ≤ ub : Kx ⋛ q}``
    empty when  sup_{lb≤x≤ub} ŷᵀKx < ŷᵀq.  The sup is finite only where
    each component of ``r = Kᵀŷ`` is absorbed by a finite bound on its
    side; the bounds then contribute ``Σ r⁺·ub + Σ r⁻·lb``.
    """
    ray = dy.copy()
    if s.num_eq < s.m:
        ray[s.num_eq:] = np.maximum(ray[s.num_eq:], 0.0)
    norm = np.max(np.abs(ray)) if ray.size else 0.0
    if norm <= 1e-12:
        return False
    ray /= norm
    k_scale = max(1.0, float(np.max(np.abs(s.k)))) if s.k.size else 1.0
    r = s.k.T @ ray
    pos = r > tol * k_scale
    neg = r < -tol * k_scale
    if np.any(pos & ~np.isfinite(s.ub)) or np.any(neg & ~np.isfinite(s.lb)):
        return False
    support = 0.0
    if pos.any():
        support += float(r[pos] @ s.ub[pos])
    if neg.any():
        support += float(r[neg] @ s.lb[neg])
    margin = float(s.q @ ray) - support
    return margin > tol * (1.0 + np.linalg.norm(s.q))


def _check_primal_ray(s: _Saddle, dx: np.ndarray, tol: float) -> bool:
    """Certificate of unboundedness (min form: ĉᵀdx < 0 along a ray)."""
    ray = dx.copy()
    lb_fin = np.isfinite(s.lb)
    ub_fin = np.isfinite(s.ub)
    # Project onto the box's recession cone.
    ray[lb_fin & ub_fin] = 0.0
    ray[lb_fin & ~ub_fin] = np.maximum(ray[lb_fin & ~ub_fin], 0.0)
    ray[~lb_fin & ub_fin] = np.minimum(ray[~lb_fin & ub_fin], 0.0)
    norm = np.max(np.abs(ray)) if ray.size else 0.0
    if norm <= 1e-12:
        return False
    ray /= norm
    k_scale = max(1.0, float(np.max(np.abs(s.k)))) if s.k.size else 1.0
    kd = s.k @ ray
    if s.num_eq and np.max(np.abs(kd[: s.num_eq]), initial=0.0) > tol * k_scale:
        return False
    if s.num_eq < s.m and np.min(kd[s.num_eq:], initial=0.0) < -tol * k_scale:
        return False
    descent = float(s.c_hat @ ray)
    return descent < -tol * (1.0 + np.linalg.norm(s.c_hat))


def _solve_box_only(s: _Saddle) -> PDHGResult:
    """Closed form for LPs with no constraint rows (box only)."""
    x = np.where(s.c_hat > 0, s.lb, np.where(s.c_hat < 0, s.ub, 0.0))
    x = np.clip(np.where(np.isfinite(x), x, 0.0), s.lb, s.ub)
    unbounded = ((s.c_hat > 0) & ~np.isfinite(s.lb)) | (
        (s.c_hat < 0) & ~np.isfinite(s.ub)
    )
    if unbounded.any():
        return PDHGResult(status=LPStatus.UNBOUNDED)
    p = float(s.c_hat @ x)
    return PDHGResult(
        status=LPStatus.OPTIMAL,
        objective=-p,
        x=x,
        y=np.zeros(s.m),
        reduced_costs=s.c_hat.copy(),
        primal_residual=0.0,
        dual_residual=0.0,
        gap=0.0,
        primal_objective_min=p,
        dual_objective_min=p,
    )


def solve_saddle_pdhg(
    s: _Saddle,
    options: Optional[PDHGOptions] = None,
    hook: PDHGCostHook = NULL_PDHG_HOOK,
    initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> PDHGResult:
    """Run restarted PDHG on a prepared saddle form."""
    options = options or PDHGOptions()
    if np.any(s.lb > s.ub):
        return PDHGResult(status=LPStatus.INFEASIBLE)
    if s.m == 0 or not np.any(s.k):
        base = _solve_box_only(s)
        if base.status is LPStatus.OPTIMAL and s.m:
            # Zero-matrix rows constrain nothing but their rhs must hold.
            bad_eq = s.num_eq and np.max(np.abs(s.q[: s.num_eq]), initial=0.0) > 0
            bad_ineq = s.num_eq < s.m and np.max(s.q[s.num_eq:], initial=0.0) > 0
            if bad_eq or bad_ineq:
                return PDHGResult(status=LPStatus.INFEASIBLE)
        return base

    stats = PDHGStats()
    m, n = s.m, s.n
    max_iterations = options.max_iterations
    if max_iterations is None:
        max_iterations = 4000 + 200 * (m + n)

    d_row, d_col = ruiz_equilibrate(s.k, options.scaling_iterations)
    ks = s.k * d_row[:, None] * d_col[None, :]
    qs = s.q * d_row
    cs = s.c_hat * d_col
    lbs = s.lb / d_col
    ubs = s.ub / d_col

    norm_k = power_iteration_norm(ks, options.power_iterations, hook)
    stats.power_iterations = options.power_iterations
    if not np.isfinite(norm_k) or norm_k <= 1e-12:
        # Zero/garbage norm estimate: fall back to a unit step scale
        # rather than dividing by (near-)nothing.
        norm_k = 1.0
    eta = options.step_size_scale / norm_k

    c_norm = np.linalg.norm(cs)
    q_norm = np.linalg.norm(qs)
    omega = c_norm / q_norm if c_norm > 1e-12 and q_norm > 1e-12 else 1.0

    if initial is not None:
        x = np.clip(np.asarray(initial[0], dtype=np.float64) / d_col, lbs, ubs)
        y = np.asarray(initial[1], dtype=np.float64) / d_row
        if s.num_eq < m:
            y[s.num_eq:] = np.maximum(y[s.num_eq:], 0.0)
    else:
        x = np.clip(np.zeros(n), lbs, ubs)
        y = np.zeros(m)

    def unscale(xv: np.ndarray, yv: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return xv * d_col, yv * d_row

    eps = options.tolerance
    ray_tol = options.ray_tolerance

    # Restart-span state.
    x_anchor, y_anchor = x.copy(), y.copy()      # span start (scaled)
    x_prev_anchor, y_prev_anchor = x.copy(), y.copy()
    sum_x, sum_y = np.zeros(n), np.zeros(m)
    navg = 0
    span_start_iter = 0
    pr0, dr0, gp0, _, _ = _kkt(s, *unscale(x, y))
    stats.kkt_checks += 1
    hook.on_check(1, m, n)
    score_at_restart = _score(pr0, dr0, gp0)
    last_candidate_score = np.inf
    ray_streak_infeasible = 0
    ray_streak_unbounded = 0

    best: Optional[PDHGResult] = None
    status = LPStatus.ITERATION_LIMIT

    def make_result(
        st: LPStatus, xv: np.ndarray, yv: np.ndarray,
        pr: float, dr: float, gp: float, p: float, d: float,
    ) -> PDHGResult:
        r = s.c_hat - s.k.T @ yv
        return PDHGResult(
            status=st,
            objective=-p,
            x=xv,
            y=yv,
            reduced_costs=r,
            primal_residual=pr,
            dual_residual=dr,
            gap=gp,
            primal_objective_min=p,
            dual_objective_min=d,
            stats=stats,
        )

    guard_ctx = guard_budget.active()
    watchdog = (
        IterationWatchdog("pdhg", options=guard_ctx.watchdog_options, sense="min")
        if guard_ctx is not None
        else None
    )

    tau = eta / omega
    sigma = eta * omega
    while stats.iterations < max_iterations:
        steps = min(options.check_every, max_iterations - stats.iterations)
        for _ in range(steps):
            hook.on_iteration(1, m, n)
            x_new = np.clip(x - tau * (cs - ks.T @ y), lbs, ubs)
            y = y + sigma * (qs - ks @ (2.0 * x_new - x))
            if s.num_eq < m:
                y[s.num_eq:] = np.maximum(y[s.num_eq:], 0.0)
            x = x_new
            sum_x += x
            sum_y += y
            navg += 1
            stats.iterations += 1

        # Score the current iterate and the span average, in original data.
        candidates = [(x, y)]
        if navg > 1:
            candidates.append((sum_x / navg, sum_y / navg))
        scored = []
        for xv, yv in candidates:
            xo, yo = unscale(xv, yv)
            pr, dr, gp, p, d = _kkt(s, xo, yo)
            stats.kkt_checks += 1
            hook.on_check(1, m, n)
            scored.append((_score(pr, dr, gp), xv, yv, xo, yo, pr, dr, gp, p, d))
        scored.sort(key=lambda t: t[0])
        (score, xv, yv, xo, yo, pr, dr, gp, p, d) = scored[0]

        if pr <= eps and dr <= eps and gp <= eps:
            status = LPStatus.OPTIMAL
            best = make_result(status, xo, yo, pr, dr, gp, p, d)
            break

        if guard_ctx is not None:
            # Piggyback on the KKT cadence: one budget poll and one
            # watchdog observation per check, never per iteration.
            if guard_ctx.deadline_hit():
                status = LPStatus.TIME_LIMIT
                best = make_result(status, xo, yo, pr, dr, gp, p, d)
                break
            signal = watchdog.observe(stats.iterations, merit=score, vector=xv)
            if signal in (WatchdogSignal.NONFINITE, WatchdogSignal.DIVERGED):
                status = LPStatus.NUMERICAL
                best = PDHGResult(status=status, stats=stats)
                break

        # Farkas-ray detection from the displacement over this span.
        if options.detect_rays:
            dx = x - x_anchor
            dy = y - y_anchor
            dxo, dyo = unscale(dx, dy)
            if _check_dual_ray(s, dyo, ray_tol):
                ray_streak_infeasible += 1
            else:
                ray_streak_infeasible = 0
            if _check_primal_ray(s, dxo, ray_tol):
                ray_streak_unbounded += 1
            else:
                ray_streak_unbounded = 0
            if ray_streak_infeasible >= 2:
                status = LPStatus.INFEASIBLE
                best = PDHGResult(status=status, stats=stats)
                break
            if ray_streak_unbounded >= 2:
                status = LPStatus.UNBOUNDED
                best = PDHGResult(status=status, stats=stats)
                break

        span_len = stats.iterations - span_start_iter
        do_restart = (
            score <= options.restart_sufficient * score_at_restart
            or (
                score <= options.restart_necessary * score_at_restart
                and score > last_candidate_score
            )
            or span_len >= options.artificial_restart * max(stats.iterations, 1)
        )
        last_candidate_score = score

        if do_restart:
            stats.restarts += 1
            obs.event(
                "lp.pdhg.restart", category="lp",
                iteration=stats.iterations, score=score,
            )
            x, y = xv.copy(), yv.copy()
            # Rebalance the primal weight from the span's movement.
            dx_norm = np.linalg.norm(x - x_prev_anchor)
            dy_norm = np.linalg.norm(y - y_prev_anchor)
            if dx_norm > 1e-12 and dy_norm > 1e-12:
                theta = options.primal_weight_smoothing
                omega = float(
                    np.exp(
                        theta * np.log(dy_norm / dx_norm)
                        + (1.0 - theta) * np.log(omega)
                    )
                )
                tau = eta / omega
                sigma = eta * omega
            x_prev_anchor, y_prev_anchor = x.copy(), y.copy()
            x_anchor, y_anchor = x.copy(), y.copy()
            sum_x[:] = 0.0
            sum_y[:] = 0.0
            navg = 0
            span_start_iter = stats.iterations
            score_at_restart = score
            last_candidate_score = np.inf

        best = make_result(LPStatus.ITERATION_LIMIT, xo, yo, pr, dr, gp, p, d)

    if best is None:  # max_iterations == 0 edge case
        xo, yo = unscale(x, y)
        pr, dr, gp, p, d = _kkt(s, xo, yo)
        best = make_result(LPStatus.ITERATION_LIMIT, xo, yo, pr, dr, gp, p, d)
    return best


def solve_lp_pdhg(
    lp: LinearProgram,
    options: Optional[PDHGOptions] = None,
    hook: PDHGCostHook = NULL_PDHG_HOOK,
    initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> PDHGResult:
    """Solve a (maximization) :class:`LinearProgram` by restarted PDHG.

    Bounds are handled natively as projections — no slack rows, no
    variable splitting — so the iteration works on the original (m, n)
    shape, which is what makes the batched variant one fused GEMM.
    """
    with obs.span("lp.pdhg", category="lp", m=lp.num_ub_rows + lp.num_eq_rows, n=lp.n) as sp:
        result = solve_saddle_pdhg(saddle_from_lp(lp), options, hook, initial)
        sp.set(
            status=result.status.value,
            iterations=result.stats.iterations,
            restarts=result.stats.restarts,
        )
        return result


def solve_standard_form_pdhg(
    sf: StandardFormLP,
    options: Optional[PDHGOptions] = None,
    hook: PDHGCostHook = NULL_PDHG_HOOK,
    initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> LPResult:
    """Solve an equality-form LP (``max cᵀx, Ax = b, x ≥ 0``) by PDHG.

    Returns the :class:`repro.lp.result.LPResult` shape the node-LP
    engines consume: ``x_standard`` for postsolve, maximization-form
    standard duals in ``duals`` (so the existing duality certificates
    apply with an explicit first-order tolerance), ``basis=None``
    (first-order methods carry no basis), and the rich
    :class:`PDHGResult` under ``first_order``.
    """
    s = _Saddle(
        c_hat=-sf.c.astype(np.float64),
        k=sf.a,
        q=sf.b,
        num_eq=sf.m,
        lb=np.zeros(sf.n),
        ub=np.full(sf.n, np.inf),
    )
    with obs.span("lp.pdhg", category="lp", m=sf.m, n=sf.n) as sp:
        res = solve_saddle_pdhg(s, options, hook, initial)
        sp.set(
            status=res.status.value,
            iterations=res.stats.iterations,
            restarts=res.stats.restarts,
        )
    if res.status is not LPStatus.OPTIMAL:
        out = LPResult(status=res.status, iterations=res.stats.iterations)
        out.first_order = res
        return out
    x_standard = res.x
    objective = sf.objective_value(x_standard)
    out = LPResult(
        status=LPStatus.OPTIMAL,
        objective=objective,
        x=sf.recover_x(x_standard),
        # Max-form standard duals: the min-form saddle duals negated.
        duals=-res.y,
        iterations=res.stats.iterations,
        basis=None,
        x_standard=x_standard,
    )
    out.first_order = res
    return out
