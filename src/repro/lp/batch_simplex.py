"""Lockstep batched simplex: many small LPs advancing SIMD-style.

Paper §5.5: with device memory far exceeding one small LP's matrix,
"dozens of branch-and-cut nodes could be solved simultaneously by the
GPU" — given linear-algebra services that support batched operation.
Gurung & Ray [14] demonstrated exactly this: a *tableau* simplex whose
every step is applied to a whole batch of LPs in lockstep, which is the
natural SIMD shape.

``solve_lp_batch`` takes k same-shape inequality-form LPs
(``max cᵀx, A x ≤ b, 0 ≤ x ≤ ub`` with ``b ≥ 0``, so the slack basis is
primal feasible — true of every LP-relaxation batch the MIP solver
produces from sibling nodes), stacks their tableaus into a
``(k, m+1, n+1)`` array, and performs elimination steps vectorized
across the batch.  Members reach optimality at different iterations and
are frozen by masking; the loop runs until all are terminal.

The optional ``on_iteration(k, m, n)`` hook lets a device model charge
one batched kernel per lockstep step (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import LPError, ShapeError
from repro.guard import budget as guard_budget
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus


@dataclass
class BatchLPResult:
    """Per-member outcomes of a batched solve."""

    statuses: List[LPStatus]
    objectives: np.ndarray
    #: (k, n) primal solutions in the original variable space.
    x: np.ndarray
    #: Lockstep iterations executed (shared across the batch).
    iterations: int
    #: (k, m) final basic-variable indices.  For a lockstep-compatible
    #: LP the tableau form *is* ``problem.to_standard_form()`` (same row
    #: order, slack column ``n + r`` for row ``r``), so an optimal
    #: member's basis/duals/x_standard seed warm re-solves directly.
    bases: Optional[np.ndarray] = None
    #: (k, m) row duals ``y = c_B B⁻¹`` read off the cost row's slack
    #: entries; meaningful only for optimal members.
    duals: Optional[np.ndarray] = None
    #: (k, n + m) standard-form primal solutions (optimal members only).
    x_standard: Optional[np.ndarray] = None

    @property
    def all_ok(self) -> bool:
        """True when every member proved optimality."""
        return all(s is LPStatus.OPTIMAL for s in self.statuses)


def lockstep_compatible(lp: LinearProgram) -> bool:
    """True when ``lp`` meets the lockstep preconditions.

    Inequality form, ``lb == 0`` and ``b ≥ 0`` (feasible slack basis) —
    the per-problem requirements of :func:`solve_lp_batch`.  Shape and
    finite-ub-pattern agreement across the batch is the caller's (the
    serving layer's bucketing) responsibility.
    """
    return (
        lp.num_eq_rows == 0
        and not np.any(lp.lb != 0.0)
        and (lp.b_ub is None or not np.any(lp.b_ub < 0))
    )


def _standardize_batch(lps: List[LinearProgram]):
    """Stack inequality-form LPs into batched standard-form arrays."""
    if not lps:
        raise LPError("empty LP batch")
    n = lps[0].n
    m_ub = lps[0].num_ub_rows
    for lp in lps:
        if lp.n != n or lp.num_ub_rows != m_ub:
            raise ShapeError("all batch members must share (m, n)")
        if lp.num_eq_rows:
            raise LPError("batched simplex supports inequality-form LPs only")
        if np.any(lp.lb != 0.0):
            raise LPError("batched simplex requires lb == 0")
        if np.any(lp.b_ub < 0):
            raise LPError("batched simplex requires b ≥ 0 (feasible slack basis)")

    # Finite upper bounds become extra rows (uniform count across batch
    # is required; infinite bounds contribute no row).
    finite_ub = np.isfinite(lps[0].ub)
    for lp in lps:
        if not np.array_equal(np.isfinite(lp.ub), finite_ub):
            raise ShapeError("batch members must share the finite-ub pattern")
    ub_rows = int(finite_ub.sum())

    k = len(lps)
    m = m_ub + ub_rows
    total_cols = n + m  # structural + slacks
    a = np.zeros((k, m, total_cols))
    b = np.zeros((k, m))
    c = np.zeros((k, total_cols))
    ub_idx = np.nonzero(finite_ub)[0]
    for t, lp in enumerate(lps):
        if m_ub:
            a[t, :m_ub, :n] = lp.a_ub
            b[t, :m_ub] = lp.b_ub
        for r, j in enumerate(ub_idx):
            a[t, m_ub + r, j] = 1.0
            b[t, m_ub + r] = lp.ub[j]
        a[t, :, n:] = np.eye(m)
        c[t, :n] = lp.c
    return a, b, c, n, m


def solve_lp_batch(
    lps: List[LinearProgram],
    max_iterations: Optional[int] = None,
    on_iteration: Optional[Callable[[int, int, int], None]] = None,
) -> BatchLPResult:
    """Solve a batch of same-shape LPs by lockstep tableau simplex."""
    a, b, c, n, m = _standardize_batch(lps)
    k = a.shape[0]
    total_cols = a.shape[2]
    tol = DEFAULT_TOLERANCES

    if max_iterations is None:
        max_iterations = 50 + 20 * (m + n)

    # Tableau: rows 0..m-1 are constraints [A | b]; row m is the cost row
    # [-reduced costs | objective].  Slack basis start.
    tab = np.zeros((k, m + 1, total_cols + 1))
    tab[:, :m, :total_cols] = a
    tab[:, :m, total_cols] = b
    tab[:, m, :total_cols] = -c  # maximize: optimal when no negative entry
    basis = np.tile(np.arange(n, n + m), (k, 1))

    active = np.ones(k, dtype=bool)
    unbounded = np.zeros(k, dtype=bool)
    batch_ids = np.arange(k)
    iterations = 0
    timed_out = False
    guard_ctx = guard_budget.active()

    while active.any() and iterations < max_iterations:
        if guard_ctx is not None and guard_ctx.deadline_hit():
            # Cooperative stop: still-active members surrender together
            # (the lockstep batch shares one clock).
            timed_out = True
            break
        if on_iteration is not None:
            on_iteration(int(active.sum()), m, total_cols)
        cost_rows = tab[:, m, :total_cols]
        entering = np.argmin(cost_rows, axis=1)
        improvable = cost_rows[batch_ids, entering] < -tol.optimality
        active &= improvable
        if not active.any():
            break

        # Lockstep ratio test on the active members.
        cols = tab[batch_ids, :m, entering]            # (k, m) pivot columns
        rhs = tab[:, :m, total_cols]                   # (k, m)
        positive = cols > tol.pivot
        ratios = np.where(positive, rhs / np.where(positive, cols, 1.0), np.inf)
        leave = np.argmin(ratios, axis=1)
        no_pivot = ~positive.any(axis=1)
        newly_unbounded = active & no_pivot
        unbounded |= newly_unbounded
        active &= ~no_pivot
        if not active.any():
            break

        act = np.nonzero(active)[0]
        piv_val = tab[act, leave[act], entering[act]]
        # Normalize pivot rows (active members only).
        tab[act, leave[act], :] /= piv_val[:, None]
        # Eliminate the pivot column from every other row, batched.
        pivot_rows = tab[act, leave[act], :]           # (k_act, cols+1)
        col_vals = np.take_along_axis(
            tab[act], entering[act][:, None, None], axis=2
        )[:, :, 0]                                     # (k_act, m+1)
        col_vals[np.arange(act.size), leave[act]] = 0.0
        tab[act] -= col_vals[:, :, None] * pivot_rows[:, None, :]
        basis[act, leave[act]] = entering[act]
        iterations += 1

    tail_status = LPStatus.TIME_LIMIT if timed_out else LPStatus.ITERATION_LIMIT
    statuses: List[LPStatus] = []
    for t in range(k):
        if unbounded[t]:
            statuses.append(LPStatus.UNBOUNDED)
        elif active[t]:
            statuses.append(tail_status)
        else:
            statuses.append(LPStatus.OPTIMAL)

    x = np.zeros((k, n))
    x_standard = np.zeros((k, total_cols))
    objectives = np.full(k, np.nan)
    # Duals: reduced cost of slack column r is y_r - 0, and the cost row
    # holds exactly those reduced costs at termination.
    duals = tab[:, m, n:total_cols].copy()
    for t in range(k):
        if statuses[t] is not LPStatus.OPTIMAL:
            continue
        full = np.zeros(total_cols)
        full[basis[t]] = tab[t, :m, total_cols]
        x[t] = full[:n]
        x_standard[t] = full
        objectives[t] = float(c[t, :n] @ x[t])
    return BatchLPResult(
        statuses=statuses,
        objectives=objectives,
        x=x,
        iterations=iterations,
        bases=basis,
        duals=duals,
        x_standard=x_standard,
    )


def solve_lp_batch_on_device(
    lps: List[LinearProgram],
    device,
    stream=None,
    max_iterations: Optional[int] = None,
) -> BatchLPResult:
    """Solve a batch charging one batched kernel sequence to ``device``.

    The MAGMA-style cost shape of §5.5 (and experiment E7): one batched
    factorization up front, then two batched triangular solves plus one
    batched GEMM per lockstep iteration, each sized by the number of
    still-active members.  ``device`` is a :class:`repro.device.gpu.Device`;
    numerics are exact regardless of the cost model.
    """
    from repro.device import kernels as K

    state = {"primed": False}

    def on_iteration(k: int, m: int, n: int) -> None:
        if not state["primed"]:
            device._charge(K.batched_getrf_kernel(k, m), stream)
            state["primed"] = True
        device._charge(K.batched_trsv_kernel(k, m), stream)
        device._charge(K.batched_trsv_kernel(k, m), stream)
        device._charge(K.batched_gemm_kernel(k, 1, n, m), stream)

    return solve_lp_batch(
        lps, max_iterations=max_iterations, on_iteration=on_iteration
    )
