"""Linear programming: the computational core of branch-and-cut.

The paper's entire §4/§5 discussion is about how the LP relaxation
solver's linear algebra maps onto GPUs, so this package implements the
solvers from scratch on :mod:`repro.la`:

- :mod:`repro.lp.problem` — `LinearProgram` and its standard form.
- :mod:`repro.lp.presolve` — cheap reductions before solving.
- :mod:`repro.lp.scaling` — geometric-mean equilibration.
- :mod:`repro.lp.pricing` — Dantzig / Devex / steepest-edge rules.
- :mod:`repro.lp.simplex` — two-phase revised primal simplex with
  product-form-of-inverse basis management (§5.1's rank-1 update loop).
- :mod:`repro.lp.dual_simplex` — warm-started re-optimization after
  bound changes and cut rows (§5.2/§5.3's reuse modes).
- :mod:`repro.lp.interior_point` — Mehrotra predictor–corrector (the
  §2.3 interior-point alternative).
- :mod:`repro.lp.batch_simplex` — lockstep batched simplex advancing
  many small LPs SIMD-style (§5.5).
- :mod:`repro.lp.pdhg` — restarted primal-dual hybrid gradient (the
  PDLP recipe): the first-order engine the GPU-LP literature says is
  the one that actually scales, with KKT-residual restarts/termination.
- :mod:`repro.lp.pdhg_batch` — lockstep batched PDHG advancing many
  node LPs per fused matvec sweep (one GEMM pair per iteration).
- :mod:`repro.lp.warm` — audited warm-start state (basis +
  factorization reuse across related solves) feeding the dual simplex.

`scipy.optimize.linprog` is used only in tests, as an oracle.
"""

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_lp, solve_standard_form
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.interior_point import interior_point_solve
from repro.lp.batch_simplex import BatchLPResult, solve_lp_batch
from repro.lp.pdhg import (
    PDHGCostHook,
    PDHGOptions,
    PDHGResult,
    solve_lp_pdhg,
    solve_standard_form_pdhg,
)
from repro.lp.pdhg_batch import BatchPDHGResult, solve_lp_pdhg_batch
from repro.lp.presolve import PresolveResult, presolve
from repro.lp.scaling import equilibrate
from repro.lp.warm import (
    WarmSolveOutcome,
    WarmStartState,
    WarmStateCache,
    audit_warm_lp,
    state_from_result,
    warm_resolve,
)

__all__ = [
    "LinearProgram",
    "StandardFormLP",
    "LPResult",
    "LPStatus",
    "SimplexOptions",
    "solve_lp",
    "solve_standard_form",
    "dual_simplex_resolve",
    "interior_point_solve",
    "solve_lp_batch",
    "BatchLPResult",
    "PDHGOptions",
    "PDHGCostHook",
    "PDHGResult",
    "solve_lp_pdhg",
    "solve_standard_form_pdhg",
    "BatchPDHGResult",
    "solve_lp_pdhg_batch",
    "presolve",
    "PresolveResult",
    "equilibrate",
    "WarmStartState",
    "WarmSolveOutcome",
    "WarmStateCache",
    "audit_warm_lp",
    "state_from_result",
    "warm_resolve",
]
