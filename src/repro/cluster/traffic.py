"""Heavy-tailed traffic for the cluster tier.

The S1 streams (:mod:`repro.serve.workload`) use exponential
interarrivals — fine for one pool, but horizontal sharding earns its
keep under the traffic real services see: *bursty* arrivals (Pareto
interarrivals: most gaps tiny, a heavy tail of long lulls, so load
comes in clumps) and *skewed* popularity (Zipf: a few hot problems
dominate, a long tail of one-offs).  The hot head stresses the cache /
coalescing path and the consistent-hash placement; the distinct tail is
the real device work sharding spreads out.

Every request also carries a priority class drawn from a configurable
``gold``/``silver``/``bronze`` mix, which is what the SLO admission
controller sheds by.

Everything is seeded and deterministic: the same
:class:`TrafficSpec` always produces the identical stream, so shard
sweeps compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.serve.request import Problem
from repro.cluster.admission import PRIORITY_CLASSES

#: One stream element: (arrival time, problem, priority class).
ClusterStreamItem = Tuple[float, Problem, str]


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one heavy-tailed request stream."""

    num_requests: int = 200
    #: Mean interarrival gap in simulated seconds.
    mean_interarrival: float = 1e-3
    #: Pareto tail index for interarrivals; smaller → heavier bursts.
    #: Must be > 1 so the mean exists.
    pareto_alpha: float = 1.5
    #: Zipf exponent for problem popularity; 0 → uniform, larger →
    #: hotter head.
    zipf_s: float = 1.1
    #: Probability mix over (gold, silver, bronze); must sum to 1.
    priority_mix: Tuple[float, float, float] = (0.2, 0.5, 0.3)
    seed: int = 0

    def __post_init__(self):
        if self.num_requests < 1:
            raise ServiceError("num_requests must be >= 1")
        if not self.mean_interarrival > 0:
            raise ServiceError("mean_interarrival must be positive")
        if not self.pareto_alpha > 1.0:
            raise ServiceError(
                "pareto_alpha must be > 1 (finite-mean interarrivals)"
            )
        if self.zipf_s < 0:
            raise ServiceError("zipf_s must be >= 0")
        if len(self.priority_mix) != len(PRIORITY_CLASSES):
            raise ServiceError(
                f"priority_mix needs {len(PRIORITY_CLASSES)} entries"
            )
        if abs(sum(self.priority_mix) - 1.0) > 1e-9:
            raise ServiceError("priority_mix must sum to 1")


def heavy_tailed_stream(
    problems: Sequence[Problem], spec: TrafficSpec
) -> List[ClusterStreamItem]:
    """Deterministic Pareto-interarrival, Zipf-popularity stream.

    Interarrival gaps are Lomax (Pareto II) samples scaled to the
    requested mean: ``mean * (alpha - 1) * pareto(alpha)``.  Problem
    popularity follows a truncated Zipf over the pool (rank ``r`` drawn
    with weight ``1 / r**s``), with ranks shuffled once per stream so
    the "hot" problems are not always the pool's first entries.
    """
    if not problems:
        raise ServiceError("heavy_tailed_stream needs a non-empty pool")
    rng = np.random.default_rng(spec.seed)
    n_pool = len(problems)
    weights = 1.0 / np.arange(1, n_pool + 1, dtype=float) ** spec.zipf_s
    weights /= weights.sum()
    rank_to_problem = rng.permutation(n_pool)
    scale = spec.mean_interarrival * (spec.pareto_alpha - 1.0)
    gaps = scale * rng.pareto(spec.pareto_alpha, size=spec.num_requests)
    arrivals = np.cumsum(gaps)
    ranks = rng.choice(n_pool, size=spec.num_requests, p=weights)
    priorities = rng.choice(
        len(PRIORITY_CLASSES), size=spec.num_requests, p=list(spec.priority_mix)
    )
    return [
        (
            float(arrivals[i]),
            problems[int(rank_to_problem[ranks[i]])],
            PRIORITY_CLASSES[int(priorities[i])],
        )
        for i in range(spec.num_requests)
    ]


def replay_cluster(cluster, stream: Sequence[ClusterStreamItem]) -> Tuple[list, int]:
    """Submit a cluster stream in arrival order and drain.

    Saturation rejections are counted, not raised (shed responses are
    *not* rejections — they are delivered answers).  Returns
    ``(responses, num_rejected)``.
    """
    from repro.errors import ServiceSaturated

    rejected = 0
    for at, problem, priority in stream:
        try:
            cluster.submit(problem, at=at, priority=priority)
        except ServiceSaturated:
            rejected += 1
    responses = cluster.drain()
    return responses, rejected
