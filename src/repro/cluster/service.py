"""The sharded cluster front door.

:class:`ClusterService` runs N independent single-pool
:class:`repro.serve.SolveService` worker groups (each its own simulated
`DeviceGroup` pool) behind one submission surface.  Per request it:

1. advances every group to the arrival time and *harvests* responses
   whose completion time has passed (delivery is what feeds the SLO
   control signal and the shared cache tier);
2. applies SLO-aware admission — low priority classes are shed with an
   immediate :data:`repro.serve.request.Outcome.SHED` response when
   observed p95/p99 exceed the targets (:mod:`repro.cluster.admission`);
3. routes by the problem's structure fingerprint over the configured
   policy (:mod:`repro.cluster.router`), probes the shared cache tier
   (:mod:`repro.cluster.cache`), and otherwise forwards the request to
   the owning group over a simulated :class:`repro.comm.NetworkSpec`
   hop.

Group membership is dynamic: :meth:`add_group` / :meth:`drain_group`
implement autoscaling (optionally driven by an
:class:`AutoscalePolicy`), and :meth:`kill_group` implements the chaos
fail-stop — delivered responses stay delivered, everything else is
re-routed to the survivors (never dropped, never double-answered) and
the dead shard's cache replica is wiped.

Everything is simulated time and fully deterministic, like the
single-pool service underneath: the same request stream produces the
same responses, which is what lets ``repro.check`` pin a 1-shard
cluster bitwise-equal to a plain service.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.device.spec import DeviceSpec, V100
from repro.errors import ServiceClosed, ServiceError, ServiceSaturated
from repro.faults.injector import active as faults_active
from repro.faults.plan import SITE_GROUP
from repro.metrics import Metrics
from repro.comm.network import NetworkSpec, SHARED_MEMORY
from repro.serve.batching import BatchingPolicy
from repro.serve.cache import CACHE_LOOKUP_SECONDS, CacheEntry
from repro.serve.request import (
    Outcome,
    Problem,
    SolveResponse,
    fingerprint,
)
from repro.serve.service import SolveService
from repro.cluster.admission import PRIORITY_CLASSES, SLOAdmission, SLOPolicy
from repro.cluster.cache import ClusterCache
from repro.cluster.router import make_router, routing_key


def request_wire_bytes(problem: Problem) -> int:
    """Structural size of one solve request crossing the front-door hop."""
    total = 64  # envelope: ids, mode, deadlines
    for tag in ("c", "a_ub", "b_ub", "a_eq", "b_eq", "lb", "ub", "integer"):
        arr = getattr(problem, tag, None)
        if arr is not None:
            total += int(arr.nbytes)
    return total


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive group scaling driven by mean outstanding load."""

    min_groups: int = 1
    max_groups: int = 8
    #: Scale up when mean outstanding requests per group reaches this.
    up_outstanding: float = 32.0
    #: Scale down when mean outstanding per group falls to this.
    down_outstanding: float = 1.0
    #: Simulated seconds between scaling actions (flap damping).
    cooldown: float = 0.05

    def __post_init__(self):
        if not 1 <= self.min_groups <= self.max_groups:
            raise ServiceError(
                f"need 1 <= min_groups <= max_groups, got "
                f"{self.min_groups}..{self.max_groups}"
            )
        if self.down_outstanding >= self.up_outstanding:
            raise ServiceError("down_outstanding must be < up_outstanding")
        if self.cooldown < 0:
            raise ServiceError("cooldown must be >= 0")


@dataclass
class _Assignment:
    """One admitted-and-forwarded request the cluster still owes."""

    cluster_rid: int
    gid: int
    local_rid: int
    problem: Problem
    submitted_at: float
    router_seconds: float
    priority: str
    timeout: Optional[float] = None
    solve_deadline: Optional[float] = None
    mode: str = "exact"
    gap_target: Optional[float] = None
    reroutes: int = 0
    key: str = ""
    fingerprint: str = ""
    #: Coalescing channel (mirrors ``SolveRequest.cache_key``) used for
    #: duplicate-affinity routing; "" for never-forwarded requests.
    chan: str = ""


class ClusterService:
    """N solve-service shards behind one router + admission front door."""

    def __init__(
        self,
        groups: int = 2,
        router: str = "hash",
        policy: Optional[BatchingPolicy] = None,
        num_workers: int = 2,
        spec: DeviceSpec = V100,
        network: NetworkSpec = SHARED_MEMORY,
        slo: Optional[SLOPolicy] = None,
        autoscale: Optional[AutoscalePolicy] = None,
        cache_capacity: int = 4096,
        replica_capacity: int = 512,
        metrics: Optional[Metrics] = None,
        group_cache_capacity: int = 1024,
        parametric_capacity: int = 128,
        spill_depth: Optional[int] = None,
    ):
        if groups < 1:
            raise ServiceError(f"need at least one group, got {groups}")
        self.policy = policy if policy is not None else BatchingPolicy()
        self.num_workers = num_workers
        self.spec = spec
        self.network = network
        self.metrics = metrics if metrics is not None else Metrics()
        self.router = make_router(router)
        self.cache = ClusterCache(
            capacity=cache_capacity,
            replica_capacity=replica_capacity,
            network=network,
        )
        self.admission = SLOAdmission(slo) if slo is not None else None
        self.autoscale = autoscale
        self.group_cache_capacity = group_cache_capacity
        self.parametric_capacity = parametric_capacity
        #: Bounded-load spill: a group counts as overloaded once its
        #: outstanding backlog reaches ``spill_factor`` times the mean
        #: (never below the ``spill_depth`` floor), at which point the
        #: hash router diverts new *distinct* work to the least-loaded
        #: group.  Duplicates of in-flight problems are exempt — they
        #: follow their primary and coalesce for free.
        self.spill_depth = 8 if spill_depth is None else spill_depth
        self.spill_factor = 1.25
        self.now = 0.0
        self.closed = False
        self._next_id = 0
        self._next_gid = 0
        self._groups: Dict[int, SolveService] = {}
        self._responses: Dict[int, SolveResponse] = {}
        #: cluster rid → live assignment (request the cluster still owes).
        self._assignments: Dict[int, _Assignment] = {}
        #: gid → {local rid → cluster rid} awaiting harvest.
        self._pending: Dict[int, Dict[int, int]] = {}
        #: coalescing channel → {gid → in-flight count}: which shard is
        #: already solving a given problem (duplicate-affinity routing).
        self._inflight: Dict[str, Dict[int, int]] = {}
        self._last_scale = -float("inf")
        #: (sim time, action, gid, groups after) autoscale history.
        self.scale_events: List[tuple] = []
        for _ in range(groups):
            self.add_group(at=0.0)

    # -- membership ------------------------------------------------------------

    @property
    def group_ids(self) -> List[int]:
        """Live group ids, sorted."""
        return sorted(self._groups)

    def add_group(self, at: Optional[float] = None) -> int:
        """Spin up one more worker group and join it to the ring."""
        gid = self._next_gid
        self._next_gid += 1
        svc = SolveService(
            policy=self.policy,
            num_workers=self.num_workers,
            spec=self.spec,
            cache_capacity=self.group_cache_capacity,
            parametric_capacity=self.parametric_capacity,
        )
        if at is not None:
            svc.advance_to(at)
        self._groups[gid] = svc
        self._pending[gid] = {}
        self.router.join(gid)
        self.cache.attach_shard(gid)
        self.metrics.inc("cluster.group_adds")
        return gid

    def drain_group(self, gid: int, at: Optional[float] = None) -> None:
        """Gracefully retire one group: finish its work, then remove it.

        The group leaves the ring first (no new traffic), runs its queue
        dry, and every response it still owed is delivered before the
        group and its cache replica disappear.
        """
        svc = self._require_group(gid)
        if at is not None:
            svc.advance_to(at)
        self.router.leave(gid)
        svc.drain()
        self._harvest_group(gid, until=float("inf"))
        self.cache.drop_replica(gid)
        del self._groups[gid]
        del self._pending[gid]
        self.metrics.inc("cluster.group_drains")

    def kill_group(self, gid: int, at: float) -> int:
        """Fail-stop one group at simulated time ``at``.

        Responses the group completed by ``at`` are already *delivered*
        and stay answered exactly once.  Everything else the group owed
        — queued, batching, or mid-solve — is re-routed to the surviving
        groups (re-solved from scratch; the dead group's partial work is
        gone).  The group's cache replica is wiped; the shared owner
        tier keeps the answers, which are still valid.

        Returns the number of re-routed requests.  Raises
        :class:`ServiceError` when this is the last live group.
        """
        svc = self._require_group(gid)
        if len(self._groups) < 2:
            raise ServiceError(
                f"cannot kill group {gid}: it is the last live group"
            )
        at = max(float(at), self.now)
        self.now = at
        # Deliver exactly what the group completed before it died.
        svc.advance_to(at)
        self._harvest_group(gid, until=at)
        self.router.leave(gid)
        orphans = sorted(
            self._pending[gid].values()
        )  # cluster rids, admission order
        del self._groups[gid]
        del self._pending[gid]
        self.cache.drop_replica(gid)
        self.metrics.inc("cluster.group_kills")
        for rid in orphans:
            self._inflight_dec(self._assignments[rid].chan, gid)
        for rid in orphans:
            self._reroute(self._assignments[rid], at)
        return len(orphans)

    def _require_group(self, gid: int) -> SolveService:
        svc = self._groups.get(gid)
        if svc is None:
            raise ServiceError(f"no live group {gid}; live: {self.group_ids}")
        return svc

    def _reroute(self, a: _Assignment, at: float) -> None:
        """Resubmit one orphaned request to a surviving group."""
        self.metrics.inc("cluster.rerouted")
        route_cost = self.network.message_time(request_wire_bytes(a.problem))
        order = [self.router.route(a.key, self._load, self._overloaded)]
        order += [g for g in self.group_ids if g != order[0]]
        for gid in order:
            svc = self._groups[gid]
            group_at = max(at + route_cost, svc.now)
            try:
                local_rid = svc.submit(
                    a.problem,
                    at=group_at,
                    timeout=a.timeout,
                    solve_deadline=a.solve_deadline,
                    mode=a.mode,
                    gap_target=a.gap_target,
                )
            except ServiceSaturated:
                continue
            a.gid = gid
            a.local_rid = local_rid
            a.router_seconds += route_cost
            a.reroutes += 1
            self._pending[gid][local_rid] = a.cluster_rid
            self._inflight.setdefault(a.chan, {})
            self._inflight[a.chan][gid] = self._inflight[a.chan].get(gid, 0) + 1
            return
        # Every survivor is saturated: answer FAILED rather than drop.
        self.metrics.inc("cluster.reroute_failed")
        self._deliver(
            a,
            SolveResponse(
                request_id=a.cluster_rid,
                fingerprint=a.fingerprint,
                outcome=Outcome.FAILED,
                solver_status="cluster_overflow",
                arrival_time=a.submitted_at,
                dispatch_time=at,
                start_time=at,
                completion_time=at,
            ),
        )

    def _maybe_group_kill(self, at: float) -> None:
        """Consult the fault injector for a whole-group fail-stop.

        One ``cluster.group`` occurrence is counted per admission while
        more than one group is live (the last group is never killable,
        so it does not advance the counter).  When the site fires, the
        busiest group — deterministically, highest ``(load, gid)`` —
        dies at ``at``; its in-flight work is re-routed by
        :meth:`kill_group` and the fault is resolved as recovered.
        """
        injector = faults_active()
        if injector is None or len(self._groups) < 2:
            return
        if not injector.group_kill():
            return
        victim = max(self._groups, key=lambda g: (self._load(g), g))
        self.kill_group(victim, at=at)
        injector.resolve_recovered(1, site=SITE_GROUP)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        problem: Problem,
        at: Optional[float] = None,
        timeout: Optional[float] = None,
        solve_deadline: Optional[float] = None,
        mode: str = "exact",
        gap_target: Optional[float] = None,
        priority: str = "silver",
    ) -> int:
        """Admit one request at the front door; returns the cluster id.

        Mirrors :meth:`repro.serve.SolveService.submit`, adding the
        ``priority`` class (``gold``/``silver``/``bronze``) the SLO
        admission controller sheds by.  Raises
        :class:`repro.errors.ServiceSaturated` when the routed group
        (and every fallback) rejects the request outright.
        """
        if self.closed:
            raise ServiceClosed("submit() on a closed cluster")
        at = self.now if at is None else float(at)
        if at < self.now:
            raise ServiceError(
                f"arrivals must be non-decreasing: got {at:.6g} after {self.now:.6g}"
            )
        self.now = at
        self._advance(at)
        if self.autoscale is not None:
            self._autoscale_step(at)
        self._maybe_group_kill(at)

        rid = self._next_id
        self._next_id += 1
        fp = fingerprint(problem)
        key = routing_key(problem)
        self.metrics.inc("cluster.requests")
        self.metrics.inc(f"cluster.offered.{priority}")

        # 1. SLO-aware admission: shed low classes under tail pressure.
        if self.admission is not None and not self.admission.admit(priority, at):
            self.metrics.inc("cluster.shed")
            self.metrics.inc(f"cluster.shed.{priority}")
            self._responses[rid] = SolveResponse(
                request_id=rid,
                fingerprint=fp,
                outcome=Outcome.SHED,
                solver_status="shed",
                arrival_time=at,
                dispatch_time=at,
                start_time=at,
                completion_time=at,
                trace_id=f"req-{rid:06d}",
            )
            return rid

        # 2. Route, then probe the shared cache tier at the routed shard.
        # Duplicate affinity first: if some shard is already solving this
        # exact problem (same coalescing channel), follow it — the group
        # coalesces the duplicate for free, which no spill can beat.
        if mode == "exact":
            chan = fp
        else:
            gap = "" if gap_target is None else f"{gap_target:.12g}"
            chan = f"{fp}#h:{mode}:{gap}"
        flights = self._inflight.get(chan)
        if flights:
            gid = min(flights)
            self.metrics.inc("cluster.affinity_hits")
        else:
            gid = self.router.route(key, self._load, self._overloaded)
        if mode == "exact":
            entry, cost = self.cache.lookup(fp, gid)
            if entry is not None:
                self.metrics.inc("cluster.cache_hits")
                done = max(at, entry.ready_time) + cost
                a = _Assignment(
                    cluster_rid=rid,
                    gid=gid,
                    local_rid=-1,
                    problem=problem,
                    submitted_at=at,
                    router_seconds=0.0,
                    priority=priority,
                    fingerprint=fp,
                    key=key,
                )
                self._deliver(
                    a,
                    SolveResponse(
                        request_id=rid,
                        fingerprint=fp,
                        outcome=entry.outcome,
                        solver_status=entry.solver_status,
                        objective=entry.objective,
                        x=entry.x,
                        best_bound=entry.best_bound,
                        gap=entry.gap,
                        mode=entry.mode,
                        arrival_time=at,
                        dispatch_time=at,
                        start_time=at,
                        completion_time=done,
                        cached=True,
                    ),
                )
                return rid

        # 3. Forward over the front-door network hop.
        route_cost = self.network.message_time(request_wire_bytes(problem))
        svc = self._groups[gid]
        group_at = max(at + route_cost, svc.now)
        try:
            local_rid = svc.submit(
                problem,
                at=group_at,
                timeout=timeout,
                solve_deadline=solve_deadline,
                mode=mode,
                gap_target=gap_target,
            )
        except ServiceSaturated:
            self.metrics.inc("cluster.rejected")
            raise
        self._assignments[rid] = _Assignment(
            cluster_rid=rid,
            gid=gid,
            local_rid=local_rid,
            problem=problem,
            submitted_at=at,
            router_seconds=route_cost,
            priority=priority,
            timeout=timeout,
            solve_deadline=solve_deadline,
            mode=mode,
            gap_target=gap_target,
            key=key,
            fingerprint=fp,
            chan=chan,
        )
        self._pending[gid][local_rid] = rid
        self._inflight.setdefault(chan, {})
        self._inflight[chan][gid] = self._inflight[chan].get(gid, 0) + 1
        return rid

    # -- load signals ------------------------------------------------------------

    def _inflight_dec(self, chan: str, gid: int) -> None:
        flights = self._inflight.get(chan)
        if not flights:
            return
        n = flights.get(gid, 0) - 1
        if n > 0:
            flights[gid] = n
        else:
            flights.pop(gid, None)
        if not flights:
            self._inflight.pop(chan, None)

    def _load(self, gid: int) -> float:
        """Distinct problems the cluster has in flight at ``gid``.

        Coalesced duplicates ride their primary for free, so load is
        counted per coalescing channel, not per request — a shard
        holding one hot problem with fifty followers is *idle* next to
        a shard holding three distinct solves.
        """
        return float(
            sum(1 for flights in self._inflight.values() if gid in flights)
        )

    def _overloaded(self, gid: int) -> bool:
        """Bounded-load check on the *outstanding* backlog.

        Queue depth alone hides work already sitting on busy workers,
        so overload is judged on forwarded-but-undelivered requests,
        relative to the cluster-wide mean (consistent hashing with
        bounded loads: cap ≈ ``spill_factor`` × mean, floored at
        ``spill_depth`` so light traffic never spills at all).
        """
        n = len(self._groups)
        if n <= 1:
            return False
        cap = max(self.spill_depth, self.spill_factor * len(self._inflight) / n)
        return self._load(gid) >= cap

    def _autoscale_step(self, at: float) -> None:
        policy = self.autoscale
        if at - self._last_scale < policy.cooldown:
            return
        n = len(self._groups)
        mean_load = sum(self._load(g) for g in self._groups) / n
        if mean_load >= policy.up_outstanding and n < policy.max_groups:
            gid = self.add_group(at=at)
            self._last_scale = at
            self.scale_events.append((at, "add", gid, n + 1))
        elif mean_load <= policy.down_outstanding and n > policy.min_groups:
            gid = min(self._groups, key=lambda g: (self._load(g), g))
            self.drain_group(gid, at=at)
            self._last_scale = at
            self.scale_events.append((at, "drain", gid, n - 1))

    # -- harvest -----------------------------------------------------------------

    def _advance(self, at: float) -> None:
        for svc in self._groups.values():
            svc.advance_to(at)
        for gid in self.group_ids:
            self._harvest_group(gid, until=at)

    def _harvest_group(self, gid: int, until: float) -> None:
        """Deliver this group's responses completed by ``until``."""
        pending = self._pending[gid]
        svc = self._groups[gid]
        for local_rid in sorted(pending):
            response = svc.result(local_rid)
            if response is None or response.completion_time > until:
                continue
            rid = pending.pop(local_rid)
            a = self._assignments.pop(rid)
            self._inflight_dec(a.chan, gid)
            self._deliver(
                a,
                dataclasses.replace(
                    response,
                    request_id=rid,
                    trace_id=f"req-{rid:06d}",
                ),
            )

    def _deliver(self, a: _Assignment, response: SolveResponse) -> None:
        """Record one answered request and feed every control loop."""
        self._responses[a.cluster_rid] = response
        latency = max(0.0, response.completion_time - a.submitted_at)
        if response.outcome is Outcome.OK:
            self.metrics.inc("cluster.completed")
            self.metrics.inc(f"cluster.completed.{a.priority}")
        elif response.outcome is Outcome.TIMEOUT:
            self.metrics.inc("cluster.timeouts")
        elif response.outcome is Outcome.FAILED:
            self.metrics.inc("cluster.failed")
        elif response.outcome is Outcome.PARTIAL:
            self.metrics.inc("cluster.partial")
        self.metrics.observe("cluster.latency", latency)
        self.metrics.observe("cluster.router", max(0.0, a.router_seconds))
        self.metrics.observe("cluster.queue_wait", max(0.0, response.queue_wait))
        self.metrics.observe("cluster.batch", max(0.0, response.assembly_wait))
        if response.ok and not response.cached and not response.warm:
            self.metrics.observe("cluster.solve", max(0.0, response.device_time))
        if self.admission is not None and response.outcome is not Outcome.SHED:
            self.admission.observe(latency)
        if response.ok and not response.cached and a.mode == "exact":
            self.cache.insert(
                a.fingerprint,
                CacheEntry(
                    outcome=response.outcome,
                    solver_status=response.solver_status,
                    objective=response.objective,
                    x=response.x,
                    ready_time=response.completion_time,
                    best_bound=response.best_bound,
                    gap=response.gap,
                    mode=response.mode,
                ),
                shard=a.gid,
            )

    # -- lifecycle ---------------------------------------------------------------

    def drain(self) -> List[SolveResponse]:
        """Run every group's queue dry and deliver everything owed."""
        for gid in self.group_ids:
            self._groups[gid].drain()
        for gid in self.group_ids:
            self._harvest_group(gid, until=float("inf"))
        return self.results()

    def close(self) -> List[SolveResponse]:
        """Stop admitting, drain all groups, return all responses."""
        if not self.closed:
            self.closed = True
            self.metrics.inc("cluster.closed")
            return self.drain()
        return self.results()

    # -- results & introspection -------------------------------------------------

    def result(self, request_id: int) -> Optional[SolveResponse]:
        """Response for one cluster request id (None while in flight)."""
        return self._responses.get(request_id)

    def results(self) -> List[SolveResponse]:
        """All delivered responses, ordered by cluster request id."""
        return [self._responses[rid] for rid in sorted(self._responses)]

    @property
    def outstanding(self) -> int:
        """Requests admitted and forwarded but not yet delivered."""
        return len(self._assignments)

    @property
    def makespan(self) -> float:
        """Simulated end-to-end time across the whole cluster."""
        spans = [svc.makespan for svc in self._groups.values()]
        return max([self.now] + spans)

    def percentile(self, name: str, q: float) -> float:
        """Exact percentile of one cluster histogram (see ``stats``)."""
        return self.metrics.percentile(name, q)

    def stats(self) -> Dict:
        """Cluster-tier breakdown: router, cache, admission, latencies."""
        tiers = {}
        for tier in ("router", "queue_wait", "batch", "solve", "latency"):
            hist = f"cluster.{tier}"
            tiers[tier] = {
                "p50": self.metrics.percentile(hist, 50.0),
                "p95": self.metrics.percentile(hist, 95.0),
                "p99": self.metrics.percentile(hist, 99.0),
            }
        shed_rates = {}
        for priority in PRIORITY_CLASSES:
            offered = self.metrics.count(f"cluster.offered.{priority}")
            shed = self.metrics.count(f"cluster.shed.{priority}")
            shed_rates[priority] = shed / offered if offered else 0.0
        out = self.metrics.to_dict()
        out["derived"] = {
            "groups": self.group_ids,
            "makespan": self.makespan,
            "outstanding": self.outstanding,
            "router": {
                "policy": self.router.name,
                "spills": getattr(self.router, "spills", 0),
            },
            "tiers": tiers,
            "cache": self.cache.stats(),
            "admission": self.admission.stats() if self.admission else None,
            "shed_rate": shed_rates,
            "scale_events": len(self.scale_events),
        }
        return out
