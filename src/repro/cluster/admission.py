"""Priority classes and SLO-aware admission for the cluster front door.

Under overload a service has two honest choices: queue everyone (and
blow every latency SLO) or shed the traffic that matters least.  The
cluster front door takes the second: every request carries a priority
class (``gold`` > ``silver`` > ``bronze``), and an
:class:`SLOAdmission` controller sheds the lowest classes first when
the *observed* tail latency — the exact p95/p99 percentiles the
:mod:`repro.obs` metrics registry maintains — exceeds the SLO targets.

The control loop is deliberately simple and fully deterministic:

- every ``check_interval`` simulated seconds the controller re-reads
  p95/p99 over the sliding recent window;
- if either percentile exceeds its target, the shed level rises by one
  (first ``bronze`` is shed, then ``silver``; ``gold`` is never shed —
  saturation then falls through to the queue-depth admission control
  the groups already enforce);
- if both percentiles sit below ``recover_fraction`` of their targets,
  the shed level falls by one.

Hysteresis comes from the interval (the level moves at most one step
per check) and the recovery fraction (the level does not flap around
the target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ServiceError

#: Priority classes, best first.  Rank is the shed order from the back:
#: bronze sheds first, gold never sheds.
PRIORITY_CLASSES = ("gold", "silver", "bronze")
_RANK = {name: i for i, name in enumerate(PRIORITY_CLASSES)}


def priority_rank(priority: str) -> int:
    """0 for gold, 1 for silver, 2 for bronze; raises on unknown names."""
    try:
        return _RANK[priority]
    except KeyError:
        raise ServiceError(
            f"unknown priority class {priority!r}; valid classes are "
            + ", ".join(repr(p) for p in PRIORITY_CLASSES)
        ) from None


@dataclass(frozen=True)
class SLOPolicy:
    """Latency targets and control-loop knobs for shedding."""

    #: p95 latency target in simulated seconds.
    p95_target: float = 5e-3
    #: p99 latency target in simulated seconds.
    p99_target: float = 2e-2
    #: Simulated seconds between controller evaluations.
    check_interval: float = 1e-3
    #: Shed level falls only when p95/p99 < fraction * target.
    recover_fraction: float = 0.5
    #: Percentiles computed over at most this many recent latencies.
    window: int = 256

    def __post_init__(self):
        if not self.p95_target > 0 or not self.p99_target > 0:
            raise ServiceError("SLO latency targets must be positive")
        if not self.check_interval > 0:
            raise ServiceError("check_interval must be positive")
        if not 0.0 < self.recover_fraction < 1.0:
            raise ServiceError("recover_fraction must be in (0, 1)")
        if self.window < 8:
            raise ServiceError(f"window must be >= 8, got {self.window}")


class SLOAdmission:
    """The shedding controller: observed tail latency → shed level.

    ``shed_level`` is how many classes (from the back of
    :data:`PRIORITY_CLASSES`) are currently refused: 0 admits all,
    1 sheds bronze, 2 sheds silver and bronze.  Gold is never shed.
    """

    def __init__(self, policy: Optional[SLOPolicy] = None):
        self.policy = policy or SLOPolicy()
        self.shed_level = 0
        self._window: List[float] = []
        self._last_check = -np.inf
        self.shed_counts: Dict[str, int] = {p: 0 for p in PRIORITY_CLASSES}
        self.admitted_counts: Dict[str, int] = {p: 0 for p in PRIORITY_CLASSES}
        #: (sim time, new level, p95, p99) history for reports.
        self.transitions: List[tuple] = []

    # -- signal ------------------------------------------------------------------

    def observe(self, latency: float) -> None:
        """Feed one completed-request latency into the sliding window."""
        self._window.append(float(latency))
        if len(self._window) > self.policy.window:
            del self._window[: len(self._window) - self.policy.window]

    def percentiles(self) -> tuple:
        """Current (p95, p99) over the window (0.0 while empty)."""
        if not self._window:
            return 0.0, 0.0
        arr = np.asarray(self._window)
        return (
            float(np.percentile(arr, 95.0)),
            float(np.percentile(arr, 99.0)),
        )

    # -- control loop ------------------------------------------------------------

    def evaluate(self, now: float) -> int:
        """Move the shed level at most one step; returns the level."""
        if now - self._last_check < self.policy.check_interval:
            return self.shed_level
        self._last_check = now
        p95, p99 = self.percentiles()
        policy = self.policy
        max_level = len(PRIORITY_CLASSES) - 1  # gold is never shed
        if p95 > policy.p95_target or p99 > policy.p99_target:
            if self.shed_level < max_level:
                self.shed_level += 1
                self.transitions.append((now, self.shed_level, p95, p99))
        elif (
            p95 < policy.recover_fraction * policy.p95_target
            and p99 < policy.recover_fraction * policy.p99_target
            and self.shed_level > 0
        ):
            self.shed_level -= 1
            self.transitions.append((now, self.shed_level, p95, p99))
        return self.shed_level

    def admit(self, priority: str, now: float) -> bool:
        """Admission verdict for one arriving request (counts both ways)."""
        rank = priority_rank(priority)
        self.evaluate(now)
        shed_from = len(PRIORITY_CLASSES) - self.shed_level
        if rank >= shed_from:
            self.shed_counts[priority] += 1
            return False
        self.admitted_counts[priority] += 1
        return True

    # -- reporting ---------------------------------------------------------------

    def shed_rate(self, priority: str) -> float:
        """Shed / offered for one class (0.0 when the class saw nothing)."""
        shed = self.shed_counts[priority]
        offered = shed + self.admitted_counts[priority]
        return shed / offered if offered else 0.0

    def stats(self) -> Dict:
        p95, p99 = self.percentiles()
        return {
            "shed_level": self.shed_level,
            "p95_observed": p95,
            "p99_observed": p99,
            "shed": dict(self.shed_counts),
            "admitted": dict(self.admitted_counts),
            "shed_rate": {p: self.shed_rate(p) for p in PRIORITY_CLASSES},
            "transitions": len(self.transitions),
        }
