"""S2 — the cluster scaling benchmark.

S1 (:mod:`repro.serve.workload`) measured one pool; S2 measures the
*sharded* tier: the identical heavy-tailed stream is replayed against
clusters of 1, 2, 4, … groups, and the artifact reports, per shard
count, aggregate throughput, the per-tier latency breakdown
(router / queue / batch / solve / end-to-end p50/p95/p99), cache
behaviour, and shed rates per priority class.

The workload is the regime where sharding is the *only* remaining
lever: a shape-diverse pool of distinct LPs (per-group batching is
already saturated — batches cannot grow past the handful of
same-shape problems in flight, the Gurung & Ray ceiling), arriving in
Pareto bursts faster than one group can drain.

Headline claims (gated by ``repro cluster-bench --check-speedup``):

- aggregate throughput scales with shard count — ≥3x at 4 shards is
  the acceptance bar, i.e. the saturated single pool really was the
  bottleneck and the host-tier router does not become the next one;
- p99 end-to-end latency does not grow with the shard ratio
  (sub-linear; in this load-fixed sweep it *collapses*, because the
  single-shard p99 is queue-dominated);
- the SLO admission controller sheds strictly less traffic as shards
  are added — horizontal capacity absorbs load that a single group
  could only refuse.

Artifact: ``BENCH_s2.json`` in the :mod:`repro.obs.bench` schema.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.bench import bench_payload
from repro.serve.batching import BatchingPolicy
from repro.serve.request import Problem
from repro.serve.workload import lp_pool
from repro.cluster.admission import PRIORITY_CLASSES, SLOPolicy
from repro.cluster.service import ClusterService
from repro.cluster.traffic import TrafficSpec, heavy_tailed_stream, replay_cluster

#: S2 default SLO: tuned so a saturated single group breaches it (and
#: sheds) while four groups mostly meet it — the shed-rate column is
#: the admission controller reacting to real tail latency, not a prop.
S2_SLO = SLOPolicy(p95_target=1e-2, p99_target=3e-2)


def s2_pool(
    pool_size: int = 128,
    base_items: int = 40,
    shape_spread: int = 32,
    seed: int = 0,
) -> List[Problem]:
    """Shape-diverse distinct-LP pool: the batching-saturated regime.

    ``shape_spread`` distinct knapsack sizes cycle through the pool, so
    same-shape batches top out at ``pool_size / shape_spread`` members
    no matter how large the batch cap is — per-group batching is
    already saturated, which is precisely when horizontal sharding is
    the remaining throughput lever.
    """
    problems: List[Problem] = []
    for i in range(pool_size):
        problems.extend(
            lp_pool(1, num_items=base_items + (i % shape_spread), seed=seed + i)
        )
    return problems


def run_cluster_point(
    shards: int,
    stream: Sequence[Tuple[float, Problem, str]],
    num_workers: int = 2,
    router: str = "hash",
    slo: Optional[SLOPolicy] = S2_SLO,
    max_batch_size: int = 8,
    max_wait: float = 2e-5,
    max_queue_depth: int = 4096,
) -> Dict[str, Any]:
    """Replay one stream against a ``shards``-group cluster; one row."""
    cluster = ClusterService(
        groups=shards,
        router=router,
        num_workers=num_workers,
        policy=BatchingPolicy(
            max_batch_size=max_batch_size,
            max_wait=max_wait,
            max_queue_depth=max_queue_depth,
        ),
        slo=slo,
    )
    responses, rejected = replay_cluster(cluster, stream)
    completed = sum(1 for r in responses if r.ok)
    shed = sum(1 for r in responses if r.outcome.value == "shed")
    makespan = cluster.makespan
    row: Dict[str, Any] = {
        "shards": shards,
        "requests": len(stream),
        "completed": completed,
        "shed": shed,
        "rejected": rejected,
        "makespan": makespan,
        "throughput": completed / makespan if makespan > 0 else 0.0,
        "router_spills": getattr(cluster.router, "spills", 0),
        "affinity_hits": cluster.metrics.count("cluster.affinity_hits"),
        "cache_hit_rate": cluster.cache.hit_rate,
        "cache_local_hits": cluster.cache.local_hits,
        "cache_remote_hits": cluster.cache.remote_hits,
    }
    for tier in ("router", "queue_wait", "batch", "solve", "latency"):
        hist = f"cluster.{tier}"
        row[f"{tier}_p50"] = cluster.percentile(hist, 50.0)
        row[f"{tier}_p95"] = cluster.percentile(hist, 95.0)
        row[f"{tier}_p99"] = cluster.percentile(hist, 99.0)
    for priority in PRIORITY_CLASSES:
        offered = cluster.metrics.count(f"cluster.offered.{priority}")
        shed_p = cluster.metrics.count(f"cluster.shed.{priority}")
        row[f"shed_rate_{priority}"] = shed_p / offered if offered else 0.0
    return row


def cluster_bench_payload(
    shard_counts: Sequence[int] = (1, 2, 4),
    num_requests: int = 400,
    pool_size: int = 128,
    num_workers: int = 2,
    router: str = "hash",
    mean_interarrival: float = 4e-5,
    seed: int = 0,
    with_slo: bool = True,
) -> Dict[str, Any]:
    """Run the S2 shard sweep and assemble the artifact payload.

    The stream is generated once (same seed) and replayed against every
    shard count, so the sweep compares identical offered load.  The
    default interarrival mean saturates a single group — that is the
    point: S2 measures what sharding buys when one pool is the
    bottleneck.
    """
    problems = s2_pool(pool_size, seed=seed)
    spec = TrafficSpec(
        num_requests=num_requests,
        mean_interarrival=mean_interarrival,
        seed=seed,
    )
    stream = heavy_tailed_stream(problems, spec)
    slo = S2_SLO if with_slo else None
    rows: List[Dict[str, Any]] = [
        run_cluster_point(
            shards,
            stream,
            num_workers=num_workers,
            router=router,
            slo=slo,
        )
        for shards in sorted(shard_counts)
    ]
    base = rows[0]
    peak = rows[-1]
    shard_ratio = peak["shards"] / base["shards"]
    speedup = (
        peak["throughput"] / base["throughput"] if base["throughput"] else 0.0
    )
    p99_ratio = (
        peak["latency_p99"] / base["latency_p99"] if base["latency_p99"] else 0.0
    )
    summary: Dict[str, Any] = {
        "base_shards": base["shards"],
        "peak_shards": peak["shards"],
        "shard_ratio": shard_ratio,
        "throughput_speedup": speedup,
        # Sub-linear p99 growth: scaling shards by R must not scale p99 by R.
        "p99_ratio": p99_ratio,
        "p99_sublinear": bool(p99_ratio < shard_ratio),
        "shed_monotone": bool(
            all(rows[i]["shed"] >= rows[i + 1]["shed"] for i in range(len(rows) - 1))
        ),
    }
    for priority in PRIORITY_CLASSES:
        summary[f"shed_rate_{priority}_base"] = base[f"shed_rate_{priority}"]
        summary[f"shed_rate_{priority}_peak"] = peak[f"shed_rate_{priority}"]
    return bench_payload(
        name="s2-cluster",
        rows=rows,
        params={
            "shard_counts": ",".join(str(s) for s in sorted(shard_counts)),
            "num_requests": num_requests,
            "pool_size": pool_size,
            "num_workers": num_workers,
            "router": router,
            "mean_interarrival": mean_interarrival,
            "pareto_alpha": spec.pareto_alpha,
            "zipf_s": spec.zipf_s,
            "seed": seed,
            "with_slo": with_slo,
            "slo_p95_target": S2_SLO.p95_target if with_slo else None,
            "slo_p99_target": S2_SLO.p99_target if with_slo else None,
        },
        summary=summary,
    )
