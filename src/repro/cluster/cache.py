"""Shared result-cache tier with per-shard replicas.

The single-pool service already dedups within its own shard
(:class:`repro.serve.cache.ResultCache`).  At cluster scale two new
cases appear: a request spilled to a non-owner shard (least-loaded
fallback), and a request re-routed after a group kill — both would
re-solve a problem some *other* shard already answered.  The cluster
cache tier closes that hole:

- the **owner tier** is one logical fingerprint → entry map (the
  "shared" cache a real deployment would back with a k/v store);
- each shard holds a bounded **replica** of the entries it has touched;
  a replica hit is a local host lookup, an owner-tier hit pays one
  simulated network round trip (:class:`repro.comm.network.NetworkSpec`)
  and then populates the shard's replica;
- **invalidation is fingerprint-keyed**: :meth:`invalidate` removes one
  fingerprint everywhere (owner + every replica), and
  :meth:`drop_replica` wipes a whole shard's replica when the group is
  killed or drained — a dead shard must never satisfy a later lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.comm.network import NetworkSpec, SHARED_MEMORY
from repro.errors import ServiceError
from repro.serve.cache import CACHE_LOOKUP_SECONDS, CacheEntry

#: Structural size estimate of one cached answer crossing the network
#: (status + objective + a small solution vector envelope).
ENTRY_WIRE_BYTES = 512


class ClusterCache:
    """Owner tier + per-shard LRU replicas, fingerprint invalidation."""

    def __init__(
        self,
        capacity: int = 4096,
        replica_capacity: int = 512,
        network: NetworkSpec = SHARED_MEMORY,
    ):
        if capacity < 0:
            raise ServiceError(f"cache capacity must be >= 0, got {capacity}")
        if replica_capacity < 0:
            raise ServiceError(
                f"replica capacity must be >= 0, got {replica_capacity}"
            )
        self.capacity = capacity
        self.replica_capacity = replica_capacity
        self.network = network
        self._owner: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._replicas: Dict[int, "OrderedDict[str, CacheEntry]"] = {}
        self.local_hits = 0
        self.remote_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.replica_drops = 0

    def __len__(self) -> int:
        return len(self._owner)

    def attach_shard(self, shard: int) -> None:
        """Create an empty replica for a (new) shard (idempotent)."""
        self._replicas.setdefault(shard, OrderedDict())

    def replica_len(self, shard: int) -> int:
        """Entries currently replicated at ``shard``."""
        return len(self._replicas.get(shard, ()))

    # -- lookup / insert ---------------------------------------------------------

    def lookup(
        self, fingerprint: str, shard: int
    ) -> Tuple[Optional[CacheEntry], float]:
        """Probe ``shard``'s replica, then the owner tier.

        Returns ``(entry, simulated seconds)``: a local replica hit
        costs one lookup; an owner-tier hit adds a request/response
        network round trip and replicates the entry locally; a miss
        costs the local probe only (the owner probe rides the solve
        dispatch the caller is about to do anyway).
        """
        replica = self._replicas.setdefault(shard, OrderedDict())
        entry = replica.get(fingerprint)
        if entry is not None:
            replica.move_to_end(fingerprint)
            self.local_hits += 1
            return entry, CACHE_LOOKUP_SECONDS
        entry = self._owner.get(fingerprint)
        if entry is not None:
            self._owner.move_to_end(fingerprint)
            self.remote_hits += 1
            cost = CACHE_LOOKUP_SECONDS + self.network.message_time(
                64
            ) + self.network.message_time(ENTRY_WIRE_BYTES)
            self._put(replica, fingerprint, entry, self.replica_capacity)
            return entry, cost
        self.misses += 1
        return None, CACHE_LOOKUP_SECONDS

    def insert(self, fingerprint: str, entry: CacheEntry, shard: int) -> None:
        """Write-through: owner tier plus the producing shard's replica."""
        if self.capacity == 0:
            return
        self._put(self._owner, fingerprint, entry, self.capacity)
        replica = self._replicas.setdefault(shard, OrderedDict())
        self._put(replica, fingerprint, entry, self.replica_capacity)

    @staticmethod
    def _put(
        store: "OrderedDict[str, CacheEntry]",
        key: str,
        entry: CacheEntry,
        capacity: int,
    ) -> None:
        if capacity == 0:
            return
        if key in store:
            store.move_to_end(key)
        store[key] = entry
        while len(store) > capacity:
            store.popitem(last=False)

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, fingerprint: str) -> int:
        """Remove one fingerprint from the owner tier and every replica.

        Returns how many stores held it (0 when it was unknown).
        """
        removed = 0
        if self._owner.pop(fingerprint, None) is not None:
            removed += 1
        for replica in self._replicas.values():
            if replica.pop(fingerprint, None) is not None:
                removed += 1
        if removed:
            self.invalidations += 1
        return removed

    def drop_replica(self, shard: int) -> int:
        """Wipe a shard's replica (group killed or drained).

        The owner tier keeps the entries — the *answers* are still
        valid; only the dead shard's local copies must go.  Returns the
        number of entries dropped.
        """
        replica = self._replicas.pop(shard, None)
        dropped = len(replica) if replica else 0
        if replica is not None:
            self.replica_drops += 1
        return dropped

    # -- introspection -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """(local + remote hits) / lookups, 0.0 before any lookup."""
        total = self.local_hits + self.remote_hits + self.misses
        return (self.local_hits + self.remote_hits) / total if total else 0.0

    def stats(self) -> Dict:
        return {
            "entries": len(self._owner),
            "local_hits": self.local_hits,
            "remote_hits": self.remote_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "replica_drops": self.replica_drops,
            "replicas": {
                shard: len(replica)
                for shard, replica in sorted(self._replicas.items())
            },
        }
