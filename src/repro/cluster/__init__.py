"""repro.cluster — sharded multi-group serving behind one front door.

The ROADMAP's horizontal-scaling layer: N independent
:class:`repro.serve.SolveService` worker pools (shards), a
consistent-hash / least-loaded router keyed on structure fingerprints,
a shared result-cache tier with per-shard replicas, SLO-aware admission
with priority classes, autoscaling, and the S2 cluster benchmark.
"""

from repro.cluster.admission import (
    PRIORITY_CLASSES,
    SLOAdmission,
    SLOPolicy,
    priority_rank,
)
from repro.cluster.bench import (
    S2_SLO,
    cluster_bench_payload,
    run_cluster_point,
    s2_pool,
)
from repro.cluster.cache import ClusterCache, ENTRY_WIRE_BYTES
from repro.cluster.router import (
    ConsistentHashRouter,
    HashRing,
    LeastLoadedRouter,
    VNODES,
    make_router,
    routing_key,
)
from repro.cluster.service import (
    AutoscalePolicy,
    ClusterService,
    request_wire_bytes,
)
from repro.cluster.traffic import (
    ClusterStreamItem,
    TrafficSpec,
    heavy_tailed_stream,
    replay_cluster,
)

__all__ = [
    "PRIORITY_CLASSES",
    "SLOAdmission",
    "SLOPolicy",
    "priority_rank",
    "S2_SLO",
    "cluster_bench_payload",
    "run_cluster_point",
    "s2_pool",
    "ClusterCache",
    "ENTRY_WIRE_BYTES",
    "ConsistentHashRouter",
    "HashRing",
    "LeastLoadedRouter",
    "VNODES",
    "make_router",
    "routing_key",
    "AutoscalePolicy",
    "ClusterService",
    "request_wire_bytes",
    "ClusterStreamItem",
    "TrafficSpec",
    "heavy_tailed_stream",
    "replay_cluster",
]
