"""Routing policies for the sharded cluster tier.

One front door, N independent :class:`repro.serve.SolveService` worker
groups: the router decides which group owns a request.  Two policies:

- **consistent hash** — a fixed-point hash ring over the live groups
  (``VNODES`` virtual nodes each) keyed by the request's *structure
  fingerprint* (:func:`repro.serve.parametric.structure_fingerprint`
  for LPs, the full content fingerprint for MIPs).  Structure-keyed
  placement means near-duplicate LPs — the ``serve.parametric``
  warm/range traffic — keep landing on the shard that holds the warm
  basis, and exact duplicates keep landing on the shard whose result
  cache already has the answer.  Group join/leave moves only the keys
  whose owning arc changed (~K/N of them), never reshuffles the rest;
- **least loaded** — pick the live group with the smallest load (queue
  depth + in-flight), deterministic ties on group id.  Used standalone
  (``router="least_loaded"``) or as the overflow fallback when the
  hash-designated owner is saturated or draining.

Both policies are pure functions of (key, live group set, load map), so
routing is deterministic and replayable — a property the hypothesis
suite in ``tests/cluster/test_router_properties.py`` pins down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.lp.problem import LinearProgram
from repro.serve.parametric import structure_fingerprint
from repro.serve.request import Problem, fingerprint

#: Virtual nodes per group on the hash ring.  More vnodes → tighter
#: balance (max/mean shard load) at the cost of a bigger ring; 64 keeps
#: max/mean comfortably under 2 for realistic key counts.
VNODES = 64


def routing_key(problem: Problem) -> str:
    """The string a router hashes to place ``problem``.

    LPs route on their *structure* fingerprint so perturbed
    near-duplicates (same constraint matrix, new rhs/objective) land on
    the shard holding the parametric warm state; MIPs route on the full
    content fingerprint (there is no parametric MIP path to preserve).
    """
    if isinstance(problem, LinearProgram):
        return structure_fingerprint(problem)
    return fingerprint(problem)


def _ring_position(token: str) -> int:
    """Stable 64-bit position of a token on the ring."""
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over integer group ids.

    Each group contributes :data:`VNODES` points at positions derived
    only from ``(group id, vnode index)`` — independent of join order —
    so the same live set always produces the identical ring, and a
    join/leave perturbs only the arcs adjacent to the touched points.
    """

    def __init__(self, groups: Optional[List[int]] = None, vnodes: int = VNODES):
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, int] = {}
        for gid in groups or []:
            self.join(gid)

    def __len__(self) -> int:
        return len(set(self._owners.values()))

    @property
    def groups(self) -> List[int]:
        """Live group ids, sorted."""
        return sorted(set(self._owners.values()))

    def join(self, gid: int) -> None:
        """Add a group's virtual nodes to the ring (idempotent)."""
        for v in range(self.vnodes):
            pos = _ring_position(f"group:{gid}:vnode:{v}")
            if pos in self._owners:
                # A 64-bit collision between distinct groups is ~2^-32
                # per pair; deterministic tie-break keeps replays stable.
                if self._owners[pos] <= gid:
                    continue
            else:
                bisect.insort(self._points, pos)
            self._owners[pos] = gid

    def leave(self, gid: int) -> None:
        """Remove a group's virtual nodes (idempotent)."""
        dead = [pos for pos, owner in self._owners.items() if owner == gid]
        for pos in dead:
            del self._owners[pos]
            idx = bisect.bisect_left(self._points, pos)
            if idx < len(self._points) and self._points[idx] == pos:
                del self._points[idx]

    def owner(self, key: str) -> int:
        """The group owning ``key``: first ring point clockwise of it."""
        if not self._points:
            raise ServiceError("hash ring is empty: no live groups")
        pos = _ring_position(f"key:{key}")
        idx = bisect.bisect_right(self._points, pos)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]


class ConsistentHashRouter:
    """Structure-fingerprint consistent hashing with saturation spill.

    ``route`` returns the hash-designated owner unless ``overloaded``
    says that group cannot take the request, in which case it falls
    back to the least-loaded live group (the CHAP-style host tier keeps
    shards saturated instead of queueing behind one hot shard).
    """

    name = "hash"

    def __init__(self, vnodes: int = VNODES):
        self.ring = HashRing(vnodes=vnodes)
        self.spills = 0

    @property
    def groups(self) -> List[int]:
        return self.ring.groups

    def join(self, gid: int) -> None:
        self.ring.join(gid)

    def leave(self, gid: int) -> None:
        self.ring.leave(gid)

    def route(
        self,
        key: str,
        load: Callable[[int], float],
        overloaded: Optional[Callable[[int], bool]] = None,
    ) -> int:
        owner = self.ring.owner(key)
        if overloaded is not None and overloaded(owner):
            candidates = [
                g for g in self.ring.groups if not overloaded(g)
            ] or self.ring.groups
            target = min(candidates, key=lambda g: (load(g), g))
            if target != owner:
                self.spills += 1
            return target
        return owner


class LeastLoadedRouter:
    """Pure least-loaded placement (no locality, perfect spread)."""

    name = "least_loaded"

    def __init__(self):
        self._groups: List[int] = []

    @property
    def groups(self) -> List[int]:
        return sorted(self._groups)

    def join(self, gid: int) -> None:
        if gid not in self._groups:
            self._groups.append(gid)

    def leave(self, gid: int) -> None:
        if gid in self._groups:
            self._groups.remove(gid)

    def route(
        self,
        key: str,
        load: Callable[[int], float],
        overloaded: Optional[Callable[[int], bool]] = None,
    ) -> int:
        if not self._groups:
            raise ServiceError("least-loaded router has no live groups")
        candidates = self.groups
        if overloaded is not None:
            open_groups = [g for g in candidates if not overloaded(g)]
            if open_groups:
                candidates = open_groups
        return min(candidates, key=lambda g: (load(g), g))


def make_router(policy: str):
    """Router factory: ``"hash"`` or ``"least_loaded"``."""
    if policy == "hash":
        return ConsistentHashRouter()
    if policy == "least_loaded":
        return LeastLoadedRouter()
    raise ServiceError(
        f"unknown routing policy {policy!r}; choose 'hash' or 'least_loaded'"
    )
