"""Differential testing: one instance, every applicable solver pair.

Two independent implementations rarely share a bug; running the same
instance through primal simplex, a dual-simplex re-solve, the interior
point method, the lockstep batched simplex, two branch-and-bound
configurations with different search orders, and all four metered
strategy engines gives the strongest cheap oracle available without an
external reference solver (the CHAP / batched-LP validation pattern).

Runs that end in an inconclusive status (iteration limits) are recorded
but never flagged — only *contradictory terminal answers* count as a
disagreement: OPTIMAL objectives apart beyond tolerance, or one solver
proving a status another solver's certificate-grade answer excludes.

The serving stack has its own lane: :func:`differential_cluster` replays
one request stream through a plain :class:`repro.serve.SolveService` and
a one-shard :class:`repro.cluster.ClusterService` over a zero-cost
network hop, and demands bitwise-equal ``report_dict`` responses modulo
``trace_id`` — the whole routing/cache/admission tier must be
observationally invisible at N=1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import LPError, ReproError, SolverDisagreement
from repro.lp.batch_simplex import lockstep_compatible, solve_lp_batch
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.interior_point import IPMOptions, interior_point_solve
from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.lp.warm import state_from_result, warm_resolve
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.strategies.runner import STRATEGIES, run_strategy

#: Relative objective tolerance for declaring two solvers in agreement.
DIFFERENTIAL_RTOL = 1e-6

#: KKT tolerance for the PDHG run in :func:`differential_lp`.  The
#: tolerance policy: PDHG is an *inexact* solver, so its eps must sit
#: well inside ``DIFFERENTIAL_RTOL`` — at 1e-8 vs 1e-6 an eps-accurate
#: objective can never trip the comparison, so any flagged disagreement
#: is a genuine solver contradiction, not accumulated first-order slack.
PDHG_DIFFERENTIAL_EPS = 1e-8

#: Statuses that carry a terminal claim (disagreements are meaningful).
_TERMINAL_LP = {LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED}
_TERMINAL_MIP = {MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED}


@dataclass
class SolverRun:
    """One solver's answer on the shared instance."""

    name: str
    status: str
    objective: float
    #: False when the run ended inconclusively (iteration/node limit).
    conclusive: bool = True
    note: str = ""


@dataclass
class Disagreement:
    """A contradictory pair of terminal answers."""

    left: str
    right: str
    kind: str  # "status" or "objective"
    left_value: str
    right_value: str
    delta: float = 0.0


@dataclass
class DifferentialReport:
    """All runs plus every pairwise contradiction found."""

    problem_name: str
    runs: List[SolverRun] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no pair of solvers contradicted each other."""
        return not self.disagreements

    def raise_for_failures(self) -> None:
        """Raise :class:`SolverDisagreement` for the first contradiction."""
        for d in self.disagreements:
            raise SolverDisagreement(d.left, d.right, d.kind, d.delta)

    def _compare_pairs(self, rtol: float) -> None:
        """Populate ``disagreements`` from all conclusive run pairs."""
        conclusive = [r for r in self.runs if r.conclusive]
        for i, left in enumerate(conclusive):
            for right in conclusive[i + 1 :]:
                if left.status != right.status:
                    self.disagreements.append(
                        Disagreement(
                            left=left.name,
                            right=right.name,
                            kind="status",
                            left_value=left.status,
                            right_value=right.status,
                        )
                    )
                    continue
                if left.status != "optimal":
                    continue
                scale = 1.0 + max(abs(left.objective), abs(right.objective))
                delta = abs(left.objective - right.objective)
                if delta > rtol * scale:
                    self.disagreements.append(
                        Disagreement(
                            left=left.name,
                            right=right.name,
                            kind="objective",
                            left_value=f"{left.objective:.12g}",
                            right_value=f"{right.objective:.12g}",
                            delta=delta,
                        )
                    )


def differential_lp(
    lp: LinearProgram,
    rtol: float = DIFFERENTIAL_RTOL,
    include_ipm: bool = True,
    include_batch: bool = True,
    include_pdhg: bool = True,
) -> DifferentialReport:
    """Run one LP through every applicable solver pair.

    Pairs: cold primal simplex vs. a dual-simplex re-solve from the
    optimal basis, vs. Mehrotra interior point (iteration-limit results
    are inconclusive, not disagreements), vs. restarted PDHG solved to
    ``PDHG_DIFFERENTIAL_EPS`` — an accuracy two decades inside ``rtol``,
    so first-order slack cannot masquerade as a disagreement; like the
    IPM, only its terminal statuses carry a claim — vs. the lockstep
    batched simplex (when the instance meets its preconditions, solved
    as a batch of two so the batch must also agree with itself).
    """
    report = DifferentialReport(problem_name=getattr(lp, "name", "lp"))

    primal = solve_lp(lp)
    report.runs.append(
        SolverRun(
            name="simplex",
            status=primal.status.value,
            objective=primal.objective,
            conclusive=primal.status in _TERMINAL_LP,
        )
    )

    if primal.status is LPStatus.OPTIMAL and primal.basis is not None:
        sf = lp.to_standard_form()
        try:
            dual = dual_simplex_resolve(sf, primal.basis.copy())
            report.runs.append(
                SolverRun(
                    name="dual_simplex",
                    status=dual.status.value,
                    objective=dual.objective,
                    conclusive=dual.status in _TERMINAL_LP,
                    note="re-solved from the primal-optimal basis",
                )
            )
        except LPError as exc:
            report.runs.append(
                SolverRun(
                    name="dual_simplex",
                    status="error",
                    objective=float("nan"),
                    conclusive=False,
                    note=str(exc),
                )
            )

    if include_ipm:
        ipm = interior_point_solve(lp.to_standard_form(), IPMOptions())
        report.runs.append(
            SolverRun(
                name="interior_point",
                status=ipm.status.value,
                objective=ipm.objective,
                # The IPM documents ITERATION_LIMIT on degenerate or
                # unbounded instances; only OPTIMAL carries a claim.
                conclusive=ipm.status is LPStatus.OPTIMAL,
            )
        )

    if include_pdhg:
        pdhg = solve_lp_pdhg(lp, PDHGOptions(tolerance=PDHG_DIFFERENTIAL_EPS))
        report.runs.append(
            SolverRun(
                name="pdhg",
                status=pdhg.status.value,
                objective=pdhg.objective,
                # ITERATION_LIMIT is the documented slow-convergence
                # outcome; OPTIMAL and the two-consecutive-check Farkas
                # ray statuses are terminal claims.
                conclusive=pdhg.status in _TERMINAL_LP,
                note=f"eps={PDHG_DIFFERENTIAL_EPS:g}, {pdhg.iterations} iterations",
            )
        )

    if include_batch and lockstep_compatible(lp):
        try:
            batch = solve_lp_batch([lp, lp])
        except (LPError, ReproError) as exc:
            report.runs.append(
                SolverRun(
                    name="batch_simplex",
                    status="error",
                    objective=float("nan"),
                    conclusive=False,
                    note=str(exc),
                )
            )
        else:
            for t in range(2):
                report.runs.append(
                    SolverRun(
                        name=f"batch_simplex[{t}]",
                        status=batch.statuses[t].value,
                        objective=float(batch.objectives[t]),
                        conclusive=batch.statuses[t] in _TERMINAL_LP,
                    )
                )

    report._compare_pairs(rtol)
    return report


def differential_cluster(
    stream: Sequence,
    num_workers: int = 2,
    policy=None,
) -> DifferentialReport:
    """Cluster-equivalence lane: a 1-shard cluster *is* the service.

    Replays ``stream`` — ``(arrival_time, problem)`` pairs with
    non-decreasing arrivals — through a plain
    :class:`repro.serve.SolveService` and a one-group
    :class:`repro.cluster.ClusterService` over the zero-cost network
    (``repro.comm.network.ZERO_COST``), in the same submission order.
    With one shard there is nothing to route, spill, shed, or replicate,
    so every response — cache hits, coalesced duplicates, parametric
    warm answers included — must come back **bitwise equal** as a
    ``report_dict``, modulo ``trace_id`` (the cluster stamps its own).
    Any field drift is a ``kind="response"`` disagreement: the front
    door changed an answer it was only supposed to forward.
    """
    from repro.cluster.service import ClusterService
    from repro.comm.network import ZERO_COST
    from repro.serve.batching import BatchingPolicy
    from repro.serve.service import SolveService

    policy = policy if policy is not None else BatchingPolicy()
    single = SolveService(policy=policy, num_workers=num_workers)
    cluster = ClusterService(
        groups=1, policy=policy, num_workers=num_workers, network=ZERO_COST
    )
    for at, problem in stream:
        single.submit(problem, at=at)
        cluster.submit(problem, at=at)
    left = single.close()
    right = cluster.close()

    report = DifferentialReport(problem_name=f"cluster-vs-serve[{len(left)}]")

    def summarize(name: str, responses) -> None:
        ok = sum(1 for r in responses if r.ok)
        total = sum(r.objective for r in responses if r.objective is not None)
        report.runs.append(
            SolverRun(
                name=name,
                status="stream",
                objective=float(total),
                conclusive=False,
                note=f"{len(responses)} responses, {ok} ok",
            )
        )

    summarize("serve", left)
    summarize("cluster", right)

    if len(left) != len(right):
        report.disagreements.append(
            Disagreement(
                left="serve",
                right="cluster",
                kind="count",
                left_value=str(len(left)),
                right_value=str(len(right)),
                delta=float(abs(len(left) - len(right))),
            )
        )
        return report

    for l_resp, r_resp in zip(left, right):
        dl = l_resp.to_dict()
        dr = r_resp.to_dict()
        dl.pop("trace_id", None)
        dr.pop("trace_id", None)
        if dl == dr:
            continue
        fields = [k for k in sorted(set(dl) | set(dr)) if dl.get(k) != dr.get(k)]
        report.disagreements.append(
            Disagreement(
                left=f"serve[{l_resp.request_id}]",
                right=f"cluster[{r_resp.request_id}]",
                kind="response",
                left_value=repr({k: dl.get(k) for k in fields})[:400],
                right_value=repr({k: dr.get(k) for k in fields})[:400],
            )
        )
    return report


#: Branch-and-bound configurations with genuinely different search paths:
#: (name, node_selection, branching, cut_rounds, node_lp, warm_start).
_MIP_CONFIGS = (
    ("bb/best_first+pseudocost", "best_first", "pseudocost", 0, "simplex", True),
    (
        "bb/depth_first+most_fractional",
        "depth_first",
        "most_fractional",
        0,
        "simplex",
        True,
    ),
    ("bb/best_first+cuts", "best_first", "pseudocost", 2, "simplex", True),
    # Node relaxations by restarted PDHG with padded bounds — a wholly
    # different LP algorithm must still land on the same MIP optimum.
    ("bb/pdhg_nodes", "best_first", "pseudocost", 0, "pdhg", True),
    # Every node LP from scratch — the warm-start reuse path (parent
    # basis + resident factorization) must change pivot counts only,
    # never the optimum.
    ("bb/cold_nodes", "best_first", "pseudocost", 0, "simplex", False),
)


def differential_mip(
    problem: MIPProblem,
    rtol: float = DIFFERENTIAL_RTOL,
    node_limit: int = 50_000,
    strategies: Optional[Sequence[str]] = None,
) -> DifferentialReport:
    """Run one MIP through every applicable solver configuration.

    Covers the plain branch-and-bound under different node-selection /
    branching / cut settings (different search trees must meet at the
    same optimum) and the four metered ``strategies/`` engines (pass
    ``strategies=()`` to skip them for speed).
    """
    report = DifferentialReport(problem_name=problem.name)

    for name, selection, branching, cut_rounds, node_lp, warm_start in _MIP_CONFIGS:
        options = SolverOptions(
            node_selection=selection,
            branching=branching,
            cut_rounds=cut_rounds,
            node_limit=node_limit,
            node_lp=node_lp,
            warm_start=warm_start,
        )
        result = BranchAndBoundSolver(problem, options).solve()
        report.runs.append(
            SolverRun(
                name=name,
                status=result.status.value,
                objective=result.objective,
                conclusive=result.status in _TERMINAL_MIP,
            )
        )

    if strategies is None:
        strategies = sorted(STRATEGIES)
    for strategy in strategies:
        strategy_report = run_strategy(
            problem, strategy, SolverOptions(node_limit=node_limit)
        )
        result = strategy_report.result
        report.runs.append(
            SolverRun(
                name=f"strategy/{strategy}",
                status=result.status.value,
                objective=result.objective,
                conclusive=result.status in _TERMINAL_MIP,
            )
        )

    report._compare_pairs(rtol)
    return report


def _compare_warm_pair(
    report: DifferentialReport,
    cold: SolverRun,
    warm: SolverRun,
    rtol: float,
) -> None:
    """Flag one cold/warm pair (same instance) that contradicts itself.

    The warm lane compares *per instance*, not all-pairs: each perturbed
    problem has its own optimum, so only its own cold/warm runs may be
    held against each other.
    """
    if not (cold.conclusive and warm.conclusive):
        return
    if cold.status != warm.status:
        report.disagreements.append(
            Disagreement(
                left=cold.name,
                right=warm.name,
                kind="status",
                left_value=cold.status,
                right_value=warm.status,
            )
        )
        return
    if cold.status != "optimal":
        return
    scale = 1.0 + max(abs(cold.objective), abs(warm.objective))
    delta = abs(cold.objective - warm.objective)
    if delta > rtol * scale:
        report.disagreements.append(
            Disagreement(
                left=cold.name,
                right=warm.name,
                kind="objective",
                left_value=f"{cold.objective:.12g}",
                right_value=f"{warm.objective:.12g}",
                delta=delta,
            )
        )


def _finite_lp_data(lp: LinearProgram) -> bool:
    """True when every coefficient is finite (bounds may be ±inf)."""
    for arr in (lp.c, lp.a_ub, lp.b_ub, lp.a_eq, lp.b_eq):
        if arr is not None and not np.all(np.isfinite(arr)):
            return False
    for arr in (lp.lb, lp.ub):
        if arr is not None and np.any(np.isnan(arr)):
            return False
    return True


def differential_warm_lp(
    lp: LinearProgram,
    rtol: float = DIFFERENTIAL_RTOL,
    perturbations: int = 3,
    seed: int = 0,
    rel_scale: float = 0.05,
) -> DifferentialReport:
    """Warm-vs-cold lane: re-solves from a stale basis must agree cold.

    Solves ``lp`` cold, captures its optimal basis as warm state, then
    for the instance itself and ``perturbations`` random rhs/objective
    perturbations (the §5.3 reuse regime: same constraint matrix,
    moved data) compares a cold solve against a warm dual-simplex
    re-solve from that *original* basis.  Each perturbed instance is
    compared only against its own pair — different perturbations have
    different optima.  An OPTIMAL warm answer that fails the
    from-scratch KKT audit is itself a disagreement (``kind="audit"``):
    in production the cold fallback would mask it, here it must surface.
    """
    report = DifferentialReport(
        problem_name=f"{getattr(lp, 'name', 'lp')}/warm"
    )
    if not _finite_lp_data(lp):
        # NaN/Inf coefficients are the sanitize layer's to reject; an
        # unguarded solve of them returns garbage on *both* lanes, so
        # there is no warm-vs-cold claim to test.
        report.runs.append(
            SolverRun(
                name="skipped",
                status="rejected",
                objective=float("nan"),
                conclusive=False,
                note="non-finite input data; repro.guard.sanitize owns this",
            )
        )
        return report
    cold0 = solve_lp(lp)
    run0 = SolverRun(
        name="cold[base]",
        status=cold0.status.value,
        objective=cold0.objective,
        conclusive=cold0.status in _TERMINAL_LP,
    )
    report.runs.append(run0)
    if cold0.status is not LPStatus.OPTIMAL or cold0.basis is None:
        return report
    sf0 = lp.to_standard_form()
    state = state_from_result(sf0, cold0)

    def check_pair(tag: str, instance: LinearProgram, cold_run: SolverRun) -> None:
        sf = instance.to_standard_form()
        warm_name = f"warm[{tag}]"
        if sf.a.shape != sf0.a.shape:
            report.runs.append(
                SolverRun(
                    name=warm_name,
                    status="skipped",
                    objective=float("nan"),
                    conclusive=False,
                    note="structure changed; warm state not applicable",
                )
            )
            return
        outcome = warm_resolve(sf, state)
        if outcome is None:
            report.runs.append(
                SolverRun(
                    name=warm_name,
                    status="unusable",
                    objective=float("nan"),
                    conclusive=False,
                    note="warm state could not seed the re-solve",
                )
            )
            return
        if outcome.audit_failed:
            report.runs.append(
                SolverRun(
                    name=warm_name,
                    status="audit_failed",
                    objective=outcome.result.objective,
                    conclusive=False,
                    note="OPTIMAL answer failed the from-scratch KKT audit",
                )
            )
            report.disagreements.append(
                Disagreement(
                    left=cold_run.name,
                    right=warm_name,
                    kind="audit",
                    left_value=cold_run.status,
                    right_value="audit_failed",
                )
            )
            return
        res = outcome.result
        warm_run = SolverRun(
            name=warm_name,
            status=res.status.value,
            objective=res.objective,
            conclusive=res.status in _TERMINAL_LP,
            note="reused factors" if outcome.reused_factors else "",
        )
        report.runs.append(warm_run)
        _compare_warm_pair(report, cold_run, warm_run, rtol)

    check_pair("base", lp, run0)

    rng = np.random.default_rng(seed)
    for i in range(perturbations):
        b_ub = None if lp.b_ub is None else np.array(lp.b_ub, dtype=np.float64)
        b_eq = None if lp.b_eq is None else np.array(lp.b_eq, dtype=np.float64)
        c = np.array(lp.c, dtype=np.float64)
        if i % 2 == 0:
            # rhs move: additive noise scaled to each row's magnitude.
            if b_ub is not None:
                b_ub += rel_scale * rng.uniform(-1, 1, b_ub.shape) * (
                    1.0 + np.abs(b_ub)
                )
            if b_eq is not None:
                b_eq += rel_scale * rng.uniform(-1, 1, b_eq.shape) * (
                    1.0 + np.abs(b_eq)
                )
        else:
            # objective move: the dual-feasibility side of the reuse.
            c += rel_scale * rng.uniform(-1, 1, c.shape) * (1.0 + np.abs(c))
        perturbed = LinearProgram(
            c=c,
            a_ub=lp.a_ub,
            b_ub=b_ub,
            a_eq=lp.a_eq,
            b_eq=b_eq,
            lb=lp.lb,
            ub=lp.ub,
        )
        cold_i = solve_lp(perturbed)
        cold_run = SolverRun(
            name=f"cold[{i}]",
            status=cold_i.status.value,
            objective=cold_i.objective,
            conclusive=cold_i.status in _TERMINAL_LP,
        )
        report.runs.append(cold_run)
        check_pair(str(i), perturbed, cold_run)
    return report


def differential_warm_mip(
    problem: MIPProblem,
    rtol: float = DIFFERENTIAL_RTOL,
    node_limit: int = 50_000,
) -> DifferentialReport:
    """Warm-vs-cold branch and bound, plus warm-run determinism.

    Three runs of the same configuration: warm starts on (twice) and
    off.  Warm vs cold must agree on status and objective (the reuse
    path may only change pivot counts); the two warm runs must be *bit
    identical* in incumbent objective, dual bound, and node count —
    warm-start state is keyed by node id and must not introduce any
    run-to-run nondeterminism (``kind="determinism"``).
    """
    report = DifferentialReport(problem_name=f"{problem.name}/warm")

    def run(name: str, warm_start: bool):
        options = SolverOptions(node_limit=node_limit, warm_start=warm_start)
        result = BranchAndBoundSolver(problem, options).solve()
        sr = SolverRun(
            name=name,
            status=result.status.value,
            objective=result.objective,
            conclusive=result.status in _TERMINAL_MIP,
            note=(
                f"{result.stats.nodes_processed} nodes, "
                f"bound {result.best_bound:.12g}"
            ),
        )
        report.runs.append(sr)
        return result, sr

    warm1, warm1_run = run("bb/warm", True)
    warm2, _ = run("bb/warm#2", True)
    cold, cold_run = run("bb/cold", False)

    if (
        warm1.status is not warm2.status
        or repr(warm1.objective) != repr(warm2.objective)
        or repr(warm1.best_bound) != repr(warm2.best_bound)
        or warm1.stats.nodes_processed != warm2.stats.nodes_processed
    ):
        report.disagreements.append(
            Disagreement(
                left="bb/warm",
                right="bb/warm#2",
                kind="determinism",
                left_value=(
                    f"{warm1.status.value}/{warm1.objective!r}/"
                    f"{warm1.best_bound!r}/{warm1.stats.nodes_processed}"
                ),
                right_value=(
                    f"{warm2.status.value}/{warm2.objective!r}/"
                    f"{warm2.best_bound!r}/{warm2.stats.nodes_processed}"
                ),
            )
        )
    _compare_warm_pair(report, cold_run, warm1_run, rtol)
    return report
