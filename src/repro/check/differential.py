"""Differential testing: one instance, every applicable solver pair.

Two independent implementations rarely share a bug; running the same
instance through primal simplex, a dual-simplex re-solve, the interior
point method, the lockstep batched simplex, two branch-and-bound
configurations with different search orders, and all four metered
strategy engines gives the strongest cheap oracle available without an
external reference solver (the CHAP / batched-LP validation pattern).

Runs that end in an inconclusive status (iteration limits) are recorded
but never flagged — only *contradictory terminal answers* count as a
disagreement: OPTIMAL objectives apart beyond tolerance, or one solver
proving a status another solver's certificate-grade answer excludes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import LPError, ReproError, SolverDisagreement
from repro.lp.batch_simplex import lockstep_compatible, solve_lp_batch
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.interior_point import IPMOptions, interior_point_solve
from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.strategies.runner import STRATEGIES, run_strategy

#: Relative objective tolerance for declaring two solvers in agreement.
DIFFERENTIAL_RTOL = 1e-6

#: KKT tolerance for the PDHG run in :func:`differential_lp`.  The
#: tolerance policy: PDHG is an *inexact* solver, so its eps must sit
#: well inside ``DIFFERENTIAL_RTOL`` — at 1e-8 vs 1e-6 an eps-accurate
#: objective can never trip the comparison, so any flagged disagreement
#: is a genuine solver contradiction, not accumulated first-order slack.
PDHG_DIFFERENTIAL_EPS = 1e-8

#: Statuses that carry a terminal claim (disagreements are meaningful).
_TERMINAL_LP = {LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED}
_TERMINAL_MIP = {MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED}


@dataclass
class SolverRun:
    """One solver's answer on the shared instance."""

    name: str
    status: str
    objective: float
    #: False when the run ended inconclusively (iteration/node limit).
    conclusive: bool = True
    note: str = ""


@dataclass
class Disagreement:
    """A contradictory pair of terminal answers."""

    left: str
    right: str
    kind: str  # "status" or "objective"
    left_value: str
    right_value: str
    delta: float = 0.0


@dataclass
class DifferentialReport:
    """All runs plus every pairwise contradiction found."""

    problem_name: str
    runs: List[SolverRun] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no pair of solvers contradicted each other."""
        return not self.disagreements

    def raise_for_failures(self) -> None:
        """Raise :class:`SolverDisagreement` for the first contradiction."""
        for d in self.disagreements:
            raise SolverDisagreement(d.left, d.right, d.kind, d.delta)

    def _compare_pairs(self, rtol: float) -> None:
        """Populate ``disagreements`` from all conclusive run pairs."""
        conclusive = [r for r in self.runs if r.conclusive]
        for i, left in enumerate(conclusive):
            for right in conclusive[i + 1 :]:
                if left.status != right.status:
                    self.disagreements.append(
                        Disagreement(
                            left=left.name,
                            right=right.name,
                            kind="status",
                            left_value=left.status,
                            right_value=right.status,
                        )
                    )
                    continue
                if left.status != "optimal":
                    continue
                scale = 1.0 + max(abs(left.objective), abs(right.objective))
                delta = abs(left.objective - right.objective)
                if delta > rtol * scale:
                    self.disagreements.append(
                        Disagreement(
                            left=left.name,
                            right=right.name,
                            kind="objective",
                            left_value=f"{left.objective:.12g}",
                            right_value=f"{right.objective:.12g}",
                            delta=delta,
                        )
                    )


def differential_lp(
    lp: LinearProgram,
    rtol: float = DIFFERENTIAL_RTOL,
    include_ipm: bool = True,
    include_batch: bool = True,
    include_pdhg: bool = True,
) -> DifferentialReport:
    """Run one LP through every applicable solver pair.

    Pairs: cold primal simplex vs. a dual-simplex re-solve from the
    optimal basis, vs. Mehrotra interior point (iteration-limit results
    are inconclusive, not disagreements), vs. restarted PDHG solved to
    ``PDHG_DIFFERENTIAL_EPS`` — an accuracy two decades inside ``rtol``,
    so first-order slack cannot masquerade as a disagreement; like the
    IPM, only its terminal statuses carry a claim — vs. the lockstep
    batched simplex (when the instance meets its preconditions, solved
    as a batch of two so the batch must also agree with itself).
    """
    report = DifferentialReport(problem_name=getattr(lp, "name", "lp"))

    primal = solve_lp(lp)
    report.runs.append(
        SolverRun(
            name="simplex",
            status=primal.status.value,
            objective=primal.objective,
            conclusive=primal.status in _TERMINAL_LP,
        )
    )

    if primal.status is LPStatus.OPTIMAL and primal.basis is not None:
        sf = lp.to_standard_form()
        try:
            dual = dual_simplex_resolve(sf, primal.basis.copy())
            report.runs.append(
                SolverRun(
                    name="dual_simplex",
                    status=dual.status.value,
                    objective=dual.objective,
                    conclusive=dual.status in _TERMINAL_LP,
                    note="re-solved from the primal-optimal basis",
                )
            )
        except LPError as exc:
            report.runs.append(
                SolverRun(
                    name="dual_simplex",
                    status="error",
                    objective=float("nan"),
                    conclusive=False,
                    note=str(exc),
                )
            )

    if include_ipm:
        ipm = interior_point_solve(lp.to_standard_form(), IPMOptions())
        report.runs.append(
            SolverRun(
                name="interior_point",
                status=ipm.status.value,
                objective=ipm.objective,
                # The IPM documents ITERATION_LIMIT on degenerate or
                # unbounded instances; only OPTIMAL carries a claim.
                conclusive=ipm.status is LPStatus.OPTIMAL,
            )
        )

    if include_pdhg:
        pdhg = solve_lp_pdhg(lp, PDHGOptions(tolerance=PDHG_DIFFERENTIAL_EPS))
        report.runs.append(
            SolverRun(
                name="pdhg",
                status=pdhg.status.value,
                objective=pdhg.objective,
                # ITERATION_LIMIT is the documented slow-convergence
                # outcome; OPTIMAL and the two-consecutive-check Farkas
                # ray statuses are terminal claims.
                conclusive=pdhg.status in _TERMINAL_LP,
                note=f"eps={PDHG_DIFFERENTIAL_EPS:g}, {pdhg.iterations} iterations",
            )
        )

    if include_batch and lockstep_compatible(lp):
        try:
            batch = solve_lp_batch([lp, lp])
        except (LPError, ReproError) as exc:
            report.runs.append(
                SolverRun(
                    name="batch_simplex",
                    status="error",
                    objective=float("nan"),
                    conclusive=False,
                    note=str(exc),
                )
            )
        else:
            for t in range(2):
                report.runs.append(
                    SolverRun(
                        name=f"batch_simplex[{t}]",
                        status=batch.statuses[t].value,
                        objective=float(batch.objectives[t]),
                        conclusive=batch.statuses[t] in _TERMINAL_LP,
                    )
                )

    report._compare_pairs(rtol)
    return report


#: Branch-and-bound configurations with genuinely different search paths:
#: (name, node_selection, branching, cut_rounds, node_lp).
_MIP_CONFIGS = (
    ("bb/best_first+pseudocost", "best_first", "pseudocost", 0, "simplex"),
    ("bb/depth_first+most_fractional", "depth_first", "most_fractional", 0, "simplex"),
    ("bb/best_first+cuts", "best_first", "pseudocost", 2, "simplex"),
    # Node relaxations by restarted PDHG with padded bounds — a wholly
    # different LP algorithm must still land on the same MIP optimum.
    ("bb/pdhg_nodes", "best_first", "pseudocost", 0, "pdhg"),
)


def differential_mip(
    problem: MIPProblem,
    rtol: float = DIFFERENTIAL_RTOL,
    node_limit: int = 50_000,
    strategies: Optional[Sequence[str]] = None,
) -> DifferentialReport:
    """Run one MIP through every applicable solver configuration.

    Covers the plain branch-and-bound under different node-selection /
    branching / cut settings (different search trees must meet at the
    same optimum) and the four metered ``strategies/`` engines (pass
    ``strategies=()`` to skip them for speed).
    """
    report = DifferentialReport(problem_name=problem.name)

    for name, selection, branching, cut_rounds, node_lp in _MIP_CONFIGS:
        options = SolverOptions(
            node_selection=selection,
            branching=branching,
            cut_rounds=cut_rounds,
            node_limit=node_limit,
            node_lp=node_lp,
        )
        result = BranchAndBoundSolver(problem, options).solve()
        report.runs.append(
            SolverRun(
                name=name,
                status=result.status.value,
                objective=result.objective,
                conclusive=result.status in _TERMINAL_MIP,
            )
        )

    if strategies is None:
        strategies = sorted(STRATEGIES)
    for strategy in strategies:
        strategy_report = run_strategy(
            problem, strategy, SolverOptions(node_limit=node_limit)
        )
        result = strategy_report.result
        report.runs.append(
            SolverRun(
                name=f"strategy/{strategy}",
                status=result.status.value,
                objective=result.objective,
                conclusive=result.status in _TERMINAL_MIP,
            )
        )

    report._compare_pairs(rtol)
    return report
