"""Property-preserving instance transforms with known optimum effects.

Each transform maps a :class:`MIPProblem` to a new problem whose optimum
is an *exactly known* affine function of the original optimum
(``expected = scale · z* + offset``):

- variable / row permutation — unchanged;
- positive row scaling by powers of two — unchanged (power-of-two
  factors are exact in binary floating point, so the transformed
  instance is bit-for-bit equivalent row-wise);
- positive objective scaling by a power of two — scaled;
- objective negation with sense flip, realized by reflecting every
  variable inside its (finite) bound box: ``x → lb + ub − x`` negates
  every coefficient of ``c`` and ``A`` while keeping the same box, and
  shifts the optimum by exactly ``−cᵀ(lb + ub)``;
- fixing one variable at its optimal value — unchanged (the optimal
  point stays feasible, and a restriction cannot improve a maximum).

A solver that disagrees with the expected optimum on any variant has a
bug on the original instance, the variant, or both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import MetamorphicViolation
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus

#: Exact positive scale factors (all powers of two).
_POW2_SCALES = (0.25, 0.5, 2.0, 4.0, 8.0)

#: Relative tolerance when comparing a variant's optimum to expectation.
METAMORPHIC_RTOL = 1e-6


def _clone_arrays(problem: MIPProblem):
    return dict(
        c=problem.c.copy(),
        integer=problem.integer.copy(),
        a_ub=None if problem.a_ub is None else problem.a_ub.copy(),
        b_ub=None if problem.b_ub is None else problem.b_ub.copy(),
        a_eq=None if problem.a_eq is None else problem.a_eq.copy(),
        b_eq=None if problem.b_eq is None else problem.b_eq.copy(),
        lb=problem.lb.copy(),
        ub=problem.ub.copy(),
    )


@dataclass
class MetamorphicVariant:
    """A transformed instance and its expected-optimum relation."""

    name: str
    problem: MIPProblem
    #: Expected optimum of the variant = ``scale * z_original + offset``.
    scale: float = 1.0
    offset: float = 0.0

    def expected(self, base_objective: float) -> float:
        """Expected optimum of the variant given the original optimum."""
        return self.scale * base_objective + self.offset


def permute_variables(problem: MIPProblem, rng: np.random.Generator) -> MetamorphicVariant:
    """Relabel the variables; the optimum is unchanged."""
    perm = rng.permutation(problem.n)
    data = _clone_arrays(problem)
    for key in ("c", "integer", "lb", "ub"):
        data[key] = data[key][perm]
    for key in ("a_ub", "a_eq"):
        if data[key] is not None:
            data[key] = data[key][:, perm]
    return MetamorphicVariant(
        name="permute_variables",
        problem=MIPProblem(name=f"{problem.name}+pvar", **data),
    )


def permute_rows(problem: MIPProblem, rng: np.random.Generator) -> MetamorphicVariant:
    """Reorder the constraint rows; the optimum is unchanged."""
    data = _clone_arrays(problem)
    for a_key, b_key in (("a_ub", "b_ub"), ("a_eq", "b_eq")):
        if data[a_key] is not None and data[a_key].shape[0] > 1:
            perm = rng.permutation(data[a_key].shape[0])
            data[a_key] = data[a_key][perm]
            data[b_key] = data[b_key][perm]
    return MetamorphicVariant(
        name="permute_rows",
        problem=MIPProblem(name=f"{problem.name}+prow", **data),
    )


def scale_rows(problem: MIPProblem, rng: np.random.Generator) -> MetamorphicVariant:
    """Scale each row by a positive power of two; the optimum is unchanged."""
    data = _clone_arrays(problem)
    for a_key, b_key in (("a_ub", "b_ub"), ("a_eq", "b_eq")):
        if data[a_key] is not None:
            scales = rng.choice(_POW2_SCALES, size=data[a_key].shape[0])
            data[a_key] = data[a_key] * scales[:, None]
            data[b_key] = data[b_key] * scales
    return MetamorphicVariant(
        name="scale_rows",
        problem=MIPProblem(name=f"{problem.name}+srow", **data),
    )


def scale_objective(problem: MIPProblem, rng: np.random.Generator) -> MetamorphicVariant:
    """Scale ``c`` by a positive power of two; the optimum scales with it."""
    alpha = float(rng.choice(_POW2_SCALES))
    data = _clone_arrays(problem)
    data["c"] = data["c"] * alpha
    return MetamorphicVariant(
        name="scale_objective",
        problem=MIPProblem(name=f"{problem.name}+sobj", **data),
        scale=alpha,
    )


def reflect_box(problem: MIPProblem, rng: np.random.Generator) -> Optional[MetamorphicVariant]:
    """Objective negation with sense flip via box reflection.

    Substituting ``x = lb + ub − x'`` (every variable reflected inside
    its box) negates every coefficient of ``c`` and ``A`` — the negated
    objective is then *maximized* again, i.e. the sense flip — while the
    bound box and integrality pattern are preserved.  The optimum moves
    by exactly ``−cᵀ(lb + ub)``.  Requires all bounds finite.
    """
    if not (np.all(np.isfinite(problem.lb)) and np.all(np.isfinite(problem.ub))):
        return None
    mid = problem.lb + problem.ub
    data = _clone_arrays(problem)
    data["c"] = -data["c"]
    for a_key, b_key in (("a_ub", "b_ub"), ("a_eq", "b_eq")):
        if data[a_key] is not None:
            data[b_key] = data[b_key] - data[a_key] @ mid
            data[a_key] = -data[a_key]
    return MetamorphicVariant(
        name="reflect_box",
        problem=MIPProblem(name=f"{problem.name}+refl", **data),
        offset=-float(problem.c @ mid),
    )


def fix_variable(
    problem: MIPProblem, rng: np.random.Generator, x_opt: np.ndarray
) -> Optional[MetamorphicVariant]:
    """Fix one variable at its optimal value; the optimum is unchanged."""
    if x_opt is None:
        return None
    candidates = np.nonzero(problem.integer)[0]
    if candidates.size == 0:
        candidates = np.arange(problem.n)
    j = int(rng.choice(candidates))
    value = float(x_opt[j])
    if problem.integer[j]:
        value = float(np.round(value))
    value = float(np.clip(value, problem.lb[j], problem.ub[j]))
    data = _clone_arrays(problem)
    data["lb"][j] = value
    data["ub"][j] = value
    return MetamorphicVariant(
        name=f"fix_variable[{j}]",
        problem=MIPProblem(name=f"{problem.name}+fix{j}", **data),
    )


def metamorphic_variants(
    problem: MIPProblem,
    rng: np.random.Generator,
    x_opt: Optional[np.ndarray] = None,
    max_variants: Optional[int] = None,
) -> List[MetamorphicVariant]:
    """Build the applicable variants of one instance (deterministic in ``rng``)."""
    variants: List[MetamorphicVariant] = [
        permute_variables(problem, rng),
        permute_rows(problem, rng),
        scale_rows(problem, rng),
        scale_objective(problem, rng),
    ]
    reflected = reflect_box(problem, rng)
    if reflected is not None:
        variants.append(reflected)
    if x_opt is not None:
        fixed = fix_variable(problem, rng, x_opt)
        if fixed is not None:
            variants.append(fixed)
    if max_variants is not None and len(variants) > max_variants:
        idx = rng.choice(len(variants), size=max_variants, replace=False)
        variants = [variants[i] for i in sorted(idx)]
    return variants


@dataclass
class MetamorphicOutcome:
    """One variant's solve compared against its expectation."""

    name: str
    ok: bool
    expected: float
    actual: float
    status: str
    detail: str = ""


@dataclass
class MetamorphicReport:
    """All variant outcomes for one base instance."""

    problem_name: str
    base_objective: float
    outcomes: List[MetamorphicOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every variant matched its expected optimum."""
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> List[MetamorphicOutcome]:
        """The variants that missed their expectation."""
        return [o for o in self.outcomes if not o.ok]

    def raise_for_failures(self) -> None:
        """Raise :class:`MetamorphicViolation` for the first failure."""
        for outcome in self.failures:
            raise MetamorphicViolation(outcome.name, outcome.expected, outcome.actual)


def check_metamorphic(
    problem: MIPProblem,
    base_result: MIPResult,
    solve_fn: Callable[[MIPProblem], MIPResult],
    rng: np.random.Generator,
    max_variants: Optional[int] = None,
    rtol: float = METAMORPHIC_RTOL,
) -> MetamorphicReport:
    """Solve every applicable variant and compare against expectation.

    Requires an ``OPTIMAL`` base result; each variant must come back
    ``OPTIMAL`` with an objective within ``rtol`` (relative, magnitude-
    scaled) of ``variant.expected(base)``.
    """
    report = MetamorphicReport(
        problem_name=problem.name, base_objective=base_result.objective
    )
    if base_result.status is not MIPStatus.OPTIMAL or base_result.x is None:
        return report
    variants = metamorphic_variants(
        problem, rng, x_opt=base_result.x, max_variants=max_variants
    )
    for variant in variants:
        expected = variant.expected(base_result.objective)
        result = solve_fn(variant.problem)
        if result.status is not MIPStatus.OPTIMAL:
            report.outcomes.append(
                MetamorphicOutcome(
                    name=variant.name,
                    ok=False,
                    expected=expected,
                    actual=float("nan"),
                    status=result.status.value,
                    detail="variant did not solve to optimality",
                )
            )
            continue
        allowed = rtol * (1.0 + abs(expected))
        delta = abs(result.objective - expected)
        report.outcomes.append(
            MetamorphicOutcome(
                name=variant.name,
                ok=bool(delta <= allowed),
                expected=expected,
                actual=result.objective,
                status=result.status.value,
                detail=f"delta {delta:.3e} (allowed {allowed:.3e})",
            )
        )
    return report
