"""Greedy instance minimization for failing checks.

Given a failing instance and a predicate "does this instance still
fail?", the shrinker walks a fixed schedule of reductions — drop row
chunks (delta-debugging style: halves before singles), drop variables,
round coefficients to fewer digits — accepting any candidate that keeps
the failure alive, until a full sweep makes no progress or the attempt
budget runs out.  The result is the small, human-readable instance that
goes into the repro file.

The predicate must be *deterministic* (seeded solvers only) or the
shrink can wander; every candidate is re-validated through
:class:`MIPProblem`'s constructor and rejected on format errors, so the
shrinker can never produce an unloadable repro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.errors import ProblemFormatError, ReproError
from repro.mip.problem import MIPProblem

Predicate = Callable[[MIPProblem], bool]


def _size(problem: MIPProblem) -> tuple:
    """Lexicographic size: rows, vars, then nonzeros (smaller is better)."""
    rows = (0 if problem.a_ub is None else problem.a_ub.shape[0]) + (
        0 if problem.a_eq is None else problem.a_eq.shape[0]
    )
    nnz = 0
    for block in (problem.a_ub, problem.a_eq):
        if block is not None:
            nnz += int(np.count_nonzero(block))
    return (rows, problem.n, nnz)


def _rebuild(
    problem: MIPProblem,
    *,
    keep_vars: Optional[np.ndarray] = None,
    keep_ub: Optional[np.ndarray] = None,
    keep_eq: Optional[np.ndarray] = None,
    transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Optional[MIPProblem]:
    """Candidate with rows/vars dropped and/or coefficients transformed."""
    def pick_rows(a, b, keep):
        if a is None or keep is None:
            return a, b
        if not keep.any():
            return None, None
        return a[keep], b[keep]

    a_ub, b_ub = pick_rows(problem.a_ub, problem.b_ub, keep_ub)
    a_eq, b_eq = pick_rows(problem.a_eq, problem.b_eq, keep_eq)
    c, integer, lb, ub = problem.c, problem.integer, problem.lb, problem.ub
    if keep_vars is not None:
        if not keep_vars.any():
            return None
        c, integer, lb, ub = c[keep_vars], integer[keep_vars], lb[keep_vars], ub[keep_vars]
        if a_ub is not None:
            a_ub = a_ub[:, keep_vars]
        if a_eq is not None:
            a_eq = a_eq[:, keep_vars]
    if transform is not None:
        c = transform(c)
        lb, ub = transform(lb), transform(ub)
        if a_ub is not None:
            a_ub, b_ub = transform(a_ub), transform(b_ub)
        if a_eq is not None:
            a_eq, b_eq = transform(a_eq), transform(b_eq)
    try:
        return MIPProblem(
            c=np.array(c, dtype=np.float64, copy=True),
            integer=np.array(integer, dtype=bool, copy=True),
            a_ub=None if a_ub is None else np.array(a_ub, copy=True),
            b_ub=None if b_ub is None else np.array(b_ub, copy=True),
            a_eq=None if a_eq is None else np.array(a_eq, copy=True),
            b_eq=None if b_eq is None else np.array(b_eq, copy=True),
            lb=np.array(lb, dtype=np.float64, copy=True),
            ub=np.array(ub, dtype=np.float64, copy=True),
            name=f"{problem.name}~shrunk",
        )
    except ProblemFormatError:
        return None


def _chunk_masks(count: int) -> Iterator[np.ndarray]:
    """Drop-masks over ``count`` items: halves, quarters, …, singles."""
    if count <= 0:
        return
    chunk = max(1, count // 2)
    while chunk >= 1:
        for start in range(0, count, chunk):
            keep = np.ones(count, dtype=bool)
            keep[start : start + chunk] = False
            yield keep
        if chunk == 1:
            break
        chunk //= 2


def _row_candidates(problem: MIPProblem) -> Iterator[MIPProblem]:
    num_ub = 0 if problem.a_ub is None else problem.a_ub.shape[0]
    num_eq = 0 if problem.a_eq is None else problem.a_eq.shape[0]
    for keep in _chunk_masks(num_ub):
        candidate = _rebuild(problem, keep_ub=keep)
        if candidate is not None:
            yield candidate
    for keep in _chunk_masks(num_eq):
        candidate = _rebuild(problem, keep_eq=keep)
        if candidate is not None:
            yield candidate


def _var_candidates(problem: MIPProblem) -> Iterator[MIPProblem]:
    for keep in _chunk_masks(problem.n):
        candidate = _rebuild(problem, keep_vars=keep)
        if candidate is not None:
            yield candidate


def _coefficient_candidates(problem: MIPProblem) -> Iterator[MIPProblem]:
    for decimals in (0, 1, 2):
        candidate = _rebuild(
            problem, transform=lambda arr, d=decimals: np.round(arr, d)
        )
        if candidate is not None:
            yield candidate


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    problem: MIPProblem
    original_size: tuple
    final_size: tuple
    attempts: int
    rounds: int

    @property
    def reduced(self) -> bool:
        """True when the instance got strictly smaller."""
        return self.final_size < self.original_size


def shrink(
    problem: MIPProblem,
    predicate: Predicate,
    max_attempts: int = 300,
) -> ShrinkResult:
    """Greedily minimize ``problem`` while ``predicate`` keeps holding.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the failure; predicate exceptions count as "does not fail"
    so a shrink can never crash the fuzzing loop.
    """
    current = problem
    original = _size(problem)
    attempts = 0
    rounds = 0

    def still_fails(candidate: MIPProblem) -> bool:
        nonlocal attempts
        attempts += 1
        try:
            return bool(predicate(candidate))
        except ReproError:
            return False

    improved = True
    while improved and attempts < max_attempts:
        improved = False
        rounds += 1
        for pass_fn in (_row_candidates, _var_candidates, _coefficient_candidates):
            # Re-enumerate after every acceptance: the candidate space
            # depends on the current instance.
            accepted = True
            while accepted and attempts < max_attempts:
                accepted = False
                for candidate in pass_fn(current):
                    if attempts >= max_attempts:
                        break
                    if _size(candidate) >= _size(current):
                        continue
                    if still_fails(candidate):
                        current = candidate
                        accepted = True
                        improved = True
                        break
    return ShrinkResult(
        problem=current,
        original_size=original,
        final_size=_size(current),
        attempts=attempts,
        rounds=rounds,
    )
