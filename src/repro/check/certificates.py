"""Exact solution certificates in rational arithmetic.

Every float64 is exactly representable as a :class:`fractions.Fraction`,
so a claimed solution can be audited *exactly*: constraint activities,
bound violations, integrality residuals, and objective values computed
here carry no rounding error whatsoever.  The float solvers are allowed
their documented tolerances — the certificate compares the exactly
computed violation against the exactly represented tolerance — but they
cannot hide a genuinely wrong answer behind accumulated float noise,
which is precisely how a silently mis-solving kernel would present.

Checks are scaled relative to the data magnitude they test against
(``tol * (1 + |b_i|)`` for row ``i``), matching how the float stack
treats its own residuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.errors import CertificateViolation
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus

#: Slack allowed between a claimed objective and the exact cᵀx, relative
#: to the objective magnitude (float dot products of ~1e3 terms).
OBJECTIVE_CONSISTENCY_RTOL = 1e-9


def _frac(value: float) -> Fraction:
    """Exact rational of one finite float."""
    return Fraction(float(value))


def _frac_vec(arr: np.ndarray) -> List[Fraction]:
    return [_frac(v) for v in arr]


def _dot(row: np.ndarray, xf: List[Fraction]) -> Fraction:
    """Exact dot product of a float row with a rational vector."""
    total = Fraction(0)
    for j, v in enumerate(row):
        if v != 0.0:
            total += _frac(v) * xf[j]
    return total


@dataclass
class CertificateCheck:
    """One exact check: the worst violation found vs. its tolerance."""

    name: str
    ok: bool
    #: Worst violation (exact arithmetic, rounded only for display).
    violation: float
    tolerance: float
    detail: str = ""


@dataclass
class CertificateReport:
    """Outcome of certifying one solution."""

    problem_name: str
    checks: List[CertificateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[CertificateCheck]:
        """The checks that failed."""
        return [c for c in self.checks if not c.ok]

    def raise_for_failures(self) -> None:
        """Raise :class:`CertificateViolation` for the worst failure."""
        bad = self.failures
        if bad:
            worst = max(bad, key=lambda c: c.violation - c.tolerance)
            raise CertificateViolation(worst.name, worst.violation, worst.tolerance)

    def _add(
        self,
        name: str,
        violation: Fraction,
        tolerance: Fraction,
        detail: str = "",
    ) -> None:
        self.checks.append(
            CertificateCheck(
                name=name,
                ok=violation <= tolerance,
                violation=float(violation),
                tolerance=float(tolerance),
                detail=detail,
            )
        )


def _check_rows(
    report: CertificateReport,
    name: str,
    a: Optional[np.ndarray],
    b: Optional[np.ndarray],
    xf: List[Fraction],
    tol: Fraction,
    equality: bool,
) -> None:
    """Worst exact violation of ``Ax ≤ b`` (or ``= b``) over all rows."""
    if a is None:
        return
    worst = Fraction(0)
    worst_tol = tol
    worst_row = -1
    for i in range(a.shape[0]):
        activity = _dot(a[i], xf)
        resid = activity - _frac(b[i])
        violation = abs(resid) if equality else max(Fraction(0), resid)
        allowed = tol * (1 + abs(_frac(b[i])))
        # Rank rows by tolerance-normalized violation so a tight row is
        # not masked by a slack row with a bigger absolute residual.
        if worst_row < 0 or violation * worst_tol > worst * allowed:
            worst, worst_tol, worst_row = violation, allowed, i
    report._add(name, worst, worst_tol, detail=f"worst row {worst_row}")


def _check_bounds(
    report: CertificateReport,
    lb: np.ndarray,
    ub: np.ndarray,
    xf: List[Fraction],
    tol: Fraction,
) -> None:
    worst = Fraction(0)
    worst_tol = tol
    worst_var = -1
    for j, xj in enumerate(xf):
        for bound, sign in ((lb[j], 1), (ub[j], -1)):
            if not np.isfinite(bound):
                continue
            violation = max(Fraction(0), sign * (_frac(bound) - xj))
            allowed = tol * (1 + abs(_frac(bound)))
            if worst_var < 0 or violation * worst_tol > worst * allowed:
                worst, worst_tol, worst_var = violation, allowed, j
    report._add("bounds", worst, worst_tol, detail=f"worst var {worst_var}")


def certify_mip_solution(
    problem: MIPProblem,
    x: np.ndarray,
    objective: Optional[float] = None,
    best_bound: Optional[float] = None,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> CertificateReport:
    """Exactly audit a claimed MIP solution.

    Checks, all in rational arithmetic: ≤-row and =-row feasibility,
    bound-box feasibility, integrality of the integer variables,
    consistency of the claimed ``objective`` with the exact ``cᵀx``, and
    (when given) that the claimed dual ``best_bound`` does not cut off
    the exact objective.
    """
    report = CertificateReport(problem_name=problem.name)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (problem.n,):
        report.checks.append(
            CertificateCheck(
                name="shape",
                ok=False,
                violation=float(x.size),
                tolerance=float(problem.n),
                detail=f"solution has shape {x.shape}, expected ({problem.n},)",
            )
        )
        return report
    xf = _frac_vec(x)
    feas = _frac(tol.feasibility) * 10

    _check_rows(report, "rows_ub", problem.a_ub, problem.b_ub, xf, feas, equality=False)
    _check_rows(report, "rows_eq", problem.a_eq, problem.b_eq, xf, feas, equality=True)
    _check_bounds(report, problem.lb, problem.ub, xf, feas)

    # Integrality: exact distance to the nearest integer.
    worst = Fraction(0)
    worst_var = -1
    for j in np.nonzero(problem.integer)[0]:
        resid = abs(xf[j] - round(xf[j]))
        if resid > worst:
            worst, worst_var = resid, int(j)
    report._add(
        "integrality",
        worst,
        _frac(tol.integrality) * 10,
        detail=f"worst var {worst_var}",
    )

    exact_obj = _dot(problem.c, xf)
    if objective is not None:
        allowed = _frac(OBJECTIVE_CONSISTENCY_RTOL) * (1 + abs(exact_obj))
        report._add(
            "objective",
            abs(_frac(objective) - exact_obj),
            allowed,
            detail=f"claimed {objective:.12g}, exact {float(exact_obj):.12g}",
        )
    if best_bound is not None and np.isfinite(best_bound):
        # The dual bound must sit at or above the exact primal value
        # (maximization), up to the solver's own declared gap.
        slack = _frac(tol.mip_gap_abs) + _frac(tol.mip_gap) * abs(exact_obj)
        report._add(
            "dual_bound",
            max(Fraction(0), exact_obj - _frac(best_bound)),
            slack,
            detail=f"bound {best_bound:.12g}, exact objective {float(exact_obj):.12g}",
        )
    return report


def certify_mip_result(
    problem: MIPProblem,
    result: MIPResult,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> CertificateReport:
    """Certify a :class:`MIPResult` (only terminal-with-solution states).

    ``OPTIMAL``/``NODE_LIMIT`` results with an incumbent get the full
    solution audit; an ``OPTIMAL`` result *without* an incumbent is
    itself a violation.  ``INFEASIBLE``/``UNBOUNDED`` claims need dual
    rays to certify and are recorded as skipped (vacuously ok).
    """
    if result.x is not None:
        return certify_mip_solution(
            problem,
            result.x,
            objective=result.objective,
            best_bound=result.best_bound if np.isfinite(result.best_bound) else None,
            tol=tol,
        )
    report = CertificateReport(problem_name=problem.name)
    if result.status is MIPStatus.OPTIMAL:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=False,
                violation=1.0,
                tolerance=0.0,
                detail="OPTIMAL claimed without an incumbent solution",
            )
        )
    else:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=True,
                violation=0.0,
                tolerance=0.0,
                detail=f"{result.status.value}: no solution to audit",
            )
        )
    return report


def certify_lp_result(
    lp: LinearProgram,
    result: LPResult,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> CertificateReport:
    """Certify an LP solve: primal feasibility plus a duality certificate.

    When the result carries standard-form duals and primal iterates, the
    full optimality certificate is audited exactly: dual feasibility
    (``Âᵀy ≥ ĉ``) and strong duality (``b̂ᵀy = ĉᵀx̂``) on the standard
    form the solver actually worked on.
    """
    name = getattr(lp, "name", "lp")
    report = CertificateReport(problem_name=name)
    if result.status is not LPStatus.OPTIMAL:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=True,
                violation=0.0,
                tolerance=0.0,
                detail=f"{result.status.value}: no solution to audit",
            )
        )
        return report
    if result.x is None:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=False,
                violation=1.0,
                tolerance=0.0,
                detail="OPTIMAL claimed without a primal solution",
            )
        )
        return report

    xf = _frac_vec(np.asarray(result.x, dtype=np.float64))
    feas = _frac(tol.feasibility) * 10
    _check_rows(report, "rows_ub", lp.a_ub, lp.b_ub, xf, feas, equality=False)
    _check_rows(report, "rows_eq", lp.a_eq, lp.b_eq, xf, feas, equality=True)
    _check_bounds(report, lp.lb, lp.ub, xf, feas)

    exact_obj = _dot(lp.c, xf)
    allowed = _frac(OBJECTIVE_CONSISTENCY_RTOL) * (1 + abs(exact_obj))
    report._add(
        "objective",
        abs(_frac(result.objective) - exact_obj),
        allowed,
        detail=f"claimed {result.objective:.12g}, exact {float(exact_obj):.12g}",
    )

    if result.duals is not None and result.x_standard is not None:
        sf = lp.to_standard_form()
        if result.duals.shape == (sf.m,) and result.x_standard.shape == (sf.n,):
            yf = _frac_vec(np.asarray(result.duals, dtype=np.float64))
            xs = _frac_vec(np.asarray(result.x_standard, dtype=np.float64))
            # Dual feasibility: reduced costs ĉ − Âᵀy ≤ 0 for every column.
            worst = Fraction(0)
            worst_col = -1
            dual_tol = _frac(tol.optimality) * 10
            for j in range(sf.n):
                aty = _dot(sf.a[:, j], yf)
                resid = max(Fraction(0), _frac(sf.c[j]) - aty)
                if resid > worst:
                    worst, worst_col = resid, j
            report._add(
                "dual_feasibility", worst, dual_tol, detail=f"worst column {worst_col}"
            )
            # Strong duality on the standard form: b̂ᵀy == ĉᵀx̂.
            primal = _dot(sf.c, xs)
            dual = _dot(sf.b, yf)
            report._add(
                "strong_duality",
                abs(primal - dual),
                _frac(tol.optimality) * 100 * (1 + abs(primal)),
                detail=f"primal {float(primal):.12g}, dual {float(dual):.12g}",
            )
    return report
