"""Exact solution certificates in rational arithmetic.

Every float64 is exactly representable as a :class:`fractions.Fraction`,
so a claimed solution can be audited *exactly*: constraint activities,
bound violations, integrality residuals, and objective values computed
here carry no rounding error whatsoever.  The float solvers are allowed
their documented tolerances — the certificate compares the exactly
computed violation against the exactly represented tolerance — but they
cannot hide a genuinely wrong answer behind accumulated float noise,
which is precisely how a silently mis-solving kernel would present.

Checks are scaled relative to the data magnitude they test against
(``tol * (1 + |b_i|)`` for row ``i``), matching how the float stack
treats its own residuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.errors import CertificateViolation
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus

#: Slack allowed between a claimed objective and the exact cᵀx, relative
#: to the objective magnitude (float dot products of ~1e3 terms).
OBJECTIVE_CONSISTENCY_RTOL = 1e-9


def _frac(value: float) -> Fraction:
    """Exact rational of one finite float."""
    return Fraction(float(value))


def _frac_vec(arr: np.ndarray) -> List[Fraction]:
    return [_frac(v) for v in arr]


def _dot(row: np.ndarray, xf: List[Fraction]) -> Fraction:
    """Exact dot product of a float row with a rational vector."""
    total = Fraction(0)
    for j, v in enumerate(row):
        if v != 0.0:
            total += _frac(v) * xf[j]
    return total


@dataclass
class CertificateCheck:
    """One exact check: the worst violation found vs. its tolerance."""

    name: str
    ok: bool
    #: Worst violation (exact arithmetic, rounded only for display).
    violation: float
    tolerance: float
    detail: str = ""


@dataclass
class CertificateReport:
    """Outcome of certifying one solution."""

    problem_name: str
    checks: List[CertificateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[CertificateCheck]:
        """The checks that failed."""
        return [c for c in self.checks if not c.ok]

    def raise_for_failures(self) -> None:
        """Raise :class:`CertificateViolation` for the worst failure."""
        bad = self.failures
        if bad:
            worst = max(bad, key=lambda c: c.violation - c.tolerance)
            raise CertificateViolation(worst.name, worst.violation, worst.tolerance)

    def _add(
        self,
        name: str,
        violation: Fraction,
        tolerance: Fraction,
        detail: str = "",
    ) -> None:
        self.checks.append(
            CertificateCheck(
                name=name,
                ok=violation <= tolerance,
                violation=float(violation),
                tolerance=float(tolerance),
                detail=detail,
            )
        )


def _check_rows(
    report: CertificateReport,
    name: str,
    a: Optional[np.ndarray],
    b: Optional[np.ndarray],
    xf: List[Fraction],
    tol: Fraction,
    equality: bool,
) -> None:
    """Worst exact violation of ``Ax ≤ b`` (or ``= b``) over all rows."""
    if a is None:
        return
    worst = Fraction(0)
    worst_tol = tol
    worst_row = -1
    for i in range(a.shape[0]):
        activity = _dot(a[i], xf)
        resid = activity - _frac(b[i])
        violation = abs(resid) if equality else max(Fraction(0), resid)
        allowed = tol * (1 + abs(_frac(b[i])))
        # Rank rows by tolerance-normalized violation so a tight row is
        # not masked by a slack row with a bigger absolute residual.
        if worst_row < 0 or violation * worst_tol > worst * allowed:
            worst, worst_tol, worst_row = violation, allowed, i
    report._add(name, worst, worst_tol, detail=f"worst row {worst_row}")


def _check_bounds(
    report: CertificateReport,
    lb: np.ndarray,
    ub: np.ndarray,
    xf: List[Fraction],
    tol: Fraction,
) -> None:
    worst = Fraction(0)
    worst_tol = tol
    worst_var = -1
    for j, xj in enumerate(xf):
        for bound, sign in ((lb[j], 1), (ub[j], -1)):
            if not np.isfinite(bound):
                continue
            violation = max(Fraction(0), sign * (_frac(bound) - xj))
            allowed = tol * (1 + abs(_frac(bound)))
            if worst_var < 0 or violation * worst_tol > worst * allowed:
                worst, worst_tol, worst_var = violation, allowed, j
    report._add("bounds", worst, worst_tol, detail=f"worst var {worst_var}")


def certify_mip_solution(
    problem: MIPProblem,
    x: np.ndarray,
    objective: Optional[float] = None,
    best_bound: Optional[float] = None,
    tol: Tolerances = DEFAULT_TOLERANCES,
    *,
    feasibility_tol: Optional[float] = None,
    integrality_tol: Optional[float] = None,
) -> CertificateReport:
    """Exactly audit a claimed MIP solution.

    Checks, all in rational arithmetic: ≤-row and =-row feasibility,
    bound-box feasibility, integrality of the integer variables,
    consistency of the claimed ``objective`` with the exact ``cᵀx``, and
    (when given) that the claimed dual ``best_bound`` does not cut off
    the exact objective.

    ``feasibility_tol`` / ``integrality_tol`` override the vertex-solver
    defaults (``tol.feasibility × 10`` / ``tol.integrality × 10``) with
    an explicit per-check tolerance, used **as given** (still scaled by
    the data magnitude, ``tol·(1+|bᵢ|)`` per row).  Pass the declared
    accuracy of an inexact solver here — e.g. a first-order engine's eps
    — instead of pretending its solutions are exact vertices.
    """
    report = CertificateReport(problem_name=problem.name)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (problem.n,):
        report.checks.append(
            CertificateCheck(
                name="shape",
                ok=False,
                violation=float(x.size),
                tolerance=float(problem.n),
                detail=f"solution has shape {x.shape}, expected ({problem.n},)",
            )
        )
        return report
    xf = _frac_vec(x)
    feas = (
        _frac(tol.feasibility) * 10
        if feasibility_tol is None
        else _frac(feasibility_tol)
    )

    _check_rows(report, "rows_ub", problem.a_ub, problem.b_ub, xf, feas, equality=False)
    _check_rows(report, "rows_eq", problem.a_eq, problem.b_eq, xf, feas, equality=True)
    _check_bounds(report, problem.lb, problem.ub, xf, feas)

    # Integrality: exact distance to the nearest integer.
    worst = Fraction(0)
    worst_var = -1
    for j in np.nonzero(problem.integer)[0]:
        resid = abs(xf[j] - round(xf[j]))
        if resid > worst:
            worst, worst_var = resid, int(j)
    report._add(
        "integrality",
        worst,
        (
            _frac(tol.integrality) * 10
            if integrality_tol is None
            else _frac(integrality_tol)
        ),
        detail=f"worst var {worst_var}",
    )

    exact_obj = _dot(problem.c, xf)
    if objective is not None:
        allowed = _frac(OBJECTIVE_CONSISTENCY_RTOL) * (1 + abs(exact_obj))
        report._add(
            "objective",
            abs(_frac(objective) - exact_obj),
            allowed,
            detail=f"claimed {objective:.12g}, exact {float(exact_obj):.12g}",
        )
    if best_bound is not None and np.isfinite(best_bound):
        # The dual bound must sit at or above the exact primal value
        # (maximization), up to the solver's own declared gap.
        slack = _frac(tol.mip_gap_abs) + _frac(tol.mip_gap) * abs(exact_obj)
        report._add(
            "dual_bound",
            max(Fraction(0), exact_obj - _frac(best_bound)),
            slack,
            detail=f"bound {best_bound:.12g}, exact objective {float(exact_obj):.12g}",
        )
    return report


def certify_mip_result(
    problem: MIPProblem,
    result: MIPResult,
    tol: Tolerances = DEFAULT_TOLERANCES,
) -> CertificateReport:
    """Certify a :class:`MIPResult` (only terminal-with-solution states).

    ``OPTIMAL``/``NODE_LIMIT`` results with an incumbent get the full
    solution audit; an ``OPTIMAL`` result *without* an incumbent is
    itself a violation.  ``INFEASIBLE``/``UNBOUNDED`` claims need dual
    rays to certify and are recorded as skipped (vacuously ok).
    """
    if result.x is not None:
        return certify_mip_solution(
            problem,
            result.x,
            objective=result.objective,
            best_bound=result.best_bound if np.isfinite(result.best_bound) else None,
            tol=tol,
        )
    report = CertificateReport(problem_name=problem.name)
    if result.status is MIPStatus.OPTIMAL:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=False,
                violation=1.0,
                tolerance=0.0,
                detail="OPTIMAL claimed without an incumbent solution",
            )
        )
    else:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=True,
                violation=0.0,
                tolerance=0.0,
                detail=f"{result.status.value}: no solution to audit",
            )
        )
    return report


def certify_lp_result(
    lp: LinearProgram,
    result: LPResult,
    tol: Tolerances = DEFAULT_TOLERANCES,
    *,
    feasibility_tol: Optional[float] = None,
    optimality_tol: Optional[float] = None,
) -> CertificateReport:
    """Certify an LP solve: primal feasibility plus a duality certificate.

    When the result carries standard-form duals and primal iterates, the
    full optimality certificate is audited exactly: dual feasibility
    (``Âᵀy ≥ ĉ``) and strong duality (``b̂ᵀy = ĉᵀx̂``) on the standard
    form the solver actually worked on.

    ``feasibility_tol`` / ``optimality_tol`` override the vertex-solver
    defaults with an explicit tolerance, used as given — the hook for
    auditing *inexact* solvers whose declared accuracy is wider than a
    pivoted vertex (a first-order engine's eps, an IPM's barrier gap).
    For PDHG results prefer :func:`certify_first_order_lp`, which audits
    the solver's actual relative-KKT contract.
    """
    name = getattr(lp, "name", "lp")
    report = CertificateReport(problem_name=name)
    if result.status is not LPStatus.OPTIMAL:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=True,
                violation=0.0,
                tolerance=0.0,
                detail=f"{result.status.value}: no solution to audit",
            )
        )
        return report
    if result.x is None:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=False,
                violation=1.0,
                tolerance=0.0,
                detail="OPTIMAL claimed without a primal solution",
            )
        )
        return report

    xf = _frac_vec(np.asarray(result.x, dtype=np.float64))
    feas = (
        _frac(tol.feasibility) * 10
        if feasibility_tol is None
        else _frac(feasibility_tol)
    )
    _check_rows(report, "rows_ub", lp.a_ub, lp.b_ub, xf, feas, equality=False)
    _check_rows(report, "rows_eq", lp.a_eq, lp.b_eq, xf, feas, equality=True)
    _check_bounds(report, lp.lb, lp.ub, xf, feas)

    exact_obj = _dot(lp.c, xf)
    allowed = _frac(OBJECTIVE_CONSISTENCY_RTOL) * (1 + abs(exact_obj))
    report._add(
        "objective",
        abs(_frac(result.objective) - exact_obj),
        allowed,
        detail=f"claimed {result.objective:.12g}, exact {float(exact_obj):.12g}",
    )

    if result.duals is not None and result.x_standard is not None:
        sf = lp.to_standard_form()
        if result.duals.shape == (sf.m,) and result.x_standard.shape == (sf.n,):
            yf = _frac_vec(np.asarray(result.duals, dtype=np.float64))
            xs = _frac_vec(np.asarray(result.x_standard, dtype=np.float64))
            # Dual feasibility: reduced costs ĉ − Âᵀy ≤ 0 for every column.
            worst = Fraction(0)
            worst_col = -1
            dual_tol = (
                _frac(tol.optimality) * 10
                if optimality_tol is None
                else _frac(optimality_tol)
            )
            for j in range(sf.n):
                aty = _dot(sf.a[:, j], yf)
                resid = max(Fraction(0), _frac(sf.c[j]) - aty)
                if resid > worst:
                    worst, worst_col = resid, j
            report._add(
                "dual_feasibility", worst, dual_tol, detail=f"worst column {worst_col}"
            )
            # Strong duality on the standard form: b̂ᵀy == ĉᵀx̂.
            primal = _dot(sf.c, xs)
            dual = _dot(sf.b, yf)
            report._add(
                "strong_duality",
                abs(primal - dual),
                (
                    _frac(tol.optimality) * 100
                    if optimality_tol is None
                    else _frac(optimality_tol) * 10
                )
                * (1 + abs(primal)),
                detail=f"primal {float(primal):.12g}, dual {float(dual):.12g}",
            )
    return report


def certify_first_order_lp(
    lp: LinearProgram,
    result,
    eps: float = 1e-8,
) -> CertificateReport:
    """Exactly audit a :class:`repro.lp.pdhg.PDHGResult` against its contract.

    The PDHG solver promises a *relative KKT certificate* at accuracy
    ``eps`` (pass the ``PDHGOptions.tolerance`` the solve actually used):
    primal residual ``‖[Kx−q]₋‖₂ ≤ eps·(1+‖q‖₂)``, dual residual
    likewise against ``1+‖ĉ‖₂``, and gap ``|p−d| ≤ eps·(1+|p|+|d|)``,
    all on the minimization saddle form ``min ĉᵀx`` with ``ĉ = −c`` and
    rows ``K = [A_eq; −A_ub]``, ``q = [b_eq; −b_ub]``.

    Norm contracts involve irrational square roots, so the residual
    checks audit the *squared* form through the sound rational relaxation
    ``‖r‖² ≤ 2·eps²·(1+‖q‖²)`` — valid because
    ``(1+‖q‖)² ≤ 2·(1+‖q‖²)`` — keeping every comparison in ℚ.  A point
    the solver legitimately accepted always passes; a fabricated
    "optimal" point whose residuals exceed ``√2·eps`` at the natural
    scale cannot.

    Non-``OPTIMAL`` statuses carry no KKT point and are recorded as
    vacuously ok, mirroring :func:`certify_lp_result`.
    """
    name = getattr(lp, "name", "lp")
    report = CertificateReport(problem_name=name)
    if result.status is not LPStatus.OPTIMAL:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=True,
                violation=0.0,
                tolerance=0.0,
                detail=f"{result.status.value}: no solution to audit",
            )
        )
        return report
    if result.x is None or result.y is None:
        report.checks.append(
            CertificateCheck(
                name="status",
                ok=False,
                violation=1.0,
                tolerance=0.0,
                detail="OPTIMAL claimed without a primal/dual pair",
            )
        )
        return report

    xf = _frac_vec(np.asarray(result.x, dtype=np.float64))
    yf = _frac_vec(np.asarray(result.y, dtype=np.float64))
    epsf = _frac(eps)

    # Box feasibility.  The solver clips exactly in scaled space; the
    # unscaling multiply can leave at most rounding-level spill, well
    # inside the eps·(1+|bound|) budget.
    _check_bounds(report, lp.lb, lp.ub, xf, epsf)

    # Saddle rows [A_eq; −A_ub] with rhs q = [b_eq; −b_ub].
    rows: List[tuple] = []
    if lp.a_eq is not None:
        for i in range(lp.a_eq.shape[0]):
            rows.append((lp.a_eq[i], _frac(lp.b_eq[i]), True))
    if lp.a_ub is not None:
        for i in range(lp.a_ub.shape[0]):
            rows.append((-lp.a_ub[i], _frac(-lp.b_ub[i]), False))
    num_eq = lp.num_eq_rows
    if len(yf) != len(rows):
        report.checks.append(
            CertificateCheck(
                name="shape",
                ok=False,
                violation=float(len(yf)),
                tolerance=float(len(rows)),
                detail=f"dual vector has {len(yf)} rows, saddle has {len(rows)}",
            )
        )
        return report

    # Primal residual (squared) and the qᵀy part of the dual objective.
    q_sq = Fraction(0)
    resid_sq = Fraction(0)
    d = Fraction(0)
    for idx, (row, qi, is_eq) in enumerate(rows):
        q_sq += qi * qi
        resid = _dot(row, xf) - qi
        if not is_eq:
            # Inequality rows Kx ≥ q: only shortfalls violate.
            resid = min(resid, Fraction(0))
        resid_sq += resid * resid
        d += qi * yf[idx]
    report._add(
        "primal_residual_sq",
        resid_sq,
        2 * epsf * epsf * (1 + q_sq),
        detail="‖[Kx−q]₋‖² vs 2·eps²·(1+‖q‖²)",
    )

    # Exact reduced costs r = ĉ − Kᵀy, accumulated row-by-row.
    kty = [Fraction(0)] * lp.n
    for idx, (row, _, _) in enumerate(rows):
        yi = yf[idx]
        if yi:
            for j, v in enumerate(row):
                if v != 0.0:
                    kty[j] += _frac(v) * yi

    c_sq = Fraction(0)
    dual_viol_sq = Fraction(0)
    p = Fraction(0)
    for j in range(lp.n):
        c_hat = -_frac(lp.c[j])
        c_sq += c_hat * c_hat
        p += c_hat * xf[j]
        r = c_hat - kty[j]
        lb_fin = bool(np.isfinite(lp.lb[j]))
        ub_fin = bool(np.isfinite(lp.ub[j]))
        # A positive reduced cost must be absorbed by a finite lower
        # bound, a negative one by a finite upper bound.
        if r > 0:
            if lb_fin:
                d += _frac(lp.lb[j]) * r
            else:
                dual_viol_sq += r * r
        elif r < 0:
            if ub_fin:
                d += _frac(lp.ub[j]) * r
            else:
                dual_viol_sq += r * r
    report._add(
        "dual_residual_sq",
        dual_viol_sq,
        2 * epsf * epsf * (1 + c_sq),
        detail="unabsorbed reduced costs vs 2·eps²·(1+‖ĉ‖²)",
    )

    # Dual cone: inequality-row duals are projected ≥ 0 every iteration
    # (and averages of nonnegatives stay nonnegative), so eps is ample.
    worst_cone = Fraction(0)
    for idx in range(num_eq, len(rows)):
        worst_cone = max(worst_cone, -yf[idx])
    report._add("dual_cone", worst_cone, epsf, detail="inequality duals ≥ 0")

    # Relative duality gap, with p and d computed exactly above.
    report._add(
        "gap",
        abs(p - d),
        epsf * (1 + abs(p) + abs(d)),
        detail=f"primal_min {float(p):.12g}, dual_min {float(d):.12g}",
    )

    # The reported (maximization) objective must match −p exactly-ish.
    report._add(
        "objective",
        abs(_frac(result.objective) + p),
        _frac(OBJECTIVE_CONSISTENCY_RTOL) * (1 + abs(p)),
        detail=f"claimed {result.objective:.12g}, exact {float(-p):.12g}",
    )
    return report
