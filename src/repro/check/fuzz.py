"""Metamorphic + differential + certificate fuzzing with shrinking.

One fuzz iteration draws a small random MIP (every instance is feasible
by construction, so an INFEASIBLE answer is itself a bug), solves it
with the baseline branch-and-bound, and then pushes the result through
the three independent oracles:

1. the exact :mod:`certificates <repro.check.certificates>` audit of the
   returned incumbent and dual bound;
2. :mod:`differential <repro.check.differential>` runs across the other
   solver configurations (plus the LP relaxation through the LP stack);
3. :mod:`metamorphic <repro.check.metamorphic>` variants with exactly
   known optimum relations.

Any failure is greedily :mod:`shrunk <repro.check.shrinker>` under "the
same check still fails" and written as a replayable JSON repro file;
``repro replay <file>`` (or :func:`replay_repro`) re-runs exactly the
failing check on the stored instance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.check.certificates import certify_mip_result
from repro.check.differential import (
    differential_lp,
    differential_mip,
    differential_warm_mip,
)
from repro.check.metamorphic import check_metamorphic
from repro.check.serialize import load_repro, save_repro
from repro.check.shrinker import shrink
from repro.errors import ReproError
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.random_mip import generate_random_mip

SolveFn = Callable[[MIPProblem], MIPResult]


@dataclass
class FuzzOptions:
    """Knobs of one fuzz campaign."""

    budget: int = 100
    seed: int = 0
    #: Directory for shrunk repro files (created on first failure).
    out_dir: str = "fuzz-repros"
    shrink: bool = True
    shrink_attempts: int = 120
    certificates: bool = True
    differential: bool = True
    lp_differential: bool = True
    #: Warm-vs-cold branch and bound (plus warm determinism) oracle.
    warm_differential: bool = True
    metamorphic: bool = True
    #: Metamorphic variants sampled per instance (None = all applicable).
    metamorphic_variants: Optional[int] = 3
    #: Instance-size caps (kept small: the oracles multiply solve count).
    max_vars: int = 9
    max_rows: int = 7
    node_limit: int = 20_000


@dataclass
class FuzzFailure:
    """One confirmed check failure, after shrinking."""

    kind: str  # "certificate" | "differential" | "lp_differential" | "warm" | "metamorphic"
    instance: str
    iteration: int
    detail: str
    repro_path: str = ""
    original_size: tuple = ()
    shrunk_size: tuple = ()


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    budget: int
    seed: int
    instances: int = 0
    certificate_checks: int = 0
    differential_checks: int = 0
    lp_differential_checks: int = 0
    warm_checks: int = 0
    metamorphic_checks: int = 0
    solver_errors: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no check failed and no solver crashed."""
        return not self.failures and not self.solver_errors

    @property
    def total_checks(self) -> int:
        """All oracle invocations across the campaign."""
        return (
            self.certificate_checks
            + self.differential_checks
            + self.lp_differential_checks
            + self.warm_checks
            + self.metamorphic_checks
        )


def default_solve_fn(node_limit: int = 20_000) -> SolveFn:
    """The baseline solver under test (plain branch-and-bound)."""

    def solve(problem: MIPProblem) -> MIPResult:
        return BranchAndBoundSolver(
            problem, SolverOptions(node_limit=node_limit)
        ).solve()

    return solve


def _draw_instance(rng: np.random.Generator, options: FuzzOptions) -> MIPProblem:
    """One random feasible instance; sizes and shapes vary per draw."""
    num_vars = int(rng.integers(2, options.max_vars + 1))
    num_rows = int(rng.integers(1, options.max_rows + 1))
    density = float(rng.uniform(0.3, 1.0))
    integer_fraction = float(rng.uniform(0.3, 1.0))
    bound = float(rng.integers(1, 8))
    seed = int(rng.integers(0, 2**31 - 1))
    return generate_random_mip(
        num_vars,
        num_rows,
        seed=seed,
        density=density,
        integer_fraction=integer_fraction,
        bound=bound,
    )


def _shrink_and_save(
    report: FuzzReport,
    options: FuzzOptions,
    kind: str,
    problem: MIPProblem,
    iteration: int,
    detail: str,
    predicate: Callable[[MIPProblem], bool],
) -> None:
    """Minimize a failing instance and write its repro file."""
    shrunk = problem
    original_size = final_size = ()
    if options.shrink:
        result = shrink(problem, predicate, max_attempts=options.shrink_attempts)
        shrunk = result.problem
        original_size, final_size = result.original_size, result.final_size
    path = os.path.join(
        options.out_dir, f"repro-{kind}-seed{options.seed}-i{iteration}.json"
    )
    save_repro(
        path,
        kind,
        shrunk,
        seed=options.seed,
        detail=detail,
        original_shape={
            "original_size": list(original_size),
            "shrunk_size": list(final_size),
            "iteration": iteration,
        },
    )
    report.failures.append(
        FuzzFailure(
            kind=kind,
            instance=problem.name,
            iteration=iteration,
            detail=detail,
            repro_path=path,
            original_size=original_size,
            shrunk_size=final_size,
        )
    )


def _certificate_fails(solve_fn: SolveFn, candidate: MIPProblem) -> bool:
    result = solve_fn(candidate)
    if result.status is not MIPStatus.OPTIMAL:
        # Shrinking may legitimately make the instance infeasible; only a
        # failing *certificate* keeps the candidate.
        return False
    return not certify_mip_result(candidate, result).ok


def run_fuzz(
    options: Optional[FuzzOptions] = None,
    solve_fn: Optional[SolveFn] = None,
    log_fn: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one fuzz campaign; deterministic in ``options.seed``.

    ``solve_fn`` is the solver under test for the certificate and
    metamorphic oracles (injectable so tests can corrupt results on
    purpose); the differential oracle always runs the stock solver
    configurations against each other.
    """
    options = options or FuzzOptions()
    solve = solve_fn or default_solve_fn(options.node_limit)
    rng = np.random.default_rng(options.seed)
    report = FuzzReport(budget=options.budget, seed=options.seed)

    for iteration in range(options.budget):
        problem = _draw_instance(rng, options)
        report.instances += 1
        meta_seed = int(rng.integers(0, 2**31 - 1))

        try:
            result = solve(problem)
        except ReproError as exc:
            report.solver_errors += 1
            _shrink_and_save(
                report,
                options,
                "solver-error",
                problem,
                iteration,
                detail=f"{type(exc).__name__}: {exc}",
                predicate=lambda p: _raises(solve, p),
            )
            continue

        # Every generated instance has a planted feasible point: the
        # baseline must find *an* optimum (node limits are generous).
        if result.status is not MIPStatus.OPTIMAL:
            report.solver_errors += 1
            _shrink_and_save(
                report,
                options,
                "certificate",
                problem,
                iteration,
                detail=(
                    f"feasible-by-construction instance returned "
                    f"{result.status.value}"
                ),
                predicate=lambda p: solve(p).status is not MIPStatus.OPTIMAL,
            )
            continue

        if options.certificates:
            report.certificate_checks += 1
            certificate = certify_mip_result(problem, result)
            if not certificate.ok:
                worst = certificate.failures[0]
                _shrink_and_save(
                    report,
                    options,
                    "certificate",
                    problem,
                    iteration,
                    detail=(
                        f"{worst.name}: violation {worst.violation:.6g} "
                        f"> tol {worst.tolerance:.6g} ({worst.detail})"
                    ),
                    predicate=lambda p: _certificate_fails(solve, p),
                )
                continue

        if options.differential:
            report.differential_checks += 1
            diff = differential_mip(problem, node_limit=options.node_limit)
            if not diff.ok:
                d = diff.disagreements[0]
                _shrink_and_save(
                    report,
                    options,
                    "differential",
                    problem,
                    iteration,
                    detail=(
                        f"{d.left} vs {d.right} on {d.kind}: "
                        f"{d.left_value} != {d.right_value}"
                    ),
                    predicate=lambda p: not differential_mip(
                        p, node_limit=options.node_limit
                    ).ok,
                )
                continue

        if options.lp_differential:
            report.lp_differential_checks += 1
            lp = problem.relaxation()
            lp.name = problem.name
            lp_diff = differential_lp(lp)
            if not lp_diff.ok:
                d = lp_diff.disagreements[0]
                _shrink_and_save(
                    report,
                    options,
                    "lp_differential",
                    problem,
                    iteration,
                    detail=(
                        f"{d.left} vs {d.right} on {d.kind}: "
                        f"{d.left_value} != {d.right_value}"
                    ),
                    predicate=lambda p: not differential_lp(p.relaxation()).ok,
                )
                continue

        if options.warm_differential:
            report.warm_checks += 1
            warm_diff = differential_warm_mip(problem, node_limit=options.node_limit)
            if not warm_diff.ok:
                d = warm_diff.disagreements[0]
                _shrink_and_save(
                    report,
                    options,
                    "warm",
                    problem,
                    iteration,
                    detail=(
                        f"{d.left} vs {d.right} on {d.kind}: "
                        f"{d.left_value} != {d.right_value}"
                    ),
                    predicate=lambda p: not differential_warm_mip(
                        p, node_limit=options.node_limit
                    ).ok,
                )
                continue

        if options.metamorphic:
            meta = check_metamorphic(
                problem,
                result,
                solve,
                rng=np.random.default_rng(meta_seed),
                max_variants=options.metamorphic_variants,
            )
            report.metamorphic_checks += len(meta.outcomes)
            if not meta.ok:
                failure = meta.failures[0]
                _shrink_and_save(
                    report,
                    options,
                    "metamorphic",
                    problem,
                    iteration,
                    detail=(
                        f"{failure.name}: expected {failure.expected:.9g}, "
                        f"got {failure.actual:.9g} ({failure.detail})"
                    ),
                    predicate=lambda p: _metamorphic_fails(
                        solve, p, meta_seed, options.metamorphic_variants
                    ),
                )
                continue

        if log_fn and (iteration + 1) % 25 == 0:
            log_fn(
                f"fuzz: {iteration + 1}/{options.budget} instances, "
                f"{report.total_checks} checks, {len(report.failures)} failures"
            )

    return report


def _raises(solve: SolveFn, problem: MIPProblem) -> bool:
    try:
        solve(problem)
    except ReproError:
        return True
    return False


def _metamorphic_fails(
    solve: SolveFn,
    problem: MIPProblem,
    meta_seed: int,
    max_variants: Optional[int],
) -> bool:
    result = solve(problem)
    if result.status is not MIPStatus.OPTIMAL:
        return False
    meta = check_metamorphic(
        problem,
        result,
        solve,
        rng=np.random.default_rng(meta_seed),
        max_variants=max_variants,
    )
    return not meta.ok


def replay_repro(path: str, solve_fn: Optional[SolveFn] = None) -> FuzzReport:
    """Re-run the failing check stored in a repro file.

    Returns a one-instance :class:`FuzzReport`; ``report.ok`` means the
    failure no longer reproduces (fixed), a recorded failure means the
    stored instance still trips the same oracle.
    """
    doc = load_repro(path)
    problem: MIPProblem = doc["problem"]
    kind = doc["kind"]
    solve = solve_fn or default_solve_fn()
    report = FuzzReport(budget=1, seed=int(doc.get("seed", 0)))
    report.instances = 1

    def record(detail: str) -> None:
        report.failures.append(
            FuzzFailure(
                kind=kind,
                instance=problem.name,
                iteration=0,
                detail=detail,
                repro_path=path,
            )
        )

    if kind == "solver-error":
        report.certificate_checks += 1
        if _raises(solve, problem):
            record("solver still raises on the stored instance")
        return report

    if kind == "certificate":
        report.certificate_checks += 1
        try:
            result = solve(problem)
        except ReproError as exc:
            record(f"solver raises: {type(exc).__name__}: {exc}")
            return report
        if result.status is not MIPStatus.OPTIMAL:
            record(f"solver returned {result.status.value}")
            return report
        certificate = certify_mip_result(problem, result)
        if not certificate.ok:
            worst = certificate.failures[0]
            record(
                f"{worst.name}: violation {worst.violation:.6g} "
                f"> tol {worst.tolerance:.6g}"
            )
        return report

    if kind == "differential":
        report.differential_checks += 1
        diff = differential_mip(problem)
        if not diff.ok:
            d = diff.disagreements[0]
            record(f"{d.left} vs {d.right} on {d.kind}")
        return report

    if kind == "lp_differential":
        report.lp_differential_checks += 1
        diff = differential_lp(problem.relaxation())
        if not diff.ok:
            d = diff.disagreements[0]
            record(f"{d.left} vs {d.right} on {d.kind}")
        return report

    if kind == "warm":
        report.warm_checks += 1
        diff = differential_warm_mip(problem)
        if not diff.ok:
            d = diff.disagreements[0]
            record(f"{d.left} vs {d.right} on {d.kind}")
        return report

    if kind == "metamorphic":
        report.metamorphic_checks += 1
        if _metamorphic_fails(solve, problem, int(doc.get("seed", 0)), None):
            record("a metamorphic variant still misses its expected optimum")
        return report

    raise ReproError(f"unknown repro kind {kind!r} in {path}")
