"""Correctness tooling: certificates, differential testing, fuzzing.

The float solvers in :mod:`repro.lp` / :mod:`repro.mip` are the ground
every experiment stands on; this package verifies them independently:

- :mod:`repro.check.certificates` — exact :class:`fractions.Fraction`
  arithmetic verification of returned solutions (primal feasibility,
  integrality, objective and dual-bound consistency);
- :mod:`repro.check.differential` — the same instance through every
  applicable solver pair, flagging disagreements beyond tolerance;
- :mod:`repro.check.metamorphic` — property-preserving instance
  transforms whose effect on the optimum is known exactly;
- :mod:`repro.check.fuzz` + :mod:`repro.check.shrinker` — a randomized
  harness over :mod:`repro.problems.random_mip` that, on any failure,
  greedily minimizes the instance and writes a replayable repro file.
"""

from repro.check.certificates import (
    CertificateCheck,
    CertificateReport,
    certify_first_order_lp,
    certify_lp_result,
    certify_mip_result,
    certify_mip_solution,
)
from repro.check.differential import (
    DifferentialReport,
    Disagreement,
    SolverRun,
    differential_cluster,
    differential_lp,
    differential_mip,
    differential_warm_lp,
    differential_warm_mip,
)
from repro.check.fuzz import FuzzFailure, FuzzOptions, FuzzReport, replay_repro, run_fuzz
from repro.check.metamorphic import (
    MetamorphicReport,
    MetamorphicVariant,
    check_metamorphic,
    metamorphic_variants,
)
from repro.check.serialize import load_repro, problem_from_dict, problem_to_dict, save_repro
from repro.check.shrinker import ShrinkResult, shrink

__all__ = [
    "CertificateCheck",
    "CertificateReport",
    "DifferentialReport",
    "Disagreement",
    "FuzzFailure",
    "FuzzOptions",
    "FuzzReport",
    "MetamorphicReport",
    "MetamorphicVariant",
    "ShrinkResult",
    "SolverRun",
    "certify_first_order_lp",
    "certify_lp_result",
    "certify_mip_result",
    "certify_mip_solution",
    "check_metamorphic",
    "differential_cluster",
    "differential_lp",
    "differential_mip",
    "differential_warm_lp",
    "differential_warm_mip",
    "load_repro",
    "metamorphic_variants",
    "problem_from_dict",
    "problem_to_dict",
    "replay_repro",
    "run_fuzz",
    "save_repro",
    "shrink",
]
