"""Replayable repro files for check failures.

A repro file is a single JSON document carrying the complete (shrunk)
instance plus the failure's provenance — which check tripped, under
which fuzz seed, and what the detail line was.  Infinities survive JSON
the same way :mod:`repro.mip.checkpoint` encodes them (as strings), and
floats are stored at full ``repr`` precision, so a loaded instance is
bit-identical to the one that failed.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem

REPRO_FORMAT_VERSION = 1


def _encode(arr: Optional[np.ndarray]) -> Optional[list]:
    if arr is None:
        return None
    flat = np.asarray(arr, dtype=np.float64)
    values: Union[list, List[list]]
    if flat.ndim == 1:
        return [
            "inf" if v == np.inf else "-inf" if v == -np.inf else float(v)
            for v in flat
        ]
    return [_encode(row) for row in flat]


def _decode(values: Optional[list]) -> Optional[np.ndarray]:
    if values is None:
        return None
    if values and isinstance(values[0], list):
        return np.array([_decode(row) for row in values])
    return np.array(
        [np.inf if v == "inf" else -np.inf if v == "-inf" else float(v) for v in values]
    )


def problem_to_dict(problem: MIPProblem) -> Dict:
    """Serialize a :class:`MIPProblem` to plain JSON-safe data."""
    return {
        "name": problem.name,
        "c": _encode(problem.c),
        "integer": [bool(v) for v in problem.integer],
        "a_ub": _encode(problem.a_ub),
        "b_ub": _encode(problem.b_ub),
        "a_eq": _encode(problem.a_eq),
        "b_eq": _encode(problem.b_eq),
        "lb": _encode(problem.lb),
        "ub": _encode(problem.ub),
    }


def problem_from_dict(doc: Dict) -> MIPProblem:
    """Rebuild a :class:`MIPProblem` from :func:`problem_to_dict` data."""
    return MIPProblem(
        c=_decode(doc["c"]),
        integer=np.array(doc["integer"], dtype=bool),
        a_ub=_decode(doc.get("a_ub")),
        b_ub=_decode(doc.get("b_ub")),
        a_eq=_decode(doc.get("a_eq")),
        b_eq=_decode(doc.get("b_eq")),
        lb=_decode(doc.get("lb")),
        ub=_decode(doc.get("ub")),
        name=doc.get("name", "repro"),
    )


def save_repro(
    path: str,
    kind: str,
    problem: MIPProblem,
    seed: int,
    detail: str = "",
    original_shape: Optional[Dict] = None,
) -> None:
    """Write a repro file (atomically via a temp file)."""
    doc = {
        "version": REPRO_FORMAT_VERSION,
        "kind": kind,
        "seed": seed,
        "detail": detail,
        "original_shape": original_shape or {},
        "problem": problem_to_dict(problem),
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=1)
    os.replace(tmp, path)


def load_repro(path: str) -> Dict:
    """Read a repro file; returns the document with ``problem`` rebuilt."""
    with open(path) as handle:
        doc = json.load(handle)
    version = doc.get("version")
    if version != REPRO_FORMAT_VERSION:
        raise ProblemFormatError(f"unsupported repro file version {version!r}")
    doc["problem"] = problem_from_dict(doc["problem"])
    return doc
