"""Dense factorizations and solves built on NumPy primitives.

These are the routines a GPU MIP solver would obtain from cuSOLVER /
MAGMA (paper §4.1): LU with partial pivoting, Cholesky, Householder QR,
and the triangular solves that consume them.  They are written as
right-looking outer-product algorithms — the same data-parallel shape the
GPU kernels use — with the per-column update vectorized, so the arithmetic
actually performed matches the analytic counts in :mod:`repro.la.flops`.

scipy/LAPACK drivers are intentionally *not* called here; tests use scipy
only as an independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import NotPositiveDefiniteError, ShapeError, SingularMatrixError


def _require_square(a: np.ndarray, who: str) -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"{who} requires a square 2-D matrix, got shape {a.shape}")
    return a.shape[0]


@dataclass(frozen=True)
class LUFactors:
    """Packed LU factorization ``P A = L U``.

    ``lu`` stores L strictly below the diagonal (unit diagonal implied)
    and U on/above it; ``piv`` holds, for each elimination step k, the row
    swapped with row k (LAPACK ``getrf`` convention).
    """

    lu: np.ndarray
    piv: np.ndarray

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.lu.shape[0]

    def lower(self) -> np.ndarray:
        """Explicit unit-lower-triangular L factor (copy)."""
        lower = np.tril(self.lu, -1)
        np.fill_diagonal(lower, 1.0)
        return lower

    def upper(self) -> np.ndarray:
        """Explicit upper-triangular U factor (copy)."""
        return np.triu(self.lu)

    def permutation(self) -> np.ndarray:
        """Row permutation ``p`` such that ``A[p] = L @ U``."""
        perm = np.arange(self.n)
        for k, pk in enumerate(self.piv):
            perm[k], perm[pk] = perm[pk], perm[k]
        return perm


def lu_factor(a: np.ndarray, pivot_tol: float = DEFAULT_TOLERANCES.pivot) -> LUFactors:
    """Right-looking LU factorization with partial pivoting.

    Raises :class:`SingularMatrixError` when no acceptable pivot exists at
    some step (matrix is singular to within ``pivot_tol``).
    """
    n = _require_square(a, "lu_factor")
    lu = np.array(a, dtype=np.float64, copy=True)
    piv = np.zeros(n, dtype=np.int64)
    for k in range(n):
        col = np.abs(lu[k:, k])
        pk = k + int(np.argmax(col))
        if np.abs(lu[pk, k]) <= pivot_tol:
            raise SingularMatrixError("lu_factor", float(lu[pk, k]))
        piv[k] = pk
        if pk != k:
            lu[[k, pk], :] = lu[[pk, k], :]
        if k + 1 < n:
            lu[k + 1 :, k] /= lu[k, k]
            # Rank-1 (outer product) trailing update — the GPU-shaped step.
            lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return LUFactors(lu=lu, piv=piv)


def lu_factor_blocked(
    a: np.ndarray,
    block_size: int = 32,
    pivot_tol: float = DEFAULT_TOLERANCES.pivot,
) -> LUFactors:
    """Right-looking *blocked* LU with partial pivoting.

    The algorithm GPU libraries actually run: factor a narrow panel with
    the unblocked kernel, apply its row swaps across the matrix, solve
    the block row with a triangular solve, and update the trailing
    submatrix with one GEMM — turning 2/3·n³ of the work into large
    matrix-matrix multiplies.  Results are identical (same pivot choices)
    to :func:`lu_factor`.
    """
    n = _require_square(a, "lu_factor_blocked")
    lu = np.array(a, dtype=np.float64, copy=True)
    piv = np.zeros(n, dtype=np.int64)
    for k0 in range(0, n, block_size):
        k1 = min(k0 + block_size, n)
        # Panel factorization (unblocked on the tall panel).
        for k in range(k0, k1):
            col = np.abs(lu[k:, k])
            pk = k + int(np.argmax(col))
            if np.abs(lu[pk, k]) <= pivot_tol:
                raise SingularMatrixError("lu_factor_blocked", float(lu[pk, k]))
            piv[k] = pk
            if pk != k:
                lu[[k, pk], :] = lu[[pk, k], :]
            if k + 1 < n:
                lu[k + 1 :, k] /= lu[k, k]
                if k + 1 < k1:
                    # Rank-1 update restricted to the panel.
                    lu[k + 1 :, k + 1 : k1] -= np.outer(
                        lu[k + 1 :, k], lu[k, k + 1 : k1]
                    )
        if k1 < n:
            # Block row: solve L11 · U12 = A12 (unit lower triangular).
            l11 = np.tril(lu[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
            for j in range(k1, n, block_size):
                j1 = min(j + block_size, n)
                rhs = lu[k0:k1, j:j1]
                for r in range(k1 - k0):
                    if r:
                        rhs[r] -= l11[r, :r] @ rhs[:r]
            # Trailing update: one big GEMM.
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    return LUFactors(lu=lu, piv=piv)


def _apply_row_pivots(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    out = np.array(b, dtype=np.float64, copy=True)
    for k, pk in enumerate(piv):
        if pk != k:
            out[[k, pk]] = out[[pk, k]]
    return out


def _apply_row_pivots_transposed(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    out = np.array(b, dtype=np.float64, copy=True)
    for k in range(len(piv) - 1, -1, -1):
        pk = piv[k]
        if pk != k:
            out[[k, pk]] = out[[pk, k]]
    return out


def forward_substitution(
    lower: np.ndarray, b: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (vectorized per row)."""
    n = _require_square(lower, "forward_substitution")
    if b.shape[0] != n:
        raise ShapeError(f"rhs length {b.shape[0]} != matrix dim {n}")
    x = np.array(b, dtype=np.float64, copy=True)
    for i in range(n):
        if i:
            x[i] -= lower[i, :i] @ x[:i]
        if not unit_diagonal:
            diag = lower[i, i]
            if diag == 0.0:
                raise SingularMatrixError("forward_substitution", 0.0)
            x[i] /= diag
    return x


def back_substitution(upper: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (vectorized per row)."""
    n = _require_square(upper, "back_substitution")
    if b.shape[0] != n:
        raise ShapeError(f"rhs length {b.shape[0]} != matrix dim {n}")
    x = np.array(b, dtype=np.float64, copy=True)
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= upper[i, i + 1 :] @ x[i + 1 :]
        diag = upper[i, i]
        if diag == 0.0:
            raise SingularMatrixError("back_substitution", 0.0)
        x[i] /= diag
    return x


def lu_solve(factors: LUFactors, b: np.ndarray, transposed: bool = False) -> np.ndarray:
    """Solve ``A x = b`` (or ``A^T x = b``) from a packed LU factorization."""
    n = factors.n
    if b.shape[0] != n:
        raise ShapeError(f"rhs length {b.shape[0]} != matrix dim {n}")
    lu = factors.lu
    if not transposed:
        y = _apply_row_pivots(b, factors.piv)
        y = forward_substitution(lu, y, unit_diagonal=True)
        return back_substitution(lu, y)
    # A^T x = b  =>  U^T y = b, L^T z = y, x = P^T z.
    y = forward_substitution(np.triu(lu).T, np.asarray(b, dtype=np.float64))
    lt = np.tril(lu, -1).T
    x = np.array(y, copy=True)
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= lt[i, i + 1 :] @ x[i + 1 :]
    return _apply_row_pivots_transposed(x, factors.piv)


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Convenience: factor then solve ``A x = b``."""
    return lu_solve(lu_factor(a), b)


def cholesky(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a symmetric positive-definite matrix.

    Right-looking outer-product form; raises
    :class:`NotPositiveDefiniteError` on a non-positive pivot.
    """
    n = _require_square(a, "cholesky")
    l = np.array(a, dtype=np.float64, copy=True)
    for k in range(n):
        pivot = l[k, k]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise NotPositiveDefiniteError(
                f"cholesky pivot {pivot:.3e} at step {k}"
            )
        root = np.sqrt(pivot)
        l[k, k] = root
        if k + 1 < n:
            l[k + 1 :, k] /= root
            l[k + 1 :, k + 1 :] -= np.outer(l[k + 1 :, k], l[k + 1 :, k])
    return np.tril(l)


def qr_householder(a: np.ndarray) -> tuple:
    """Householder QR of an m×n matrix (m ≥ n): returns ``(Q, R)``.

    Q is m×m orthogonal, R is m×n upper-trapezoidal.  Used by the
    interior-point method's least-squares fallback and exposed for
    completeness of the LAPACK-like surface the paper calls for.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"qr_householder requires a 2-D matrix, got {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"qr_householder requires m >= n, got {a.shape}")
    r = a.copy()
    q = np.eye(m)
    for k in range(min(m - 1, n)):
        x = r[k:, k]
        normx = np.linalg.norm(x)
        if normx == 0.0:
            continue
        v = x.copy()
        v[0] += np.copysign(normx, x[0] if x[0] != 0 else 1.0)
        vnorm2 = v @ v
        if vnorm2 == 0.0:
            continue
        # Apply H = I - 2 v v^T / (v^T v) to the trailing block and to Q.
        r[k:, k:] -= np.outer(v, (2.0 / vnorm2) * (v @ r[k:, k:]))
        q[:, k:] -= np.outer(q[:, k:] @ v, (2.0 / vnorm2) * v)
    return q, np.triu(r)


def qr_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least-squares solve of ``A x ≈ b`` via Householder QR (m ≥ n)."""
    q, r = qr_householder(a)
    n = a.shape[1]
    rhs = q.T @ np.asarray(b, dtype=np.float64)
    return back_substitution(r[:n, :n], rhs[:n])
