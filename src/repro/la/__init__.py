"""Linear-algebra substrate: dense/sparse/batched kernels built from scratch.

This package is the computational core the paper's GPU MIP solver relies
on (paper §4).  Everything is implemented on NumPy *primitives* (element
wise ops, slicing, matmul) rather than delegating to LAPACK drivers, so
the operation mix — and therefore the simulated-device cost accounting —
matches what a cuBLAS/MAGMA-backed solver would issue:

- :mod:`repro.la.dense` — LU (partial pivoting), Cholesky, Householder QR,
  triangular solves.
- :mod:`repro.la.updates` — product-form-of-inverse eta files and
  Sherman–Morrison rank-1 updates (paper §4.3, §5.1).
- :mod:`repro.la.sparse` — CSR/CSC matrices from scratch.
- :mod:`repro.la.sparse_lu` — Gilbert–Peierls left-looking sparse LU with
  symbolic analysis and level scheduling (GLU-style, paper §4.2).
- :mod:`repro.la.batch` — MAGMA-style batched factor/solve over 3-D
  arrays (paper §4.3, §5.5).
- :mod:`repro.la.flops` — analytic flop/byte counts used by the device
  cost model.
"""

from repro.la.dense import (
    LUFactors,
    back_substitution,
    cholesky,
    forward_substitution,
    lu_factor,
    lu_factor_blocked,
    lu_solve,
    qr_householder,
    qr_solve,
    solve,
)
from repro.la.sparse import CSCMatrix, CSRMatrix, coo_to_csr
from repro.la.sparse_lu import SparseLU, sparse_lu_factor
from repro.la.updates import EtaFile, ProductFormInverse, sherman_morrison_update
from repro.la.batch import (
    batched_back_substitution,
    batched_cholesky,
    batched_forward_substitution,
    batched_gemm,
    batched_lu_factor,
    batched_lu_solve,
)

__all__ = [
    "LUFactors",
    "lu_factor",
    "lu_factor_blocked",
    "lu_solve",
    "solve",
    "cholesky",
    "qr_householder",
    "qr_solve",
    "forward_substitution",
    "back_substitution",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "SparseLU",
    "sparse_lu_factor",
    "EtaFile",
    "ProductFormInverse",
    "sherman_morrison_update",
    "batched_lu_factor",
    "batched_lu_solve",
    "batched_cholesky",
    "batched_gemm",
    "batched_forward_substitution",
    "batched_back_substitution",
]
