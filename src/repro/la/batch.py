"""MAGMA-style batched dense kernels over 3-D arrays.

Paper §4.3 and §5.5: the ideal GPU linear-algebra support for MIP is a
*batch* routine — the same factorization or solve applied to many small
independent matrices in one launch, so thousands of SIMD cores stay busy
and the per-kernel launch latency is paid once per batch instead of once
per matrix.  These routines operate on arrays of shape ``(k, n, n)`` /
``(k, n)`` and vectorize every elimination step **across the batch
dimension** — precisely the execution shape of a batched GPU kernel,
where step ``t`` of every matrix in the batch runs in lockstep.

Experiment E10 uses these to reproduce the batched-vs-looped crossover.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import NotPositiveDefiniteError, ShapeError, SingularMatrixError


def _require_batch_square(a: np.ndarray, who: str) -> Tuple[int, int]:
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ShapeError(f"{who} requires shape (k, n, n), got {a.shape}")
    return a.shape[0], a.shape[1]


def batched_lu_factor(
    a: np.ndarray, pivot_tol: float = DEFAULT_TOLERANCES.pivot
) -> Tuple[np.ndarray, np.ndarray]:
    """LU with partial pivoting on every matrix of a ``(k, n, n)`` batch.

    Returns ``(lu, piv)`` with ``lu`` packed as in
    :class:`repro.la.dense.LUFactors` and ``piv`` of shape ``(k, n)``.
    All k eliminations advance in lockstep; raises
    :class:`SingularMatrixError` naming the first singular batch member.
    """
    k, n = _require_batch_square(a, "batched_lu_factor")
    lu = np.array(a, dtype=np.float64, copy=True)
    piv = np.zeros((k, n), dtype=np.int64)
    batch_ids = np.arange(k)
    for step in range(n):
        col = np.abs(lu[:, step:, step])  # (k, n-step)
        rel = np.argmax(col, axis=1)
        pivots = col[batch_ids, rel]
        bad = pivots <= pivot_tol
        if bad.any():
            first = int(np.argmax(bad))
            raise SingularMatrixError(
                f"batched_lu_factor (batch member {first}, step {step})",
                float(pivots[first]),
            )
        pk = step + rel
        piv[:, step] = pk
        # Lockstep row swap: gather both rows across the batch and swap.
        need = pk != step
        if need.any():
            ids = batch_ids[need]
            rows_k = lu[ids, step, :].copy()
            lu[ids, step, :] = lu[ids, pk[need], :]
            lu[ids, pk[need], :] = rows_k
        if step + 1 < n:
            pivot_vals = lu[:, step, step][:, None]  # (k, 1)
            lu[:, step + 1 :, step] /= pivot_vals[:, 0][:, None]
            # Batched rank-1 trailing update via einsum (k outer products).
            lu[:, step + 1 :, step + 1 :] -= np.einsum(
                "ki,kj->kij", lu[:, step + 1 :, step], lu[:, step, step + 1 :]
            )
    return lu, piv


def batched_apply_pivots(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply recorded row swaps to a ``(k, n)`` batch of right-hand sides."""
    out = np.array(b, dtype=np.float64, copy=True)
    k, n = out.shape
    batch_ids = np.arange(k)
    for step in range(n):
        pk = piv[:, step]
        need = pk != step
        if need.any():
            ids = batch_ids[need]
            tmp = out[ids, step].copy()
            out[ids, step] = out[ids, pk[need]]
            out[ids, pk[need]] = tmp
    return out


def batched_forward_substitution(
    lower: np.ndarray, b: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``L x = b`` for every batch member (lockstep rows)."""
    k, n = _require_batch_square(lower, "batched_forward_substitution")
    if b.shape != (k, n):
        raise ShapeError(f"rhs shape {b.shape} != ({k}, {n})")
    x = np.array(b, dtype=np.float64, copy=True)
    for i in range(n):
        if i:
            x[:, i] -= np.einsum("kj,kj->k", lower[:, i, :i], x[:, :i])
        if not unit_diagonal:
            diag = lower[:, i, i]
            if np.any(diag == 0.0):
                raise SingularMatrixError("batched_forward_substitution", 0.0)
            x[:, i] /= diag
    return x


def batched_back_substitution(upper: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for every batch member (lockstep rows)."""
    k, n = _require_batch_square(upper, "batched_back_substitution")
    if b.shape != (k, n):
        raise ShapeError(f"rhs shape {b.shape} != ({k}, {n})")
    x = np.array(b, dtype=np.float64, copy=True)
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[:, i] -= np.einsum("kj,kj->k", upper[:, i, i + 1 :], x[:, i + 1 :])
        diag = upper[:, i, i]
        if np.any(diag == 0.0):
            raise SingularMatrixError("batched_back_substitution", 0.0)
        x[:, i] /= diag
    return x


def batched_lu_solve(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Solve ``A x = b`` for a batch from packed batched LU factors.

    ``lu``/``piv`` come from :func:`batched_lu_factor`; ``b`` has shape
    ``(k, n)``.
    """
    k, n = _require_batch_square(lu, "batched_lu_solve")
    if b.shape != (k, n):
        raise ShapeError(f"rhs shape {b.shape} != ({k}, {n})")
    y = batched_apply_pivots(b, piv)
    y = batched_forward_substitution(lu, y, unit_diagonal=True)
    return batched_back_substitution(lu, y)


def batched_cholesky(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of every matrix in a ``(k, n, n)`` batch."""
    k, n = _require_batch_square(a, "batched_cholesky")
    l = np.array(a, dtype=np.float64, copy=True)
    for step in range(n):
        pivots = l[:, step, step]
        if np.any(pivots <= 0.0) or not np.all(np.isfinite(pivots)):
            first = int(np.argmax((pivots <= 0.0) | ~np.isfinite(pivots)))
            raise NotPositiveDefiniteError(
                f"batched_cholesky pivot {pivots[first]:.3e} "
                f"(batch member {first}, step {step})"
            )
        roots = np.sqrt(pivots)
        l[:, step, step] = roots
        if step + 1 < n:
            l[:, step + 1 :, step] /= roots[:, None]
            l[:, step + 1 :, step + 1 :] -= np.einsum(
                "ki,kj->kij", l[:, step + 1 :, step], l[:, step + 1 :, step]
            )
    # Zero the strict upper triangles batch-wide.
    tri = np.tril(np.ones((n, n), dtype=bool))
    return l * tri


def batched_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matrix multiply: ``(k, m, p) @ (k, p, n) -> (k, m, n)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 3 or b.ndim != 3 or a.shape[0] != b.shape[0]:
        raise ShapeError(f"batched_gemm shapes {a.shape} x {b.shape}")
    if a.shape[2] != b.shape[1]:
        raise ShapeError(f"batched_gemm inner dims {a.shape[2]} != {b.shape[1]}")
    return np.matmul(a, b)
