"""Compressed sparse row/column matrices, implemented from scratch.

The paper (§4.2, §5.4) requires a sparse code path distinct from the
dense one: CSR for row-oriented operations (SpMV, appending cut rows) and
CSC for the column-oriented access pattern of simplex pricing and sparse
LU.  scipy.sparse is deliberately not used — the storage layout and the
operation mix are part of what the simulated device prices.

Construction is via COO triplets or dense arrays; all structural
invariants (sorted indices within a row/column, monotone indptr, in-range
indices) are validated and enforced, and violations raise
:class:`SparseFormatError`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import ShapeError, SparseFormatError


def _validate_compressed(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, major: int, minor: int
) -> None:
    if indptr.ndim != 1 or indptr.shape[0] != major + 1:
        raise SparseFormatError(
            f"indptr length {indptr.shape[0]} != major dim + 1 = {major + 1}"
        )
    if indptr[0] != 0 or indptr[-1] != data.shape[0]:
        raise SparseFormatError("indptr must start at 0 and end at nnz")
    if np.any(np.diff(indptr) < 0):
        raise SparseFormatError("indptr must be non-decreasing")
    if indices.shape != data.shape:
        raise SparseFormatError("indices and data must have equal length")
    if data.shape[0] and (indices.min() < 0 or indices.max() >= minor):
        raise SparseFormatError("index out of range")


def _sort_within_segments(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort (indices, data) within each indptr segment; returns new arrays."""
    indices = indices.copy()
    data = data.copy()
    for i in range(indptr.shape[0] - 1):
        lo, hi = indptr[i], indptr[i + 1]
        if hi - lo > 1:
            order = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][order]
            data[lo:hi] = data[lo:hi][order]
    return indices, data


class CSRMatrix:
    """Compressed sparse row matrix over float64.

    Immutable in structure once built; the cut-incorporation path
    (paper §5.2) produces *new* matrices via :meth:`vstack_rows`, which is
    how an append-only device-resident layout behaves.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
        sort: bool = True,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            _validate_compressed(
                self.indptr, self.indices, self.data, self.shape[0], self.shape[1]
            )
        if sort:
            self.indices, self.data = _sort_within_segments(
                self.indptr, self.indices, self.data
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, drop_tol: float = DEFAULT_TOLERANCES.drop
    ) -> "CSRMatrix":
        """Compress a dense matrix, dropping entries below ``drop_tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"from_dense requires a 2-D array, got {dense.shape}")
        mask = np.abs(dense) > drop_tol
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(
            dense.shape, indptr, cols, dense[rows, cols], check=False, sort=False
        )

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        """All-zero matrix of the given shape."""
        return cls(
            shape,
            np.zeros(shape[0] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            check=False,
            sort=False,
        )

    # -- properties ---------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of entries stored (0 for an empty-shape matrix)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row."""
        return np.diff(self.indptr)

    # -- conversions --------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            out[i, self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def tocsc(self) -> "CSCMatrix":
        """Convert to CSC via a counting transpose."""
        m, n = self.shape
        col_counts = np.bincount(self.indices, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(col_counts, out=indptr[1:])
        indices = np.empty(self.nnz, dtype=np.int64)
        data = np.empty(self.nnz, dtype=np.float64)
        fill = indptr[:-1].copy()
        for i in range(m):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            for k in range(lo, hi):
                j = self.indices[k]
                p = fill[j]
                indices[p] = i
                data[p] = self.data[k]
                fill[j] = p + 1
        return CSCMatrix((m, n), indptr, indices, data, check=False, sort=False)

    def transpose(self) -> "CSRMatrix":
        """Transposed matrix, still in CSR layout."""
        csc = self.tocsc()
        return CSRMatrix(
            (self.shape[1], self.shape[0]),
            csc.indptr,
            csc.indices,
            csc.data,
            check=False,
            sort=False,
        )

    # -- operations ---------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``.

        Implemented as a segment-reduce over the flat data array — the
        same gather/reduce shape a CSR SpMV kernel has on a GPU.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ShapeError(f"matvec: x length {x.shape[0]} != {self.shape[1]}")
        if self.nnz == 0:
            return np.zeros(self.shape[0])
        products = self.data * x[self.indices]
        out = np.add.reduceat(
            np.concatenate([products, [0.0]]),
            np.minimum(self.indptr[:-1], self.nnz),
        )
        # reduceat yields garbage for empty rows; mask them to zero.
        empty = self.indptr[:-1] == self.indptr[1:]
        out[empty] = 0.0
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transposed product ``Aᵀ @ y`` via scatter-add."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape[0] != self.shape[0]:
            raise ShapeError(f"rmatvec: y length {y.shape[0]} != {self.shape[0]}")
        out = np.zeros(self.shape[1])
        row_ids = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )
        np.add.at(out, self.indices, self.data * y[row_ids])
        return out

    def get_row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i`` as views."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def vstack_rows(
        self, rows: Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> "CSRMatrix":
        """Append sparse rows (cut rows, paper §5.2) below this matrix.

        ``rows`` yields ``(col_indices, values)`` pairs.  Returns a new
        matrix; this one is unchanged.
        """
        new_indices = [self.indices]
        new_data = [self.data]
        ptr = [self.indptr]
        extra_counts = []
        for cols, vals in rows:
            cols = np.asarray(cols, dtype=np.int64)
            vals = np.asarray(vals, dtype=np.float64)
            if cols.shape != vals.shape:
                raise SparseFormatError("row indices/values length mismatch")
            if cols.size and (cols.min() < 0 or cols.max() >= self.shape[1]):
                raise SparseFormatError("row column index out of range")
            new_indices.append(cols)
            new_data.append(vals)
            extra_counts.append(cols.shape[0])
        if not extra_counts:
            return self
        tail = self.indptr[-1] + np.cumsum(extra_counts, dtype=np.int64)
        indptr = np.concatenate([self.indptr, tail])
        return CSRMatrix(
            (self.shape[0] + len(extra_counts), self.shape[1]),
            indptr,
            np.concatenate(new_indices),
            np.concatenate(new_data),
            check=False,
            sort=True,
        )

    def scale(self, alpha: float) -> "CSRMatrix":
        """New matrix with every stored entry multiplied by ``alpha``."""
        return CSRMatrix(
            self.shape, self.indptr, self.indices, self.data * float(alpha),
            check=False, sort=False,
        )

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Sparse matrix addition (union of patterns, duplicates summed)."""
        if self.shape != other.shape:
            raise ShapeError(f"add: shapes {self.shape} vs {other.shape}")
        m = self.shape[0]
        rows_self = np.repeat(np.arange(m), np.diff(self.indptr))
        rows_other = np.repeat(np.arange(m), np.diff(other.indptr))
        return coo_to_csr(
            self.shape,
            np.concatenate([rows_self, rows_other]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]),
        )

    def matmat(self, other: "CSRMatrix") -> "CSRMatrix":
        """Sparse-sparse product ``A @ B`` (row-by-row merge, CSR out)."""
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"matmat: inner dims {self.shape[1]} vs {other.shape[0]}"
            )
        m, n = self.shape[0], other.shape[1]
        out_rows, out_cols, out_vals = [], [], []
        for i in range(m):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            acc: dict = {}
            for k in range(lo, hi):
                col = int(self.indices[k])
                val = self.data[k]
                blo, bhi = other.indptr[col], other.indptr[col + 1]
                for p in range(blo, bhi):
                    j = int(other.indices[p])
                    acc[j] = acc.get(j, 0.0) + val * other.data[p]
            for j, v in acc.items():
                if abs(v) > DEFAULT_TOLERANCES.drop:
                    out_rows.append(i)
                    out_cols.append(j)
                    out_vals.append(v)
        return coo_to_csr(
            (m, n),
            np.asarray(out_rows, dtype=np.int64),
            np.asarray(out_cols, dtype=np.int64),
            np.asarray(out_vals, dtype=np.float64),
        )

    def select_columns(self, cols: np.ndarray) -> np.ndarray:
        """Dense submatrix of the selected columns (basis extraction)."""
        cols = np.asarray(cols, dtype=np.int64)
        out = np.zeros((self.shape[0], cols.shape[0]))
        pos_of = {int(c): k for k, c in enumerate(cols)}
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            for k in range(lo, hi):
                j = int(self.indices[k])
                if j in pos_of:
                    out[i, pos_of[j]] = self.data[k]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )


class CSCMatrix:
    """Compressed sparse column matrix over float64.

    Column access is O(column nnz), the pattern simplex pricing and the
    left-looking sparse LU (:mod:`repro.la.sparse_lu`) rely on.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
        sort: bool = True,
    ):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            _validate_compressed(
                self.indptr, self.indices, self.data, self.shape[1], self.shape[0]
            )
        if sort:
            self.indices, self.data = _sort_within_segments(
                self.indptr, self.indices, self.data
            )

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, drop_tol: float = DEFAULT_TOLERANCES.drop
    ) -> "CSCMatrix":
        """Compress a dense matrix column-wise."""
        return CSRMatrix.from_dense(dense, drop_tol).tocsc()

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.shape[0])

    @property
    def density(self) -> float:
        """Fraction of entries stored."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def get_col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j`` as views."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_dense(self, j: int) -> np.ndarray:
        """Column ``j`` expanded to a dense vector."""
        out = np.zeros(self.shape[0])
        rows, vals = self.get_col(j)
        out[rows] = vals
        return out

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            out[self.indices[lo:hi], j] = self.data[lo:hi]
        return out

    def tocsr(self) -> CSRMatrix:
        """Convert to CSR via a counting transpose."""
        m, n = self.shape
        transposed = CSRMatrix(
            (n, m), self.indptr, self.indices, self.data, check=False, sort=False
        ).tocsc()
        return CSRMatrix(
            (m, n),
            transposed.indptr,
            transposed.indices,
            transposed.data,
            check=False,
            sort=False,
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via column-wise scatter-add."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ShapeError(f"matvec: x length {x.shape[0]} != {self.shape[1]}")
        out = np.zeros(self.shape[0])
        col_ids = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * x[col_ids])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )


def coo_to_csr(
    shape: Tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    *,
    sum_duplicates: bool = True,
) -> CSRMatrix:
    """Build a CSR matrix from COO triplets, summing duplicates by default."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if not (rows.shape == cols.shape == vals.shape):
        raise SparseFormatError("COO triplet arrays must have equal length")
    if rows.size and (
        rows.min() < 0 or rows.max() >= shape[0] or cols.min() < 0 or cols.max() >= shape[1]
    ):
        raise SparseFormatError("COO index out of range")
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if sum_duplicates and rows.size:
        keys = rows * shape[1] + cols
        uniq, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(uniq.shape[0])
        np.add.at(summed, inverse, vals)
        rows = uniq // shape[1]
        cols = uniq % shape[1]
        vals = summed
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=shape[0]), out=indptr[1:])
    return CSRMatrix(shape, indptr, cols, vals, check=False, sort=False)
