"""Rank-1 basis updates: product form of inverse and Sherman–Morrison.

Paper §4.3/§5.1: the defining linear-algebra pattern of a simplex-based
MIP solver is *not* one factorization per solve but a long chain of rank-1
updates to a resident basis matrix — variables entering and leaving the
basis — with periodic refactorization.  The product form of inverse (PFI)
represents ``B⁻¹`` as a chain of elementary "eta" matrices applied to an
initial LU factorization; each simplex iteration appends one eta and
performs *zero* host↔device transfers when the factors live on the device
(the paper's §5.1 claim, measured in experiment E4).

The modified product form of inverse the paper cites ([28], extended in
[31]) is exactly this eta-chain scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import ShapeError, SingularMatrixError
from repro.la.dense import LUFactors, lu_factor, lu_solve


@dataclass(frozen=True)
class EtaFile:
    """One elementary (eta) matrix: identity except column ``pos``.

    Applying it costs O(n) — an axpy plus a scale — which is why a chain
    of etas is so much cheaper than refactorization per iteration.
    """

    pos: int
    column: np.ndarray  # full n-vector; column[pos] is the diagonal entry

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Return ``E x`` (in a new array)."""
        out = np.array(x, dtype=np.float64, copy=True)
        xr = out[self.pos]
        if xr != 0.0:
            out += self.column * xr
            out[self.pos] = self.column[self.pos] * xr
        else:
            out[self.pos] = 0.0
        return out

    def apply_transpose(self, y: np.ndarray) -> np.ndarray:
        """Return ``Eᵀ y`` (in a new array)."""
        out = np.array(y, dtype=np.float64, copy=True)
        # (Eᵀ y)_pos = eta · y, all other entries unchanged.
        out[self.pos] = float(self.column @ y)
        return out


def make_eta(w: np.ndarray, pos: int, pivot_tol: float = DEFAULT_TOLERANCES.pivot) -> EtaFile:
    """Build the eta matrix for replacing basis position ``pos``.

    ``w = B⁻¹ a_q`` is the ftran of the entering column; the update is
    singular when ``w[pos]`` vanishes (the entering column is dependent).
    """
    wr = float(w[pos])
    if abs(wr) <= pivot_tol:
        raise SingularMatrixError("eta update", wr)
    column = -np.asarray(w, dtype=np.float64) / wr
    column[pos] = 1.0 / wr
    return EtaFile(pos=pos, column=column)


class ProductFormInverse:
    """``B⁻¹`` as eta-chain ∘ LU(B₀), with refactorization support.

    This is the basis-management object the revised simplex keeps resident
    on the (simulated) device.  ``ftran`` solves ``B x = b``; ``btran``
    solves ``Bᵀ y = c``; ``update`` appends one eta per basis change.

    The eta representation differs from the true matrix E in
    :class:`EtaFile` only in bookkeeping: we store the *combined* column
    (off-pivot entries are the axpy coefficients, the pivot entry is the
    scale), so apply is two vector ops.
    """

    def __init__(self, basis_matrix: np.ndarray):
        n = basis_matrix.shape[0]
        if basis_matrix.ndim != 2 or basis_matrix.shape[1] != n:
            raise ShapeError(
                f"basis matrix must be square, got {basis_matrix.shape}"
            )
        self._n = n
        self._factors: LUFactors = lu_factor(basis_matrix)
        self._etas: List[EtaFile] = []

    @property
    def n(self) -> int:
        """Basis dimension."""
        return self._n

    @property
    def num_etas(self) -> int:
        """Number of rank-1 updates since the last refactorization."""
        return len(self._etas)

    def ftran(self, b: np.ndarray) -> np.ndarray:
        """Solve ``B x = b``: LU solve then apply etas oldest-first."""
        x = lu_solve(self._factors, b)
        for eta in self._etas:
            xr = x[eta.pos]
            if xr != 0.0:
                x = x + eta.column * xr
                x[eta.pos] = eta.column[eta.pos] * xr
            else:
                x[eta.pos] = 0.0
        return x

    def btran(self, c: np.ndarray) -> np.ndarray:
        """Solve ``Bᵀ y = c``: apply eta transposes newest-first, then LUᵀ."""
        y = np.array(c, dtype=np.float64, copy=True)
        for eta in reversed(self._etas):
            y[eta.pos] = float(eta.column @ y)
        return lu_solve(self._factors, y, transposed=True)

    def update(self, entering_column_ftran: np.ndarray, pos: int) -> None:
        """Record that basis position ``pos`` was replaced.

        ``entering_column_ftran`` must be ``self.ftran(a_q)`` for the
        entering column ``a_q`` (the simplex already computes it).
        """
        if entering_column_ftran.shape[0] != self._n:
            raise ShapeError(
                f"ftran column length {entering_column_ftran.shape[0]} != {self._n}"
            )
        self._etas.append(make_eta(entering_column_ftran, pos))

    def refactorize(self, basis_matrix: np.ndarray) -> None:
        """Drop the eta chain and refactorize the current basis matrix."""
        if basis_matrix.shape != (self._n, self._n):
            raise ShapeError(
                f"basis matrix shape {basis_matrix.shape} != ({self._n}, {self._n})"
            )
        self._factors = lu_factor(basis_matrix)
        self._etas = []

    def clone(self) -> "ProductFormInverse":
        """Independent copy sharing the (immutable) LU factors.

        The factors are never mutated in place — ``refactorize`` rebinds
        them — so the clone only needs its own eta list.  This is how a
        warm-started child solve pivots on the parent's resident
        factorization without corrupting it for the sibling (the §5.3
        reuse pattern across branch-and-bound children).
        """
        copy = object.__new__(ProductFormInverse)
        copy._n = self._n
        copy._factors = self._factors
        copy._etas = list(self._etas)
        return copy


def sherman_morrison_update(
    a_inv: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Sherman–Morrison: inverse of ``A + u vᵀ`` from ``A⁻¹``.

    Used as the dense explicit-inverse alternative to eta files in the E4
    ablation.  Raises :class:`SingularMatrixError` when the update makes
    the matrix singular (``1 + vᵀ A⁻¹ u ≈ 0``).
    """
    a_inv = np.asarray(a_inv, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    au = a_inv @ u
    denom = 1.0 + float(v @ au)
    if abs(denom) <= DEFAULT_TOLERANCES.pivot:
        raise SingularMatrixError("sherman-morrison", denom)
    va = v @ a_inv
    return a_inv - np.outer(au, va) / denom
