"""Left-looking sparse LU factorization (Gilbert–Peierls) with levels.

Paper §4.2 surveys GPU sparse LU work (GLU and successors, KLU, NICSLU):
all are left-looking column algorithms whose available parallelism is
exposed by *level scheduling* — columns whose dependencies are satisfied
can be factored concurrently, and the number of levels is the critical
path a GPU implementation must serialize.

This module implements:

- symbolic reachability (depth-first search through the partially built
  L structure) to predict each column's fill-in, exactly as
  Gilbert–Peierls do;
- numeric left-looking updates with partial pivoting;
- a post-factorization *level schedule* of the column dependency DAG,
  which the simulated device uses to price the factorization's parallel
  depth (few levels → GPU-friendly, many levels → serial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import ShapeError, SingularMatrixError
from repro.la.sparse import CSCMatrix


@dataclass
class SparseLU:
    """Result of a sparse LU factorization ``A[p, :] = L @ U``.

    ``l``/``u`` are CSC factors (L unit-diagonal, stored explicitly);
    ``row_perm`` maps factor row -> original row; ``levels`` assigns each
    column its level in the dependency DAG (level 0 columns depend on
    nothing); ``num_levels`` is the parallel critical path.
    """

    l: CSCMatrix
    u: CSCMatrix
    row_perm: np.ndarray
    levels: np.ndarray

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.l.shape[0]

    @property
    def factor_nnz(self) -> int:
        """Total stored entries in L and U (fill-in measure)."""
        return self.l.nnz + self.u.nnz

    @property
    def num_levels(self) -> int:
        """Parallel critical path length of the column DAG."""
        return int(self.levels.max()) + 1 if self.levels.size else 0

    @property
    def fill_ratio(self) -> float:
        """Factor nnz relative to a dense factorization's n²."""
        return self.factor_nnz / float(self.n * self.n)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the sparse factors."""
        n = self.n
        if b.shape[0] != n:
            raise ShapeError(f"rhs length {b.shape[0]} != matrix dim {n}")
        # Apply the row permutation, then sparse forward/back substitution.
        y = np.asarray(b, dtype=np.float64)[self.row_perm].copy()
        # Forward: L y' = y, column-oriented (L unit diagonal).
        for j in range(n):
            rows, vals = self.l.get_col(j)
            yj = y[j]
            if yj != 0.0:
                below = rows > j
                y[rows[below]] -= vals[below] * yj
        # Backward: U x = y'.
        x = y
        for j in range(n - 1, -1, -1):
            rows, vals = self.u.get_col(j)
            diag_mask = rows == j
            if not diag_mask.any():
                raise SingularMatrixError("sparse_lu solve", 0.0)
            x[j] /= vals[diag_mask][0]
            xj = x[j]
            if xj != 0.0:
                above = rows < j
                x[rows[above]] -= vals[above] * xj
        return x


def _reach(
    col_rows: np.ndarray,
    l_struct: List[np.ndarray],
    pinv: np.ndarray,
) -> List[int]:
    """Columns of L that update the current column, in DFS postorder.

    Depth-first search from the nonzero rows of the current column
    through the structure of the already-computed L columns, following
    the Gilbert–Peierls symbolic phase.  ``pinv[row]`` is the pivot
    column owning ``row`` (or -1 if the row is not yet pivotal).
    """
    visited = set()
    topo: List[int] = []
    for start_row in col_rows:
        k = pinv[start_row]
        if k < 0 or k in visited:
            continue
        # Iterative DFS with explicit stack (avoids recursion limits).
        stack: List[Tuple[int, int]] = [(int(k), 0)]
        path = {int(k)}
        while stack:
            node, idx = stack[-1]
            children = l_struct[node]
            advanced = False
            while idx < len(children):
                child = pinv[children[idx]]
                idx += 1
                if child >= 0 and child not in visited and child not in path:
                    stack[-1] = (node, idx)
                    stack.append((int(child), 0))
                    path.add(int(child))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.discard(node)
                if node not in visited:
                    visited.add(node)
                    topo.append(node)
    return topo


def sparse_lu_factor(
    a: CSCMatrix, pivot_tol: float = DEFAULT_TOLERANCES.pivot
) -> SparseLU:
    """Factor a square CSC matrix with partial pivoting.

    Returns :class:`SparseLU`; raises :class:`SingularMatrixError` when a
    column has no acceptable pivot.
    """
    m, n = a.shape
    if m != n:
        raise ShapeError(f"sparse_lu_factor requires square input, got {a.shape}")

    # pinv[original_row] = pivot column owning that row, or -1.
    pinv = np.full(n, -1, dtype=np.int64)
    perm = np.full(n, -1, dtype=np.int64)  # perm[k] = original row of pivot k

    # L columns: structure (original row ids, below-pivot only) + values.
    l_rows: List[np.ndarray] = []
    l_vals: List[np.ndarray] = []
    u_rows: List[np.ndarray] = []  # pivot-column ids (k), including diagonal
    u_vals: List[np.ndarray] = []
    # Column dependency levels for the GPU schedule.
    levels = np.zeros(n, dtype=np.int64)

    work = np.zeros(n)  # dense scatter workspace indexed by original row

    for j in range(n):
        rows_j, vals_j = a.get_col(j)
        work[rows_j] = vals_j
        pattern = set(int(r) for r in rows_j)

        # _reach returns postorder (dependents first); reverse it so each
        # column's multiplier is final before the column is applied.
        topo = list(reversed(_reach(rows_j, l_rows, pinv)))
        level_j = 0
        for k in topo:
            xk = work[perm[k]]
            if xk != 0.0:
                lr = l_rows[k]
                work[lr] -= l_vals[k] * xk
                pattern.update(int(r) for r in lr)
            level_j = max(level_j, int(levels[k]) + 1)
        levels[j] = level_j

        # Partition the pattern into pivotal (U) and non-pivotal (L) rows.
        pat = np.fromiter(pattern, dtype=np.int64, count=len(pattern))
        pivotal_mask = pinv[pat] >= 0
        u_part = pat[pivotal_mask]
        l_part = pat[~pivotal_mask]

        if l_part.size == 0:
            work[pat] = 0.0
            raise SingularMatrixError("sparse_lu_factor", 0.0)
        pivot_idx = int(np.argmax(np.abs(work[l_part])))
        pivot_row = int(l_part[pivot_idx])
        pivot_val = work[pivot_row]
        if abs(pivot_val) <= pivot_tol:
            work[pat] = 0.0
            raise SingularMatrixError("sparse_lu_factor", float(pivot_val))

        perm[j] = pivot_row
        pinv[pivot_row] = j

        # U column j: entries at pivotal rows (by pivot order) + diagonal.
        uk = pinv[u_part]
        u_rows.append(np.concatenate([uk, [j]]).astype(np.int64))
        u_vals.append(np.concatenate([work[u_part], [pivot_val]]))

        # L column j: remaining rows scaled by the pivot.
        rest = l_part[l_part != pivot_row]
        keep = np.abs(work[rest]) > 0.0
        rest = rest[keep]
        l_rows.append(rest)
        l_vals.append(work[rest] / pivot_val)

        work[pat] = 0.0

    row_perm = perm.copy()

    # Assemble CSC factors in pivot-row coordinates.
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    u_indptr = np.zeros(n + 1, dtype=np.int64)
    l_indptr[1:] = np.cumsum([r.size + 1 for r in l_rows])  # +1 unit diagonal
    u_indptr[1:] = np.cumsum([r.size for r in u_rows])

    l_idx = np.empty(int(l_indptr[-1]), dtype=np.int64)
    l_dat = np.empty(int(l_indptr[-1]))
    for j in range(n):
        lo = int(l_indptr[j])
        l_idx[lo] = j
        l_dat[lo] = 1.0
        mapped = pinv[l_rows[j]]
        l_idx[lo + 1 : lo + 1 + mapped.size] = mapped
        l_dat[lo + 1 : lo + 1 + mapped.size] = l_vals[j]

    u_idx = np.concatenate(u_rows) if u_rows else np.zeros(0, dtype=np.int64)
    u_dat = np.concatenate(u_vals) if u_vals else np.zeros(0)

    l = CSCMatrix((n, n), l_indptr, l_idx, l_dat, check=False, sort=True)
    u = CSCMatrix((n, n), u_indptr, u_idx, u_dat, check=False, sort=True)
    return SparseLU(l=l, u=u, row_perm=row_perm, levels=levels)
