"""Analytic flop and byte counts for the kernels the MIP solver issues.

These formulas drive the simulated-device cost model
(:mod:`repro.device.kernels`).  They use the standard dense counts from
Golub & Van Loan and treat a fused multiply-add as two flops, matching
how GPU vendors quote peak rates.
"""

from __future__ import annotations

FLOAT64_BYTES = 8


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops for C(m,n) += A(m,k) @ B(k,n)."""
    return 2 * m * n * k


def gemv_flops(m: int, n: int) -> int:
    """Flops for y(m) += A(m,n) @ x(n)."""
    return 2 * m * n


def dot_flops(n: int) -> int:
    """Flops for an n-element dot product."""
    return 2 * n


def axpy_flops(n: int) -> int:
    """Flops for y += alpha * x over n elements."""
    return 2 * n


def lu_flops(n: int) -> int:
    """Flops for LU factorization of an n×n matrix (2/3 n^3)."""
    return (2 * n ** 3) // 3


def cholesky_flops(n: int) -> int:
    """Flops for Cholesky factorization of an n×n matrix (1/3 n^3)."""
    return n ** 3 // 3


def qr_flops(m: int, n: int) -> int:
    """Flops for Householder QR of an m×n matrix (2mn^2 - 2n^3/3)."""
    return max(0, 2 * m * n * n - (2 * n ** 3) // 3)


def trsv_flops(n: int) -> int:
    """Flops for a dense triangular solve with one right-hand side."""
    return n * n


def trsm_flops(n: int, nrhs: int) -> int:
    """Flops for a dense triangular solve with ``nrhs`` right-hand sides."""
    return n * n * nrhs


def spmv_flops(nnz: int) -> int:
    """Flops for sparse matrix-vector product with ``nnz`` stored entries."""
    return 2 * nnz


def sparse_lu_flops(factor_nnz: int) -> int:
    """Approximate flops for a sparse LU given the factor's fill-in.

    Gilbert–Peierls does ~2 flops per factor entry per update column; a
    widely used estimate is ``2 * sum_j (nnz in column j of L) * (nnz in
    row j of U)``, which we approximate as proportional to the square of
    the average column fill.  For the cost model we charge 4 flops per
    stored factor entry, the constant used by GLU-style analyses.
    """
    return 4 * factor_nnz


def gemm_bytes(m: int, n: int, k: int) -> int:
    """Bytes moved by a non-resident GEMM (read A, B; write C)."""
    return FLOAT64_BYTES * (m * k + k * n + m * n)


def gemv_bytes(m: int, n: int) -> int:
    """Bytes moved by a GEMV (read A, x; write y)."""
    return FLOAT64_BYTES * (m * n + n + m)


def vector_bytes(n: int) -> int:
    """Bytes for an n-element float64 vector."""
    return FLOAT64_BYTES * n


def matrix_bytes(m: int, n: int) -> int:
    """Bytes for a dense m×n float64 matrix."""
    return FLOAT64_BYTES * m * n


def csr_bytes(m: int, nnz: int, index_bytes: int = 4) -> int:
    """Bytes for a CSR matrix: values + column indices + row pointers."""
    return FLOAT64_BYTES * nnz + index_bytes * (nnz + m + 1)
