"""Lightweight counters and timing breakdowns used across the stack.

Every subsystem (device model, communicator, LP/MIP solvers) records its
activity into a :class:`Metrics` instance: named monotonically increasing
counters plus named accumulated simulated-time buckets.  Benchmarks read
these to report transfer counts, kernel launches, iteration totals, etc.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


@dataclass
class Metrics:
    """Named counters and simulated-time buckets.

    Counters are plain integers (``inc``); time buckets accumulate floats
    in simulated seconds (``add_time``).  Both are created on first use.
    """

    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    times: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        self.counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of simulated time into bucket ``name``."""
        self.times[name] += seconds

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def time(self, name: str) -> float:
        """Accumulated simulated seconds in bucket ``name`` (0.0 default)."""
        return self.times.get(name, 0.0)

    def merge(self, other: "Metrics") -> None:
        """Fold another metrics object into this one (sums per key)."""
        for key, val in other.counters.items():
            self.counters[key] += val
        for key, val in other.times.items():
            self.times[key] += val

    def reset(self) -> None:
        """Zero every counter and time bucket."""
        self.counters.clear()
        self.times.clear()

    def snapshot(self) -> "Metrics":
        """Deep copy suitable for before/after differencing."""
        snap = Metrics()
        snap.counters = defaultdict(int, self.counters)
        snap.times = defaultdict(float, self.times)
        return snap

    def diff(self, before: "Metrics") -> "Metrics":
        """Metrics accumulated since ``before`` (a prior :meth:`snapshot`)."""
        out = Metrics()
        for key, val in self.counters.items():
            delta = val - before.counters.get(key, 0)
            if delta:
                out.counters[key] = delta
        for key, val in self.times.items():
            delta = val - before.times.get(key, 0.0)
            if delta:
                out.times[key] = delta
        return out

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Structured ``{"counters": ..., "times": ...}`` view.

        Plain dicts with sorted keys — the stable form services and
        benchmarks emit instead of poking at ``counters``/``times``.
        """
        return {
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
            "times": {k: float(v) for k, v in sorted(self.times.items())},
        }

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(name, value)`` over counters then time buckets."""
        yield from self.counters.items()
        yield from self.times.items()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"{k}={v:.6g}s" for k, v in sorted(self.times.items())]
        return "Metrics(" + ", ".join(parts) + ")"
