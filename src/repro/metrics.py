"""Lightweight counters and timing breakdowns used across the stack.

Every subsystem (device model, communicator, LP/MIP solvers, the serve
layer) records its activity into a :class:`Metrics` instance: named
monotonically increasing counters plus named accumulated simulated-time
buckets.  Benchmarks read these to report transfer counts, kernel
launches, iteration totals, etc.

Since the :mod:`repro.obs` redesign, ``Metrics`` is a thin adapter over
:class:`repro.obs.registry.MetricsRegistry` — the same object now also
carries gauges and latency histograms (``observe`` / ``percentile``),
and the typed instrument API is available through ``.registry``.  The
legacy surface (``inc``/``add_time``/``merge``/``diff``/``snapshot``/
``to_dict``/``items`` and direct ``counters``/``times`` dict access)
is unchanged, and all iteration orders are deterministic (sorted keys).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.obs.registry import MetricsRegistry


class Metrics:
    """Named counters, time buckets, gauges, and histograms.

    Counters are plain integers (``inc``); time buckets accumulate
    floats in simulated seconds (``add_time``); histograms collect
    samples (``observe``) and export percentiles.  Everything is
    created on first use.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- shared storage (writable dict views, as before the redesign) ------------

    @property
    def counters(self) -> Dict[str, int]:
        """The registry's counter store (a live default-dict)."""
        return self.registry.counters

    @property
    def times(self) -> Dict[str, float]:
        """The registry's time-bucket store (a live default-dict)."""
        return self.registry.times

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        self.registry.counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of simulated time into bucket ``name``."""
        self.registry.times[name] += seconds

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        self.registry.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.registry.gauge(name).set(value)

    # -- reading -----------------------------------------------------------------

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.registry.counters.get(name, 0)

    def time(self, name: str) -> float:
        """Accumulated simulated seconds in bucket ``name`` (0.0 default)."""
        return self.registry.times.get(name, 0.0)

    def percentile(self, name: str, q: float) -> float:
        """q-th percentile (0–100) of histogram ``name`` (NaN if empty)."""
        return self.registry.percentile(name, q)

    def histogram(self, name: str):
        """Histogram ``name`` if it has samples, else None (no creation)."""
        return self.registry.histograms.get(name)

    # -- lifecycle ---------------------------------------------------------------

    def merge(self, other: "Metrics") -> None:
        """Fold another metrics object into this one (sums per key)."""
        self.registry.merge(other.registry)

    def reset(self) -> None:
        """Zero every counter, time bucket, gauge, and histogram."""
        self.registry.reset()

    def snapshot(self) -> "Metrics":
        """Deep copy suitable for before/after differencing."""
        return Metrics(self.registry.snapshot())

    def diff(self, before: "Metrics") -> "Metrics":
        """Metrics accumulated since ``before`` (a prior :meth:`snapshot`)."""
        return Metrics(self.registry.diff(before.registry))

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Structured ``{"counters": ..., "times": ...}`` view.

        Plain dicts with sorted keys — the stable form services and
        benchmarks emit instead of poking at ``counters``/``times``.
        ``gauges`` and ``histograms`` keys appear only when used.
        """
        return self.registry.to_dict()

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(name, value)`` over counters then time buckets.

        Deterministic: each family yields in sorted key order.
        """
        return self.registry.items()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"{k}={v:.6g}s" for k, v in sorted(self.times.items())]
        return "Metrics(" + ", ".join(parts) + ")"
