"""Iteration watchdogs: stall, divergence, cycling, NaN/Inf detection.

Every iterative engine (primal simplex, dual simplex, IPM, PDHG, and
the batched variants) reports progress through the same
:class:`GuardState` shape — an iteration counter, a scalar *merit*
(objective, duality measure, KKT residual: whatever the engine drives
toward its goal), and optionally the current iterate vector.  The
:class:`IterationWatchdog` turns that stream into one of five
:class:`WatchdogSignal` values; the engine maps non-``OK`` signals to a
structured status (``NUMERICAL``/``ITERATION_LIMIT``) instead of
iterating on garbage, and the escalation ladder
(:mod:`repro.guard.escalate`) decides what to try next.

Engines call :meth:`IterationWatchdog.observe` at their existing check
cadence (simplex every pricing round, PDHG at its KKT checks, IPM per
iteration) so the guarded hot path stays hot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np


class WatchdogSignal(enum.Enum):
    """Verdict of one watchdog observation."""

    OK = "ok"
    #: Merit has not improved for ``stall_window`` observations.
    STALL = "stall"
    #: Merit magnitude exploded past ``diverge_factor`` × initial scale.
    DIVERGED = "diverged"
    #: The same merit value keeps recurring without net progress.
    CYCLING = "cycling"
    #: NaN/Inf appeared in the merit or the iterate vector.
    NONFINITE = "nonfinite"

    @property
    def ok(self) -> bool:
        return self is WatchdogSignal.OK


class GuardState(Protocol):
    """What an engine exposes to the watchdog each observation."""

    iteration: int
    merit: float
    vector: Optional[np.ndarray]


@dataclass
class WatchdogOptions:
    """Detection thresholds shared by all engines."""

    #: Observations without merit improvement before declaring a stall.
    stall_window: int = 250
    #: Relative improvement below this does not reset the stall counter.
    stall_rtol: float = 1e-12
    #: |merit| beyond this multiple of the initial scale is divergence.
    diverge_factor: float = 1e10
    #: Exact merit repeats within the stall window before CYCLING.
    cycle_repeats: int = 5
    #: Check the iterate vector for NaN/Inf (costs one np.isfinite pass).
    check_vector: bool = True

    def __post_init__(self):
        from repro.errors import ReproError

        if self.stall_window <= 0:
            raise ReproError(
                f"stall_window must be positive, got {self.stall_window!r}"
            )
        if self.cycle_repeats <= 1:
            raise ReproError(
                f"cycle_repeats must exceed 1, got {self.cycle_repeats!r}"
            )
        if not self.diverge_factor > 1:
            raise ReproError(
                f"diverge_factor must exceed 1, got {self.diverge_factor!r}"
            )


class IterationWatchdog:
    """Progress monitor for one engine run.

    Direction-agnostic: pass ``sense="max"`` when larger merit is
    better (simplex objective), ``sense="min"`` when the engine drives
    merit to zero (IPM duality measure, PDHG KKT residual).
    """

    def __init__(
        self,
        engine: str,
        options: Optional[WatchdogOptions] = None,
        sense: str = "min",
    ):
        self.engine = engine
        self.options = options or WatchdogOptions()
        self.sign = -1.0 if sense == "max" else 1.0
        self.best: float = np.inf
        self.scale: Optional[float] = None
        self.since_improvement = 0
        self.repeats = 0
        self.last_merit: Optional[float] = None
        self.observations = 0

    def observe(
        self,
        iteration: int,
        merit: Optional[float] = None,
        vector: Optional[np.ndarray] = None,
    ) -> WatchdogSignal:
        """Digest one progress report; OK unless a pathology is seen."""
        self.observations += 1
        if vector is not None and self.options.check_vector:
            if not np.all(np.isfinite(vector)):
                return self._trip(WatchdogSignal.NONFINITE, iteration)
        if merit is None:
            return WatchdogSignal.OK
        merit = float(merit)
        if not np.isfinite(merit):
            return self._trip(WatchdogSignal.NONFINITE, iteration)
        if self.scale is None:
            self.scale = max(1.0, abs(merit))
        if abs(merit) > self.options.diverge_factor * self.scale:
            return self._trip(WatchdogSignal.DIVERGED, iteration)

        oriented = self.sign * merit
        threshold = self.best - self.options.stall_rtol * max(
            1.0, abs(self.best) if np.isfinite(self.best) else 1.0
        )
        if oriented < threshold:
            self.best = oriented
            self.since_improvement = 0
            self.repeats = 0
        else:
            self.since_improvement += 1
            if self.last_merit is not None and merit == self.last_merit:
                self.repeats += 1
            else:
                self.repeats = 0
        self.last_merit = merit

        if self.repeats >= self.options.cycle_repeats:
            return self._trip(WatchdogSignal.CYCLING, iteration)
        if self.since_improvement >= self.options.stall_window:
            return self._trip(WatchdogSignal.STALL, iteration)
        return WatchdogSignal.OK

    def _trip(self, signal: WatchdogSignal, iteration: int) -> WatchdogSignal:
        from repro.guard import budget as _budget

        ctx = _budget.active()
        if ctx is not None:
            ctx.note(
                "watchdog",
                engine=self.engine,
                signal=signal.value,
                iteration=int(iteration),
            )
        return signal
