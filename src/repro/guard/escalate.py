"""Escalation ladder: rescale → perturb → switch engine → exact fallback.

When an LP engine comes back without a usable status — iteration limit,
watchdog trip, numerical surrender — the ladder climbs through
progressively heavier remedies, each exactly auditable:

1. **rescale** — positive row equilibration of the standard form
   (``D A x = D b``).  The feasible set and optimum are unchanged;
   recovered duals are mapped back through ``D``.
2. **perturb** — a seeded, multiplicative ``O(1e-9)`` objective
   perturbation to break degenerate ties; the returned objective is
   re-evaluated against the *original* cost vector.
3. **switch engine** — hand the instance to the interior-point method,
   whose path-following iterations are immune to simplex cycling.
4. **exact fallback** — simplex with Bland's rule from iteration one
   and a 10× budget: slow, but finite-termination-guaranteed.

The ladder returns the first usable result plus the rungs it climbed;
if every rung fails it returns the least-bad result so callers can
still salvage an anytime answer.  Each climb emits a guard event.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.guard import budget as _budget
from repro.lp.interior_point import IPMOptions, interior_point_solve
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_standard_form

#: Statuses the ladder accepts as "usable" — anything that lets the
#: caller make sound progress (including proven infeasible/unbounded).
USABLE = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)

#: Rung names in climb order (for reports and tests).
LADDER = ("rescale", "perturb", "switch_engine", "exact_fallback")


@dataclass
class EscalationOutcome:
    """Result of one ladder climb."""

    result: LPResult
    #: Rungs attempted, in order ("" prefix-free names from LADDER).
    steps: List[str] = field(default_factory=list)

    @property
    def escalated(self) -> bool:
        return bool(self.steps)


def _note(step: str, status: LPStatus) -> None:
    ctx = _budget.active()
    if ctx is not None:
        ctx.note("escalate", step=step, status=status.value)


def rescale_standard_form(
    sf: StandardFormLP,
) -> Tuple[StandardFormLP, np.ndarray]:
    """Row-equilibrated copy plus the positive row scales used."""
    mag = np.max(np.abs(sf.a), axis=1) if sf.a.size else np.zeros(sf.m)
    scale = np.where(mag > 0, mag, 1.0)
    scaled = replace(
        sf,
        a=sf.a / scale[:, None],
        b=sf.b / scale,
        c=sf.c.copy(),
    )
    return scaled, scale


def perturb_standard_form(
    sf: StandardFormLP, seed: int = 0, magnitude: float = 1e-9
) -> StandardFormLP:
    """Seeded multiplicative objective perturbation (tie-breaking)."""
    rng = np.random.default_rng(seed + 0x5EED)
    jitter = 1.0 + magnitude * rng.uniform(0.5, 1.5, size=sf.c.shape[0])
    scale = max(1.0, float(np.max(np.abs(sf.c))) if sf.c.size else 1.0)
    additive = magnitude * scale * rng.uniform(0.5, 1.5, size=sf.c.shape[0])
    return replace(sf, c=sf.c * jitter + additive)


def escalate_lp(
    sf: StandardFormLP,
    options: Optional[SimplexOptions] = None,
    first: Optional[LPResult] = None,
    seed: int = 0,
    ipm_options: Optional[IPMOptions] = None,
) -> EscalationOutcome:
    """Climb the ladder for one standard-form LP.

    ``first`` is the already-failed baseline attempt (so callers don't
    pay for it twice); when omitted the ladder runs the plain solve as
    rung zero.  Deadline budgets still bind: the climb stops as soon as
    the active guard context reports an expired budget.
    """
    options = options or SimplexOptions()
    steps: List[str] = []
    if first is None:
        first = solve_standard_form(sf, options=options)
    if first.status in USABLE:
        return EscalationOutcome(result=first, steps=steps)
    best = first

    def better(candidate: LPResult, incumbent: LPResult) -> LPResult:
        # Prefer usable; among unusable keep the one with more progress.
        if candidate.status in USABLE:
            return candidate
        if incumbent.status in USABLE:
            return incumbent
        return candidate if candidate.iterations > incumbent.iterations else incumbent

    def expired() -> bool:
        ctx = _budget.active()
        return ctx is not None and ctx.deadline_hit()

    # Rung 1: row equilibration.
    if not expired():
        steps.append("rescale")
        scaled, scale = rescale_standard_form(sf)
        res = solve_standard_form(scaled, options=options)
        _note("rescale", res.status)
        if res.status in USABLE:
            if res.duals is not None:
                # (DA)ᵀ y' = c  ⇒  y = D y' solves Aᵀ y = c... row i of
                # the scaled dual corresponds to 1/scale_i of the true.
                res.duals = res.duals / scale
            return EscalationOutcome(result=res, steps=steps)
        best = better(res, best)

    # Rung 2: seeded objective perturbation.
    if not expired():
        steps.append("perturb")
        res = solve_standard_form(perturb_standard_form(sf, seed=seed), options=options)
        _note("perturb", res.status)
        if res.status in USABLE:
            if res.status is LPStatus.OPTIMAL and res.x_standard is not None:
                # Report the objective under the *original* costs.
                res.objective = sf.objective_value(res.x_standard)
            return EscalationOutcome(result=res, steps=steps)
        best = better(res, best)

    # Rung 3: switch engine — interior point.
    if not expired():
        steps.append("switch_engine")
        res = interior_point_solve(sf, options=ipm_options)
        _note("switch_engine", res.status)
        if res.status is LPStatus.OPTIMAL:
            return EscalationOutcome(result=res, steps=steps)
        best = better(res, best)

    # Rung 4: Bland's rule with a 10x budget — guaranteed finite.
    if not expired():
        steps.append("exact_fallback")
        budget = options.max_iterations
        exact = replace(
            options,
            pricing="bland",
            max_iterations=None if budget is None else 10 * budget,
        )
        res = solve_standard_form(sf, options=exact)
        _note("exact_fallback", res.status)
        if res.status in USABLE:
            return EscalationOutcome(result=res, steps=steps)
        best = better(res, best)

    return EscalationOutcome(result=best, steps=steps)
