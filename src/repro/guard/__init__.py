"""repro.guard — solver health: sanitation, watchdogs, budgets, escalation.

The fault-tolerance layer (:mod:`repro.faults`) covers *hardware and
process* failures; this package covers *numerical and time-budget*
failures, the other way solves go wrong in production:

- **problem sanitizer** (:mod:`repro.guard.sanitize`): validate/repair
  LP/MIP inputs — NaN/Inf coefficients, empty/duplicate rows, crossed
  bounds, extreme dynamic range — under repair/warn/reject policies;
- **iteration watchdogs** (:mod:`repro.guard.watchdog`): stall,
  divergence, cycling, and NaN/Inf detection hooked into simplex, dual
  simplex, IPM, PDHG, and the batched variants via one
  :class:`~repro.guard.watchdog.GuardState` shape;
- **deadline budgets** (:mod:`repro.guard.budget`): cooperative
  host/simulated-clock budgets threaded ``serve → api.solve → B&B →
  LP inner loops`` so a hit deadline yields a structured *anytime*
  result (``TIME_LIMIT``, incumbent + certified dual bound + gap);
- **escalation ladder** (:mod:`repro.guard.escalate`): rescale →
  perturb → switch engine → exact fallback for LPs that come back
  without a usable status;
- **gauntlet** (:mod:`repro.guard.gauntlet`): runs the pathological
  corpus (:mod:`repro.problems.pathological`) through the full stack —
  the ``repro guard`` CLI.

Every guard action emits a ``guard.*`` event through :mod:`repro.obs`
and is tallied on the active :class:`~repro.guard.budget.GuardContext`.

This module only imports :mod:`repro.guard.budget` and
:mod:`repro.guard.watchdog` eagerly — the sanitizer, ladder, and
gauntlet depend on the LP/MIP layers, which themselves import
``guard.budget``; the lazy attributes below keep ``guard.sanitize_lp``
and friends available without an import cycle.
"""

from repro.guard.budget import (
    DeadlineBudget,
    GuardContext,
    GuardEvent,
    ManualClock,
    active,
    deadline_hit,
    guarding,
)
from repro.guard.watchdog import (
    GuardState,
    IterationWatchdog,
    WatchdogOptions,
    WatchdogSignal,
)

_LAZY = {
    "SanitizeIssue": "repro.guard.sanitize",
    "SanitizeOptions": "repro.guard.sanitize",
    "SanitizePolicy": "repro.guard.sanitize",
    "SanitizeReport": "repro.guard.sanitize",
    "sanitize_lp": "repro.guard.sanitize",
    "sanitize_mip": "repro.guard.sanitize",
    "sanitize_problem": "repro.guard.sanitize",
    "EscalationOutcome": "repro.guard.escalate",
    "LADDER": "repro.guard.escalate",
    "escalate_lp": "repro.guard.escalate",
    "perturb_standard_form": "repro.guard.escalate",
    "rescale_standard_form": "repro.guard.escalate",
    "GauntletReport": "repro.guard.gauntlet",
    "GauntletRun": "repro.guard.gauntlet",
    "run_gauntlet": "repro.guard.gauntlet",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.guard' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "DeadlineBudget",
    "GuardContext",
    "GuardEvent",
    "ManualClock",
    "active",
    "deadline_hit",
    "guarding",
    "SanitizeIssue",
    "SanitizeOptions",
    "SanitizePolicy",
    "SanitizeReport",
    "sanitize_lp",
    "sanitize_mip",
    "sanitize_problem",
    "GuardState",
    "IterationWatchdog",
    "WatchdogOptions",
    "WatchdogSignal",
    "EscalationOutcome",
    "LADDER",
    "escalate_lp",
    "perturb_standard_form",
    "rescale_standard_form",
    "GauntletReport",
    "GauntletRun",
    "run_gauntlet",
]
