"""Cooperative deadline budgets and the active guard context.

The serving layer has per-request deadlines, but until now they only
governed *queue* time — once a member solve started, nothing could stop
it.  :class:`DeadlineBudget` threads a budget from
``serve → api.solve → B&B node loop → LP inner loops`` so every engine
can stop cooperatively and return a structured *anytime* answer
(``TIME_LIMIT`` status, best incumbent + certified dual bound) instead
of hanging or raising.

Budgets are clock-agnostic: the default clock is ``time.monotonic``
(host wall time), the serving layer installs budgets over the simulated
device clock, and tests use :class:`ManualClock` for deterministic
deadline hits.  A :class:`GuardContext` bundles budgets with watchdog
and sanitizer configuration and is installed with :func:`guarding`,
mirroring the ``repro.faults`` active-injector pattern.  Nested
contexts inherit the parent's budgets, so an outer serve deadline still
binds inside an inner ``api.solve`` context.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro import obs
from repro.errors import DeadlineExpired, ReproError


class ManualClock:
    """A hand-advanced clock for deterministic deadline tests."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` (negative steps are rejected)."""
        if dt < 0:
            raise ReproError("ManualClock cannot run backwards")
        self.now += dt

    def __call__(self) -> float:
        return self.now


class DeadlineBudget:
    """A budget of ``seconds`` on an arbitrary monotonic clock.

    ``expired`` is sticky: once the clock passes the deadline the budget
    stays expired, so hot loops can poll cheaply and trust the answer.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
        label: str = "host",
    ):
        if not seconds > 0:
            raise ReproError(
                f"deadline budget must be positive, got {seconds!r}"
            )
        self.seconds = float(seconds)
        self.clock = clock
        self.label = label
        self.start = float(clock())
        self._expired = False

    def elapsed(self) -> float:
        """Seconds consumed since the budget was created."""
        return float(self.clock()) - self.start

    def remaining(self) -> float:
        """Seconds left (clamped at zero)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the budget has run out (sticky)."""
        if not self._expired and self.elapsed() >= self.seconds:
            self._expired = True
        return self._expired

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExpired` if the budget has run out.

        For code paths with nothing partial to return (setup, presolve);
        iterative loops should poll :meth:`expired` and surrender with a
        ``TIME_LIMIT`` status instead.
        """
        if self.expired():
            raise DeadlineExpired(where, self.elapsed(), self.seconds)


@dataclass
class GuardEvent:
    """One recorded guard action (for reports and the gauntlet)."""

    kind: str
    detail: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, **self.detail}


class GuardContext:
    """The active solver-health configuration and event log.

    Holds any number of deadline budgets (host and simulated clocks may
    coexist), watchdog options for the iterative engines, and a counter
    map every guard site increments.  Install with :func:`guarding`.
    """

    def __init__(
        self,
        budgets: Optional[List[DeadlineBudget]] = None,
        watchdog: Optional[object] = None,
    ):
        # Watchdog options live in repro.guard.watchdog; kept as object
        # here to avoid an import cycle with the engines.
        self.budgets: List[DeadlineBudget] = list(budgets or [])
        self.watchdog_options = watchdog
        self.events: List[GuardEvent] = []
        self.counters: Dict[str, int] = {}
        self._hit = False

    def add_budget(self, budget: DeadlineBudget) -> DeadlineBudget:
        """Attach another budget (e.g. a sim-clock budget per member)."""
        self.budgets.append(budget)
        return budget

    def adopt(self, budget: DeadlineBudget) -> None:
        """Inherit a parent context's budget (no duplicates)."""
        if budget not in self.budgets:
            self.budgets.append(budget)

    def deadline_hit(self) -> bool:
        """True once *any* attached budget has expired (sticky)."""
        if self._hit:
            return True
        for budget in self.budgets:
            if budget.expired():
                self._hit = True
                self.note(
                    "deadline",
                    label=budget.label,
                    budget=budget.seconds,
                    elapsed=budget.elapsed(),
                )
                return True
        return False

    def remaining(self) -> float:
        """Tightest remaining budget across clocks (inf when unguarded)."""
        if not self.budgets:
            return float("inf")
        return min(b.remaining() for b in self.budgets)

    def check(self, where: str) -> None:
        """Raise on expiry — for phases with no anytime answer yet."""
        for budget in self.budgets:
            budget.check(where)

    def note(self, kind: str, **detail) -> None:
        """Record a guard event and mirror it to ``repro.obs``."""
        self.events.append(GuardEvent(kind=kind, detail=dict(detail)))
        self.counters[kind] = self.counters.get(kind, 0) + 1
        obs.event(f"guard.{kind}", category="guard", **detail)

    def summary(self) -> Dict:
        """Counter map plus the event log, JSON-ready."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "events": [e.to_dict() for e in self.events],
        }


_ACTIVE: Optional[GuardContext] = None


def active() -> Optional[GuardContext]:
    """The installed guard context, or None when guarding is off."""
    return _ACTIVE


def deadline_hit() -> bool:
    """Cheap hot-loop poll: True when an active budget has expired."""
    ctx = _ACTIVE
    return ctx is not None and ctx.deadline_hit()


@contextmanager
def guarding(ctx: Optional[GuardContext] = None) -> Iterator[GuardContext]:
    """Install ``ctx`` (or a fresh context) for the duration of the block.

    Unlike fault injection, guard contexts nest: the inner context
    adopts the outer one's budgets so an enclosing deadline still
    applies, and the outer context is restored on exit.
    """
    global _ACTIVE
    ctx = ctx if ctx is not None else GuardContext()
    prev = _ACTIVE
    if prev is not None:
        for budget in prev.budgets:
            ctx.adopt(budget)
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = prev
