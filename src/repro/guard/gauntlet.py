"""The guard gauntlet: run the pathological corpus through the stack.

For every :class:`~repro.problems.pathological.PathologicalCase` this
runs the full front door — sanitize (REPAIR policy), then solve through
:func:`repro.api.solve` under a deadline budget — and checks the
outcome against the case's declared expectation.  The contract being
enforced is the guard layer's core promise:

    **no uncaught exceptions, no hangs** — every pathological input
    becomes a structured verdict (rejected / repaired / infeasible /
    solved / anytime-with-bound).

``repro guard`` is the CLI wrapper; tests assert ``report.ok``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.errors import GuardError, ReproError, SanitizeError
from repro.guard.budget import DeadlineBudget, GuardContext, guarding
from repro.guard.sanitize import SanitizePolicy, sanitize_problem
from repro.problems.pathological import PathologicalCase, pathological_corpus

#: Solver statuses accepted as a structured anytime answer.
_ANYTIME = ("time_limit", "iteration_limit", "node_limit")


@dataclass
class GauntletRun:
    """One corpus case's trip through sanitize → solve."""

    case: str
    expect: str
    ok: bool
    #: What actually happened: "rejected" / "repaired" / "clean" /
    #: "infeasible" / a solver status value / "exception".
    outcome: str = ""
    detail: str = ""
    #: Codes the sanitizer repaired (empty when none).
    repaired: List[str] = field(default_factory=list)
    #: Guard event counters from the solve (deadline/watchdog/escalate).
    counters: Dict[str, int] = field(default_factory=dict)
    host_seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "case": self.case,
            "expect": self.expect,
            "ok": self.ok,
            "outcome": self.outcome,
            "detail": self.detail,
            "repaired": list(self.repaired),
            "counters": dict(self.counters),
            "host_seconds": self.host_seconds,
        }


@dataclass
class GauntletReport:
    """Outcome of one full corpus run."""

    runs: List[GauntletRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def to_dict(self) -> Dict:
        return {"ok": self.ok, "runs": [r.to_dict() for r in self.runs]}


def _run_case(case: PathologicalCase, deadline: float) -> GauntletRun:
    from repro.api import SolveOptions, solve

    run = GauntletRun(case=case.name, expect=case.expect, ok=False)
    started = time.perf_counter()
    try:
        problem = case.build()
        try:
            san = sanitize_problem(problem, policy=SanitizePolicy.REPAIR)
        except SanitizeError as exc:
            run.outcome = "rejected"
            run.detail = str(exc).splitlines()[0]
            run.ok = case.expect == "reject"
            return run
        run.repaired = list(san.repaired)
        if san.verdict == "infeasible":
            run.outcome = "infeasible"
            run.ok = case.expect == "infeasible"
            return run

        budget = case.deadline if case.deadline is not None else deadline
        ctx = GuardContext(
            budgets=[DeadlineBudget(budget, label="gauntlet")]
        )
        with guarding(ctx):
            report = solve(san.problem, SolveOptions())
        run.outcome = report.status
        run.counters = dict(ctx.counters)

        if case.expect == "repair":
            run.ok = bool(san.repaired) and report.status == "optimal"
            if not san.repaired:
                run.detail = "sanitizer repaired nothing"
        elif case.expect == "solve":
            run.ok = report.status == "optimal"
        elif case.expect == "infeasible":
            run.ok = report.status == "infeasible"
        elif case.expect == "anytime":
            if report.status in _ANYTIME:
                import math

                run.ok = math.isfinite(report.best_bound)
                if not run.ok:
                    run.detail = "anytime stop without a finite dual bound"
            elif report.status == "optimal":
                # Finished inside the budget — still a structured answer.
                run.ok = True
                run.detail = "finished within budget"
            else:
                run.detail = f"unexpected status {report.status!r}"
        else:
            run.detail = f"case declares unknown expectation {case.expect!r}"
    except GuardError as exc:
        run.outcome = "guard-error"
        run.detail = str(exc).splitlines()[0]
    except ReproError as exc:
        # Structured, typed — but the corpus expected better handling.
        run.outcome = "repro-error"
        run.detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 — the whole point of the gauntlet
        run.outcome = "exception"
        run.detail = f"UNCAUGHT {type(exc).__name__}: {exc}"
    finally:
        run.host_seconds = time.perf_counter() - started
    return run


def run_gauntlet(
    cases: Optional[List[PathologicalCase]] = None,
    deadline: float = 5.0,
    log_fn=None,
) -> GauntletReport:
    """Run the corpus (or ``cases``) and report per-case verdicts.

    ``deadline`` is the per-case host-seconds budget used when a case
    doesn't pin its own; it is the anti-hang backstop, so every solve
    in the gauntlet runs under *some* budget.
    """
    report = GauntletReport()
    for case in cases if cases is not None else pathological_corpus():
        run = _run_case(case, deadline)
        report.runs.append(run)
        obs.event(
            "guard.gauntlet", category="guard",
            case=run.case, ok=run.ok, outcome=run.outcome,
        )
        if log_fn is not None:
            mark = "ok " if run.ok else "FAIL"
            extra = f"  {run.detail}" if run.detail else ""
            log_fn(
                f"[{mark}] {run.case:<22} expect={run.expect:<10} "
                f"got={run.outcome}{extra}"
            )
    return report
