"""Problem sanitizer: validate and repair LP/MIP inputs before solving.

Garbage in a coefficient matrix does not fail loudly — it makes the
simplex pivot on NaN, PDHG derive a NaN step size, or branch-and-bound
wander a tree of nonsense bounds.  The sanitizer runs first and turns
each pathology into an explicit :class:`SanitizeIssue` with one of
three severities:

- **fatal** — not repairable without inventing data (NaN/Inf anywhere
  in ``c``/``A``/``b``/bounds).  Rejected under ``REPAIR``/``REJECT``.
- **repair** — fixable by an *exactly optimum-preserving* rewrite:
  dropping all-zero or duplicate rows, collapsing eps-crossed bounds,
  and positive row rescaling when the cross-row dynamic range explodes.
- **warn** — suspicious but not safely rewritable (extreme *within*-row
  dynamic range); recorded and left alone.

Two structural pathologies *prove infeasibility* during sanitation (an
all-zero row with an unsatisfiable rhs; duplicate equality rows with
conflicting rhs).  These set :attr:`SanitizeReport.verdict` so callers
can return ``INFEASIBLE`` without ever invoking a solver.

Repair is idempotent — sanitizing a repaired problem finds nothing new
to fix — and every rewrite preserves the feasible set and optimum
exactly (row scaling by a positive scalar, removal of redundant rows).
Gross bound crossings are impossible here: ``LinearProgram`` refuses
them at construction, so only eps-level crossings (≤ 1e-12) reach us.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import SanitizeError
from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem


class SanitizePolicy(enum.Enum):
    """What to do with the issues the sanitizer finds."""

    #: Fix repairable issues, reject fatal ones.
    REPAIR = "repair"
    #: Record everything, change nothing, never raise.
    WARN = "warn"
    #: Any issue at all rejects the instance.
    REJECT = "reject"


@dataclass
class SanitizeOptions:
    """Detection thresholds."""

    #: Coefficients below this count as structural zeros for row checks.
    zero_tol: float = DEFAULT_TOLERANCES.drop
    #: Feasibility slack allowed on an all-zero row's rhs.
    feasibility_tol: float = DEFAULT_TOLERANCES.feasibility
    #: Cross-row max/min row-magnitude ratio that triggers rescaling.
    range_limit: float = 1e10


@dataclass
class SanitizeIssue:
    """One detected pathology."""

    code: str
    where: str
    severity: str  # "fatal" | "repair" | "warn"
    detail: str = ""

    def __str__(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.severity}] {self.code} at {self.where}{tail}"

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "where": self.where,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass
class SanitizeReport:
    """Outcome of one sanitation pass."""

    problem: Union[LinearProgram, MIPProblem]
    policy: SanitizePolicy
    issues: List[SanitizeIssue] = field(default_factory=list)
    #: Issue codes actually fixed (REPAIR policy only).
    repaired: List[str] = field(default_factory=list)
    #: "infeasible" when sanitation *proved* the instance infeasible.
    verdict: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when no issues were found at all."""
        return not self.issues

    @property
    def fatal(self) -> List[SanitizeIssue]:
        return [i for i in self.issues if i.severity == "fatal"]

    def to_dict(self) -> Dict:
        return {
            "policy": self.policy.value,
            "clean": self.clean,
            "verdict": self.verdict,
            "repaired": list(self.repaired),
            "issues": [i.to_dict() for i in self.issues],
        }


# ---------------------------------------------------------------------------
# Detection helpers (operate on plain arrays; never mutate inputs)
# ---------------------------------------------------------------------------


def _scan_nonfinite(
    issues: List[SanitizeIssue], name: str, arr: Optional[np.ndarray]
) -> bool:
    if arr is None:
        return False
    bad = ~np.isfinite(arr)
    if name in ("lb", "ub"):
        # Infinite bounds are legitimate (free/unbounded variables);
        # only NaN is garbage there.
        bad = np.isnan(arr)
    if bad.any():
        where = np.argwhere(bad)[0]
        issues.append(
            SanitizeIssue(
                code="nonfinite_coeff",
                where=f"{name}[{','.join(str(int(i)) for i in where)}]",
                severity="fatal",
                detail=f"{int(bad.sum())} non-finite entries",
            )
        )
        return True
    return False


def _row_block_issues(
    a: np.ndarray,
    b: np.ndarray,
    kind: str,  # "ub" | "eq"
    options: SanitizeOptions,
    issues: List[SanitizeIssue],
) -> Tuple[np.ndarray, Optional[str]]:
    """Rows to keep (mask) + infeasibility verdict for one block."""
    m = a.shape[0]
    keep = np.ones(m, dtype=bool)
    verdict: Optional[str] = None
    row_mag = np.max(np.abs(a), axis=1) if a.size else np.zeros(m)

    # Empty (all-zero) rows: redundant when the rhs is satisfiable,
    # otherwise the row alone proves infeasibility.
    for i in np.nonzero(row_mag <= options.zero_tol)[0]:
        if kind == "ub":
            satisfiable = b[i] >= -options.feasibility_tol
        else:
            satisfiable = abs(b[i]) <= options.feasibility_tol
        if satisfiable:
            issues.append(
                SanitizeIssue(
                    code="empty_row",
                    where=f"a_{kind}[{i}]",
                    severity="repair",
                    detail="all-zero row with satisfiable rhs; dropped",
                )
            )
            keep[i] = False
        else:
            issues.append(
                SanitizeIssue(
                    code="empty_row_infeasible",
                    where=f"a_{kind}[{i}]",
                    severity="warn",
                    detail=f"0 ≤/= {b[i]:.6g} cannot hold",
                )
            )
            verdict = "infeasible"

    # Duplicate rows (exact coefficient equality only — anything fuzzier
    # would not be exactly optimum-preserving).
    seen: Dict[bytes, int] = {}
    for i in range(m):
        if not keep[i]:
            continue
        key = a[i].tobytes()
        j = seen.get(key)
        if j is None:
            seen[key] = i
            continue
        if kind == "ub":
            # Keep the tighter rhs; the looser row is redundant.
            if b[i] < b[j]:
                keep[j] = False
                seen[key] = i
                dropped = j
            else:
                keep[i] = False
                dropped = i
            issues.append(
                SanitizeIssue(
                    code="duplicate_row",
                    where=f"a_ub[{dropped}]",
                    severity="repair",
                    detail=f"duplicate of a_ub[{i if dropped == j else j}]; "
                    "kept tighter rhs",
                )
            )
        else:
            if abs(b[i] - b[j]) <= options.feasibility_tol:
                keep[i] = False
                issues.append(
                    SanitizeIssue(
                        code="duplicate_row",
                        where=f"a_eq[{i}]",
                        severity="repair",
                        detail=f"duplicate of a_eq[{j}]; dropped",
                    )
                )
            else:
                issues.append(
                    SanitizeIssue(
                        code="conflicting_rows",
                        where=f"a_eq[{i}]",
                        severity="warn",
                        detail=f"same coefficients as a_eq[{j}] but rhs "
                        f"{b[i]:.6g} ≠ {b[j]:.6g}",
                    )
                )
                verdict = "infeasible"
    return keep, verdict


def _range_issues(
    blocks: List[Tuple[str, np.ndarray]],
    options: SanitizeOptions,
    issues: List[SanitizeIssue],
) -> bool:
    """Detect dynamic-range pathologies; True when rescaling is needed."""
    mags: List[float] = []
    for name, a in blocks:
        if a is None or a.size == 0:
            continue
        for i in range(a.shape[0]):
            row = np.abs(a[i])
            nz = row[row > options.zero_tol]
            if nz.size == 0:
                continue
            mags.append(float(nz.max()))
            within = float(nz.max() / nz.min())
            if within > options.range_limit:
                issues.append(
                    SanitizeIssue(
                        code="dynamic_range_row",
                        where=f"{name}[{i}]",
                        severity="warn",
                        detail=f"within-row coefficient range {within:.3g}",
                    )
                )
    if not mags:
        return False
    cross = max(mags) / min(mags)
    if cross > options.range_limit:
        issues.append(
            SanitizeIssue(
                code="dynamic_range",
                where="rows",
                severity="repair",
                detail=f"cross-row magnitude range {cross:.3g}; "
                "rows rescaled to unit max",
            )
        )
        return True
    return False


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def _scan_once(
    lp: LinearProgram, options: SanitizeOptions
) -> Tuple[List[SanitizeIssue], bool, Optional[str], Optional[LinearProgram]]:
    """One detect-and-repair pass.

    Returns ``(issues, fatal, verdict, repaired_lp)`` where
    ``repaired_lp`` is None when nothing repairable was found.
    """
    issues: List[SanitizeIssue] = []
    verdict: Optional[str] = None

    fatal = False
    for name, arr in (
        ("c", lp.c),
        ("a_ub", lp.a_ub),
        ("b_ub", lp.b_ub),
        ("a_eq", lp.a_eq),
        ("b_eq", lp.b_eq),
        ("lb", lp.lb),
        ("ub", lp.ub),
    ):
        fatal |= _scan_nonfinite(issues, name, arr)
    if fatal:
        return issues, True, None, None

    # Eps-crossed bounds (construction rejects anything grosser).
    crossed = lp.lb > lp.ub
    for j in np.nonzero(crossed)[0]:
        issues.append(
            SanitizeIssue(
                code="crossed_bounds",
                where=f"x[{j}]",
                severity="repair",
                detail=f"lb {lp.lb[j]:.17g} > ub {lp.ub[j]:.17g}; "
                "interval reordered",
            )
        )
    keep_ub = keep_eq = None
    if lp.a_ub is not None:
        keep_ub, v = _row_block_issues(lp.a_ub, lp.b_ub, "ub", options, issues)
        verdict = verdict or v
    if lp.a_eq is not None:
        keep_eq, v = _row_block_issues(lp.a_eq, lp.b_eq, "eq", options, issues)
        verdict = verdict or v
    rescale = _range_issues(
        [("a_ub", lp.a_ub), ("a_eq", lp.a_eq)], options, issues
    )

    if not any(i.severity == "repair" for i in issues):
        return issues, False, verdict, None

    lb = lp.lb.copy()
    ub = lp.ub.copy()
    lo = np.minimum(lb[crossed], ub[crossed])
    hi = np.maximum(lb[crossed], ub[crossed])
    lb[crossed], ub[crossed] = lo, hi

    def repair_block(a, b, keep):
        if a is None:
            return None, None
        if keep is not None and not keep.all():
            a, b = a[keep], b[keep]
        else:
            a, b = a.copy(), b.copy()
        if a.shape[0] == 0:
            return None, None
        if rescale:
            # Positive row scaling: exactly feasible-set preserving.
            mag = np.max(np.abs(a), axis=1)
            scale = np.where(mag > options.zero_tol, mag, 1.0)
            a = a / scale[:, None]
            b = b / scale
        return a, b

    a_ub, b_ub = repair_block(lp.a_ub, lp.b_ub, keep_ub)
    a_eq, b_eq = repair_block(lp.a_eq, lp.b_eq, keep_eq)
    repaired_lp = LinearProgram(
        c=lp.c.copy(),
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lb=lb,
        ub=ub,
    )
    return issues, False, verdict, repaired_lp


def sanitize_lp(
    lp: LinearProgram,
    policy: SanitizePolicy = SanitizePolicy.REPAIR,
    options: Optional[SanitizeOptions] = None,
) -> SanitizeReport:
    """Scan (and under ``REPAIR``, rewrite) one LP.

    Never mutates ``lp``; the report's ``problem`` is either the input
    (no repairs / ``WARN``) or a repaired copy.  Under ``REPAIR`` the
    detect-and-fix pass iterates to a fixpoint — rescaling can expose
    new duplicate rows, for example — so sanitize(sanitize(p)) always
    equals sanitize(p).  Raises :class:`SanitizeError` per the policy
    table in the module docstring.
    """
    options = options or SanitizeOptions()
    issues, fatal, verdict, repaired = _scan_once(lp, options)

    report = SanitizeReport(problem=lp, policy=policy, issues=issues, verdict=verdict)

    if policy is SanitizePolicy.REJECT and issues:
        raise SanitizeError(issues)
    if policy is SanitizePolicy.WARN:
        return report
    # REPAIR: fatal issues cannot be fixed without inventing data.
    if fatal:
        raise SanitizeError(report.fatal)
    # Iterate repair to a fixpoint (bounded: each pass strictly shrinks
    # rows, fixes bounds, or normalizes scales, so 1 + rows passes cap).
    while repaired is not None:
        report.problem = repaired
        more, _, v, repaired = _scan_once(repaired, options)
        report.verdict = report.verdict or v
        report.issues.extend(i for i in more if i.severity == "repair")
    report.repaired = sorted(
        {i.code for i in report.issues if i.severity == "repair"}
    )

    if report.repaired:
        from repro.guard import budget as _budget

        ctx = _budget.active()
        if ctx is not None:
            ctx.note("sanitize", repaired=report.repaired, issues=len(report.issues))
    return report


def sanitize_mip(
    mip: MIPProblem,
    policy: SanitizePolicy = SanitizePolicy.REPAIR,
    options: Optional[SanitizeOptions] = None,
) -> SanitizeReport:
    """MIP variant: sanitize the LP data, carry the integer mask over."""
    lp = LinearProgram(
        c=mip.c,
        a_ub=mip.a_ub,
        b_ub=mip.b_ub,
        a_eq=mip.a_eq,
        b_eq=mip.b_eq,
        lb=mip.lb,
        ub=mip.ub,
    )
    report = sanitize_lp(lp, policy=policy, options=options)
    if report.problem is not lp:
        fixed = report.problem
        report.problem = MIPProblem(
            c=fixed.c,
            integer=mip.integer.copy(),
            a_ub=fixed.a_ub,
            b_ub=fixed.b_ub,
            a_eq=fixed.a_eq,
            b_eq=fixed.b_eq,
            lb=fixed.lb,
            ub=fixed.ub,
            name=mip.name,
        )
    else:
        report.problem = mip
    return report


def sanitize_problem(
    problem: Union[LinearProgram, MIPProblem],
    policy: SanitizePolicy = SanitizePolicy.REPAIR,
    options: Optional[SanitizeOptions] = None,
) -> SanitizeReport:
    """Dispatch on problem type."""
    if isinstance(problem, MIPProblem):
        return sanitize_mip(problem, policy=policy, options=options)
    return sanitize_lp(problem, policy=policy, options=options)
