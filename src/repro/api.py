"""repro.api — the single front door for solving LPs and MIPs.

Historically the repo grew three solve entry points: direct
:class:`repro.mip.solver.BranchAndBoundSolver` construction, the
strategy runner (:mod:`repro.strategies.runner`), and the serving
layer's internal per-member path.  :func:`solve` consolidates them:

    from repro.api import solve, SolveOptions

    report = solve(problem)                                  # host-exact
    report = solve(problem, SolveOptions(strategy="hybrid")) # metered §5
    report = solve(problem, SolveOptions(trace=True))        # + timeline

Strategy names resolve through :mod:`repro.strategies.registry`; the
CLI and :class:`repro.serve.SolveService` both route through here, so a
new registered engine is immediately reachable from every surface.

:class:`SolveReport` is the one result shape — status, objective,
incumbent, bounds, per-device metrics, and the trace id — with
``to_dict()`` mirroring :meth:`StrategyReport.to_dict` and
:meth:`repro.serve.SolveResponse.to_dict`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Union

import numpy as np

from repro import obs
from repro.device.gpu import Device
from repro.device import kernels as K
from repro.errors import FaultError, NumericalInstabilityError, ReproError
from repro.faults import injector as faults
from repro.guard.budget import DeadlineBudget, GuardContext, guarding
from repro.faults.plan import SITE_NODE, FaultPlan
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import solve_standard_form
from repro.mip.problem import MIPProblem
from repro.mip.portfolio import PortfolioOptions, run_portfolio
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.solver import BranchAndBoundSolver, ExecutionEngine, SolverOptions
from repro.strategies import registry

Problem = Union[LinearProgram, MIPProblem]

#: Statuses that terminate a solve with a definitive answer.
TERMINAL_LP = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)
TERMINAL_MIP = (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED)


class SolveMode(enum.Enum):
    """Quality-vs-latency contract for a MIP solve.

    - ``EXACT`` — branch and bound to proven optimality (the historical
      behaviour, and the only mode plain LPs accept).
    - ``HEURISTIC_FIRST`` — run the batched primal-heuristic portfolio
      (:mod:`repro.mip.portfolio`) before branch and bound; its best
      certified incumbent pre-prunes the tree, and ``gap_target`` (when
      given) relaxes the proof so the search can stop early.
    - ``HEURISTIC_ONLY`` — portfolio only, no tree search.  Returns the
      best certified incumbent with an honest gap against the root
      relaxation's dual bound (``inf`` when the relaxation is unbounded),
      status ``"heuristic"`` or ``"no_incumbent"``.
    """

    EXACT = "exact"
    HEURISTIC_FIRST = "heuristic_first"
    HEURISTIC_ONLY = "heuristic_only"


@dataclass
class SolveOptions:
    """Everything :func:`solve` needs beyond the problem itself."""

    #: Registered strategy name ("direct" = exact host engine, free).
    strategy: str = "direct"
    #: Branch-and-cut configuration (ignored for plain LPs).
    solver: SolverOptions = field(default_factory=SolverOptions)
    #: Explicit engine instance; overrides ``strategy`` when given.
    engine: Optional[ExecutionEngine] = None
    #: Charge the solve's kernel stream to this simulated device
    #: (the serving layer's per-member path).
    device: Optional[Device] = None
    #: With ``device``: node-level batch size for the batched-node MIP
    #: solver (0 = plain branch-and-cut on the chosen engine).
    mip_node_batch: int = 0
    #: Install a fresh tracer for this call when none is active; the
    #: tracer is attached to the report for export.
    trace: bool = False
    #: Seeded fault-injection plan for this call (see :mod:`repro.faults`).
    #: Installs a fresh injector when none is active; the final fault
    #: accounting lands in ``SolveReport.metrics["faults"]``.
    fault_plan: Optional[FaultPlan] = None
    #: Host-seconds budget for this call.  Installs a guard context (or
    #: adds a budget to the active one) so a mid-solve expiry returns a
    #: structured anytime report — status ``"time_limit"``, best
    #: incumbent, certified dual bound, gap — instead of hanging.
    deadline: Optional[float] = None
    #: Run the problem sanitizer first: "repair", "warn", or "reject"
    #: (see :mod:`repro.guard.sanitize`).  The sanitation report lands
    #: in ``SolveReport.metrics["sanitize"]``.
    sanitize: Optional[str] = None
    #: Quality-vs-latency contract (see :class:`SolveMode`); accepts the
    #: enum or its string value.  Non-exact modes apply to MIPs only.
    mode: Union[SolveMode, str] = SolveMode.EXACT
    #: Relative-gap goal for the non-exact modes.  ``heuristic_first``
    #: folds it into the branch-and-bound stopping gap;
    #: ``heuristic_only`` reports whether the portfolio met it
    #: (``metrics["portfolio"]["gap_target_met"]``).  Optional: without
    #: it, heuristic_first proves full optimality and heuristic_only
    #: simply returns its best certified incumbent.
    gap_target: Optional[float] = None
    #: Portfolio configuration for the non-exact modes (defaulted when
    #: omitted).  Takes precedence over ``solver.portfolio``.
    portfolio: Optional[PortfolioOptions] = None

    def __post_init__(self):
        if isinstance(self.mode, str):
            try:
                self.mode = SolveMode(self.mode)
            except ValueError:
                valid = ", ".join(repr(m.value) for m in SolveMode)
                raise ReproError(
                    f"unknown solve mode {self.mode!r}; valid modes are {valid}"
                ) from None
        if self.gap_target is not None:
            if not isinstance(self.gap_target, (int, float)) or isinstance(
                self.gap_target, bool
            ):
                raise ReproError(
                    f"gap_target must be a number, got {self.gap_target!r}"
                )
            if not np.isfinite(self.gap_target) or self.gap_target < 0:
                raise ReproError(
                    "gap_target must be a finite non-negative relative gap "
                    f"(e.g. 0.01 for 1%), got {self.gap_target!r}"
                )
            if self.mode is SolveMode.EXACT:
                raise ReproError(
                    "gap_target only applies to mode='heuristic_first' or "
                    "'heuristic_only'; for exact solves set "
                    "SolverOptions.mip_gap instead"
                )
        if self.deadline is not None and not self.deadline > 0:
            raise ReproError(
                f"deadline must be positive seconds, got {self.deadline!r}"
            )
        if self.mip_node_batch < 0:
            raise ReproError(
                f"mip_node_batch must be non-negative, got {self.mip_node_batch!r}"
            )
        if self.sanitize is not None and self.sanitize not in (
            "repair", "warn", "reject"
        ):
            raise ReproError(
                "sanitize must be one of 'repair', 'warn', 'reject', "
                f"got {self.sanitize!r}"
            )


@dataclass
class SolveReport:
    """Uniform outcome of one :func:`solve` call."""

    status: str
    objective: float
    x: Optional[np.ndarray]
    strategy: str
    #: :class:`SolveMode` value this report was produced under.
    mode: str = SolveMode.EXACT.value
    trace_id: str = ""
    best_bound: float = float("inf")
    gap: float = float("inf")
    nodes: int = 0
    lp_iterations: int = 0
    #: Simulated seconds on the metered device(s) (0 for host-exact runs).
    makespan_seconds: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Underlying raw results, for callers that need full detail.
    result: Optional[MIPResult] = None
    lp_result: Optional[LPResult] = None
    strategy_report: Optional[Any] = None
    #: The tracer installed by ``SolveOptions.trace`` (None otherwise).
    tracer: Optional[obs.Tracer] = None

    @property
    def ok(self) -> bool:
        """True when the solver proved optimality."""
        return self.status == "optimal"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (:func:`repro.reporting.report_dict` shape)."""
        from repro.reporting import report_dict

        return report_dict(
            status=self.status,
            objective=self.objective,
            strategy=self.strategy,
            mode=self.mode,
            trace_id=self.trace_id,
            best_bound=self.best_bound,
            gap=self.gap,
            nodes=self.nodes,
            lp_iterations=self.lp_iterations,
            makespan_seconds=self.makespan_seconds,
            metrics=self.metrics,
        )


def solve(problem: Problem, options: Optional[SolveOptions] = None) -> SolveReport:
    """Solve an LP or MIP through the strategy registry.

    This is the path the CLI's ``solve``, the strategy runner, and the
    serving layer all share.  Raises :class:`repro.errors.ReproError`
    on unknown strategy names.
    """
    options = options or SolveOptions()
    sanitize_summary = None
    if options.sanitize is not None:
        from repro.guard.sanitize import SanitizePolicy, sanitize_problem

        san = sanitize_problem(problem, policy=SanitizePolicy(options.sanitize))
        sanitize_summary = san.to_dict()
        if san.verdict == "infeasible":
            report = SolveReport(
                status="infeasible",
                objective=float("nan"),
                x=None,
                strategy=options.strategy,
                best_bound=float("-inf"),
            )
            report.metrics["sanitize"] = sanitize_summary
            return report
        problem = san.problem
        options = replace(options, sanitize=None)
    if options.deadline is not None:
        ctx = GuardContext(
            budgets=[DeadlineBudget(options.deadline, label="api")]
        )
        with guarding(ctx):
            report = solve(problem, replace(options, deadline=None))
        if ctx.events:
            report.metrics["guard"] = ctx.summary()
        if sanitize_summary is not None:
            report.metrics["sanitize"] = sanitize_summary
        return report
    if options.fault_plan is not None and faults.active() is None:
        with faults.injecting(options.fault_plan):
            report = solve(problem, replace(options, fault_plan=None))
            if sanitize_summary is not None:
                report.metrics["sanitize"] = sanitize_summary
            return report
    if options.trace and obs.active() is None:
        with obs.tracing() as tracer:
            report = _solve(problem, options)
            report.tracer = tracer
            report.trace_id = tracer.trace_id
            if sanitize_summary is not None:
                report.metrics["sanitize"] = sanitize_summary
            return report
    report = _solve(problem, options)
    tracer = obs.active()
    if tracer is not None and not report.trace_id:
        report.trace_id = tracer.trace_id
    if sanitize_summary is not None:
        report.metrics["sanitize"] = sanitize_summary
    return report


def _fault_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the active injector's accounting under ``metrics['faults']``."""
    injector = faults.active()
    if injector is not None and injector.counts()["injected"]:
        metrics["faults"] = injector.counts()
    return metrics


def _solve(problem: Problem, options: SolveOptions) -> SolveReport:
    if isinstance(problem, MIPProblem):
        if options.mode is SolveMode.HEURISTIC_ONLY:
            return _solve_mip_heuristic(problem, options)
        if options.mode is SolveMode.HEURISTIC_FIRST:
            options = _with_heuristic_first(options)
        if options.mip_node_batch > 0 and options.device is not None:
            return _solve_mip_batched(problem, options)
        return _solve_mip(problem, options)
    if options.mode is not SolveMode.EXACT:
        raise ReproError(
            f"mode={options.mode.value!r} applies to MIPs only; plain LPs "
            "always solve exactly (use mode='exact' or omit it)"
        )
    return _solve_lp(problem, options)


def _portfolio_options(options: SolveOptions) -> PortfolioOptions:
    """The portfolio configuration a non-exact mode should run with."""
    return options.portfolio or options.solver.portfolio or PortfolioOptions()


def _with_heuristic_first(options: SolveOptions) -> SolveOptions:
    """Rewrite options so branch and bound runs the portfolio phase first.

    The portfolio's best certified incumbent seeds the tree as a pruning
    bound; ``gap_target`` (when set) is folded into the branch-and-bound
    stopping gap so the search may halt as soon as the bound proof is
    good enough.
    """
    solver = replace(options.solver, portfolio=_portfolio_options(options))
    if options.gap_target is not None and options.gap_target > solver.mip_gap:
        solver = replace(solver, mip_gap=options.gap_target)
    return replace(options, solver=solver)


def _solve_mip_heuristic(problem: MIPProblem, options: SolveOptions) -> SolveReport:
    """``heuristic_only``: the portfolio alone, no tree search.

    Every incumbent is exact-rationally certified inside the portfolio;
    the reported gap is measured against the root relaxation's dual
    bound (``inf`` when that bound is unavailable), so it is honest but
    loose.  Status is ``"heuristic"`` when a certified incumbent is in
    hand, ``"infeasible"`` when the root relaxation proves the MIP
    infeasible, and ``"no_incumbent"`` otherwise.
    """
    device = options.device
    result = run_portfolio(problem, _portfolio_options(options), device=device)
    metrics = _fault_metrics({} if device is None else device.metrics.to_dict())
    summary = result.summary()
    gap = float(result.gap)
    if options.gap_target is not None:
        summary["gap_target"] = float(options.gap_target)
        summary["gap_target_met"] = bool(gap <= options.gap_target)
    metrics["portfolio"] = summary
    if result.best is not None:
        status = "heuristic"
        objective: float = float(result.best.objective)
        x: Optional[np.ndarray] = result.best.x
    elif result.relaxation_status == "infeasible":
        status, objective, x = "infeasible", float("nan"), None
    else:
        status, objective, x = "no_incumbent", float("nan"), None
    return SolveReport(
        status=status,
        objective=objective,
        x=x,
        strategy="portfolio",
        mode=SolveMode.HEURISTIC_ONLY.value,
        best_bound=float(result.dual_bound),
        gap=gap,
        lp_iterations=result.lp_iterations,
        makespan_seconds=0.0 if device is None else device.clock.now,
        metrics=metrics,
    )


def _solve_mip(problem: MIPProblem, options: SolveOptions) -> SolveReport:
    """MIP path: degradation loop around one engine run per strategy.

    An unrecoverable :class:`FaultError` from a metered engine degrades
    to the strategy's registered fallback (``plan.degrade`` permitting)
    and the faults it absorbed are resolved as *tolerated*; the chain
    ends at ``"direct"``, which touches no simulated device.
    """
    injector = faults.active()
    strategy = options.strategy
    chain = [strategy]
    while True:
        try:
            report = _run_mip_engine(problem, options, strategy)
        except NumericalInstabilityError as exc:
            # Same ladder as fault degradation, but for numerics: hand
            # the instance to the strategy's registered fallback; the
            # chain ends at "direct", the exact host engine.
            fallback = (
                registry.fallback_for(strategy) if options.engine is None else None
            )
            if fallback is None:
                raise
            obs.event(
                "guard.degrade", category="guard",
                from_strategy=strategy, to_strategy=fallback,
                error=type(exc).__name__, signal=exc.signal,
            )
            strategy = fallback
            chain.append(fallback)
            continue
        except FaultError as exc:
            fallback = (
                registry.fallback_for(strategy)
                if options.engine is None
                and injector is not None
                and injector.plan.degrade
                else None
            )
            if fallback is None:
                if injector is not None:
                    injector.resolve_escaped(exc.fault_count, site="strategy")
                raise
            injector.resolve_tolerated(exc.fault_count, site="strategy")
            injector.metrics.inc("fault.degraded")
            obs.event(
                "fault.degrade", category="fault",
                from_strategy=strategy, to_strategy=fallback,
                error=type(exc).__name__,
            )
            strategy = fallback
            chain.append(fallback)
            continue
        if len(chain) > 1:
            report.metrics["degradation"] = {
                "requested": chain[0],
                "used": strategy,
                "chain": list(chain),
            }
            _fault_metrics(report.metrics)
        return report


def _run_mip_engine(
    problem: MIPProblem, options: SolveOptions, strategy: str
) -> SolveReport:
    engine = options.engine
    if engine is None:
        engine = registry.engine_for(strategy, options.solver.simplex)
        if options.solver.node_lp != "simplex" and engine.node_lp == "simplex":
            # Honor SolverOptions.node_lp on registry engines that don't
            # pin their own node engine (the pdhg strategies already do).
            engine.node_lp = options.solver.node_lp
            engine.pdhg_options = options.solver.pdhg

    solver_options = options.solver
    if solver_options.portfolio is None and getattr(engine, "wants_portfolio", False):
        # The "portfolio" strategy asks for the heuristic phase even when
        # the caller didn't configure one explicitly.
        solver_options = replace(solver_options, portfolio=PortfolioOptions())

    injector = faults.active()
    resume_stats = None
    solver = None
    if injector is not None and injector.plan.touches(SITE_NODE):
        from repro.faults.recovery import solve_with_checkpoint_resume

        result, resume_stats = solve_with_checkpoint_resume(
            problem, solver_options=solver_options, engine=engine
        )
    else:
        solver = BranchAndBoundSolver(problem, solver_options, engine=engine)
        result = solver.solve()

    strategy_report = None
    if hasattr(engine, "report"):
        strategy_report = engine.report(result, strategy=strategy)
    metrics: Dict[str, Any] = {}
    device = getattr(engine, "device", None)
    if device is not None:
        metrics = device.metrics.to_dict()
    _fault_metrics(metrics)
    if resume_stats is not None and resume_stats.restarts:
        metrics["resume"] = {
            "restarts": resume_stats.restarts,
            "checkpoints": resume_stats.checkpoints,
        }
    if solver is not None and solver.portfolio_result is not None:
        metrics["portfolio"] = solver.portfolio_result.summary()

    report = SolveReport(
        status=result.status.value,
        objective=float(result.objective),
        x=result.x,
        strategy=strategy,
        mode=options.mode.value,
        best_bound=float(result.best_bound),
        gap=float(result.gap),
        nodes=result.stats.nodes_processed,
        lp_iterations=result.stats.lp_iterations,
        makespan_seconds=engine.elapsed_seconds,
        metrics=metrics,
        result=result,
        strategy_report=strategy_report,
    )
    tracer = obs.active()
    if tracer is not None:
        report.trace_id = tracer.trace_id
        if strategy_report is not None:
            strategy_report.trace_id = tracer.trace_id
    return report


def _solve_mip_batched(problem: MIPProblem, options: SolveOptions) -> SolveReport:
    """The serving layer's per-member MIP path: batched-node B&B on a device."""
    from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions

    device = options.device
    solver = BatchedNodeSolver(
        problem,
        options=BatchedSolverOptions(
            batch_size=options.mip_node_batch,
            node_limit=options.solver.node_limit,
            mip_gap=options.solver.mip_gap,
            lp_engine=options.solver.node_lp,
            pdhg=options.solver.pdhg,
            portfolio=options.solver.portfolio,
        ),
        device=device,
    )
    result = solver.solve()
    metrics = _fault_metrics(device.metrics.to_dict())
    if solver.portfolio_result is not None:
        metrics["portfolio"] = solver.portfolio_result.summary()
    return SolveReport(
        status=result.status.value,
        objective=float(result.objective),
        x=result.x,
        strategy="batched_node",
        mode=options.mode.value,
        best_bound=float(result.best_bound),
        gap=float(result.gap),
        nodes=result.stats.nodes_processed,
        lp_iterations=result.stats.lp_iterations,
        makespan_seconds=device.clock.now,
        metrics=metrics,
        result=result,
    )


def _solve_lp(problem: LinearProgram, options: SolveOptions) -> SolveReport:
    """Plain LP path; with a device, charge the serial small-LP stream."""
    sf = problem.to_standard_form()
    result = solve_standard_form(sf, options=options.solver.simplex)
    escalation = None
    if result.status is LPStatus.NUMERICAL:
        from repro.guard.escalate import escalate_lp

        outcome = escalate_lp(sf, options=options.solver.simplex, first=result)
        result = outcome.result
        escalation = outcome.steps
    device = options.device
    if device is not None:
        # One small-LP kernel stream (factor + per-iteration solves),
        # the serial shape the serving layer's E7 benchmark measures.
        device._charge(K.getrf_kernel(sf.m), None)
        for _ in range(max(1, result.iterations)):
            device._charge(K.trsv_kernel(sf.m), None)
            device._charge(K.trsv_kernel(sf.m), None)
            device._charge(K.gemv_kernel(sf.n, sf.m), None)
    x = None
    if result.status is LPStatus.OPTIMAL and result.x_standard is not None:
        x = sf.recover_x(result.x_standard)
    metrics = _fault_metrics({} if device is None else device.metrics.to_dict())
    if escalation:
        metrics["escalation"] = list(escalation)
    return SolveReport(
        status=result.status.value,
        objective=float(result.objective),
        x=x,
        strategy="lp",
        lp_iterations=result.iterations,
        makespan_seconds=0.0 if device is None else device.clock.now,
        metrics=metrics,
        lp_result=result,
    )
