"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
The hierarchy mirrors the major subsystems: linear algebra, the simulated
device, the simulated communicator, and the LP/MIP solvers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


class LinearAlgebraError(ReproError):
    """Base class for linear-algebra failures."""


class SingularMatrixError(LinearAlgebraError):
    """A factorization encountered an (numerically) singular matrix."""

    def __init__(self, stage: str, pivot: float = 0.0):
        self.stage = stage
        self.pivot = pivot
        super().__init__(f"singular matrix during {stage} (pivot={pivot:.3e})")


class NotPositiveDefiniteError(LinearAlgebraError):
    """Cholesky factorization of a matrix that is not positive definite."""


class ShapeError(LinearAlgebraError):
    """Operands have incompatible shapes."""


class SparseFormatError(LinearAlgebraError):
    """A sparse matrix is structurally invalid (bad indptr/indices)."""


# ---------------------------------------------------------------------------
# Simulated device
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for simulated-accelerator failures."""


class DeviceMemoryError(DeviceError):
    """Allocation exceeded the simulated device memory capacity."""

    def __init__(self, requested: int, free: int, capacity: int):
        self.requested = requested
        self.free = free
        self.capacity = capacity
        super().__init__(
            f"device out of memory: requested {requested} B, "
            f"free {free} B of {capacity} B"
        )


class InvalidHandleError(DeviceError):
    """A device-array handle was used after free, or on the wrong device."""


class StreamError(DeviceError):
    """Illegal stream/event operation (e.g. waiting on an unrecorded event)."""


# ---------------------------------------------------------------------------
# Simulated communicator
# ---------------------------------------------------------------------------


class CommError(ReproError):
    """Base class for simulated-MPI failures."""


class DeadlockError(CommError):
    """All ranks are blocked and no message can make progress."""


class RankError(CommError):
    """A rank index is out of range for the communicator."""


# ---------------------------------------------------------------------------
# Solvers
# ---------------------------------------------------------------------------


class SolverError(ReproError):
    """Base class for LP/MIP solver failures."""


class LPError(SolverError):
    """Linear-programming solver failure (not statuses: true failures)."""


class IterationLimitError(SolverError):
    """An iterative method exhausted its iteration budget."""

    def __init__(self, method: str, limit: int):
        self.method = method
        self.limit = limit
        super().__init__(f"{method} exceeded iteration limit {limit}")


class MIPError(SolverError):
    """Mixed-integer solver failure."""


class ProblemFormatError(SolverError):
    """A problem definition (or MPS file) is malformed."""


# ---------------------------------------------------------------------------
# Solver health (repro.guard)
# ---------------------------------------------------------------------------


class GuardError(SolverError):
    """Base class for solver-health (``repro.guard``) failures."""


class SanitizeError(GuardError):
    """The problem sanitizer rejected an instance it cannot repair."""

    def __init__(self, issues):
        self.issues = list(issues)
        head = "; ".join(str(i) for i in self.issues[:3])
        more = len(self.issues) - 3
        if more > 0:
            head += f" (+{more} more)"
        super().__init__(f"problem rejected by sanitizer: {head}")


class NumericalInstabilityError(GuardError):
    """A watchdog declared an engine numerically unrecoverable.

    Raised only after the escalation ladder (rescale → perturb → switch
    engine → exact fallback) is exhausted; ``repro.api`` treats it like a
    device fault and walks the strategy degradation chain.
    """

    def __init__(self, engine: str, signal: str, detail: str = ""):
        self.engine = engine
        self.signal = signal
        tail = f": {detail}" if detail else ""
        super().__init__(
            f"engine {engine!r} numerically unstable ({signal}){tail}"
        )


class DeadlineExpired(GuardError):
    """A cooperative deadline budget ran out where no anytime answer exists.

    Engines that *can* return an anytime result do so with a
    ``TIME_LIMIT`` status instead; this error marks code paths (setup,
    presolve) where nothing partial has been computed yet.
    """

    def __init__(self, where: str, elapsed: float, budget: float):
        self.where = where
        self.elapsed = elapsed
        self.budget = budget
        super().__init__(
            f"deadline expired during {where}: "
            f"{elapsed:.6g}s elapsed of {budget:.6g}s budget"
        )


# ---------------------------------------------------------------------------
# Solve service (repro.serve)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for solve-service (``repro.serve``) failures."""


class ServiceSaturated(ServiceError):
    """Admission control rejected a request because the queue is full."""

    def __init__(self, queue_depth: int, limit: int):
        self.queue_depth = queue_depth
        self.limit = limit
        super().__init__(
            f"service saturated: {queue_depth} requests queued "
            f"(admission limit {limit})"
        )


class RequestTimeout(ServiceError):
    """A queued request exceeded its per-request timeout before dispatch."""

    def __init__(self, request_id: int, waited: float):
        self.request_id = request_id
        self.waited = waited
        super().__init__(
            f"request {request_id} timed out after {waited:.6g}s in queue"
        )


class ServiceClosed(ServiceError):
    """An operation was issued against a service that has been shut down."""


# ---------------------------------------------------------------------------
# Fault injection (repro.faults)
# ---------------------------------------------------------------------------


class FaultError(ReproError):
    """Base class for injected-fault failures (``repro.faults``).

    ``fault_count`` carries the number of injected faults that are still
    unresolved when the error propagates; whichever recovery layer
    catches it must resolve them (recovered / tolerated / escaped) so
    the injector's accounting invariant holds.
    """

    def __init__(self, message: str, fault_count: int = 1):
        self.fault_count = fault_count
        super().__init__(message)


class KernelFaultError(FaultError):
    """A kernel launch failed and exhausted its in-place retry budget."""

    def __init__(self, kernel: str, attempts: int, fault_count: int = 1):
        self.kernel = kernel
        self.attempts = attempts
        super().__init__(
            f"kernel {kernel!r} failed {attempts} consecutive launches",
            fault_count=fault_count,
        )


class EccError(FaultError):
    """An uncorrectable ECC error: in-place retry cannot help."""

    def __init__(self, kernel: str, fault_count: int = 1):
        self.kernel = kernel
        super().__init__(
            f"uncorrectable ECC error during kernel {kernel!r}",
            fault_count=fault_count,
        )


class TransferFaultError(FaultError):
    """A host↔device transfer kept timing out or arriving corrupted."""

    def __init__(self, direction: str, kind: str, attempts: int, fault_count: int = 1):
        self.direction = direction
        self.kind = kind
        self.attempts = attempts
        super().__init__(
            f"{direction} transfer failed {attempts} attempts (last: {kind})",
            fault_count=fault_count,
        )


class RankLostError(FaultError):
    """A simulated MPI rank dropped out of the communicator."""

    def __init__(self, rank: int, fault_count: int = 1):
        self.rank = rank
        super().__init__(f"rank {rank} lost", fault_count=fault_count)


class WorkerCrashError(FaultError):
    """A serve worker crashed while executing a batch."""

    def __init__(self, worker: int, in_flight: int, fault_count: int = 1):
        self.worker = worker
        self.in_flight = in_flight
        super().__init__(
            f"worker {worker} crashed with {in_flight} members in flight",
            fault_count=fault_count,
        )


class SolverCrashError(FaultError):
    """The branch-and-bound driver was killed mid-search (node-kill site)."""

    def __init__(self, node_id: int, fault_count: int = 1):
        self.node_id = node_id
        super().__init__(
            f"search killed at node {node_id}", fault_count=fault_count
        )


# ---------------------------------------------------------------------------
# Correctness tooling (repro.check)
# ---------------------------------------------------------------------------


class CheckError(ReproError):
    """Base class for correctness-tooling (``repro.check``) failures.

    Raised only when a caller asks a report to escalate
    (``report.raise_for_failures()``); the check functions themselves
    return reports instead of raising so fuzzing can keep going.
    """


class CertificateViolation(CheckError):
    """An exact-arithmetic certificate check failed on a returned solution."""

    def __init__(self, check: str, violation: float, tolerance: float):
        self.check = check
        self.violation = violation
        self.tolerance = tolerance
        super().__init__(
            f"certificate check {check!r} violated: "
            f"{violation:.6g} exceeds tolerance {tolerance:.6g}"
        )


class SolverDisagreement(CheckError):
    """Two solvers disagreed on one instance beyond tolerance."""

    def __init__(self, left: str, right: str, kind: str, delta: float):
        self.left = left
        self.right = right
        self.kind = kind
        self.delta = delta
        super().__init__(
            f"solvers {left!r} and {right!r} disagree on {kind} "
            f"(delta {delta:.6g})"
        )


class MetamorphicViolation(CheckError):
    """A property-preserving transform changed the optimum unexpectedly."""

    def __init__(self, transform: str, expected: float, actual: float):
        self.transform = transform
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"metamorphic transform {transform!r} expected optimum "
            f"{expected:.6g}, solver returned {actual:.6g}"
        )
