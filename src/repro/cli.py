"""Command-line interface: solve / generate / info over MPS files.

    python -m repro solve model.mps --strategy cpu_orchestrated
    python -m repro solve model.mps --trace out.json
    python -m repro trace out.json
    python -m repro generate knap-20 -o knap.mps
    python -m repro info model.mps

``solve`` runs branch-and-cut through :func:`repro.api.solve`
(optionally under one of the paper's metered strategy engines, printing
the platform report; ``--node-lp pdhg`` swaps node relaxations to the
restarted first-order engine) and supports checkpointing to /
restarting from a JSON snapshot.  ``bench-smoke`` exercises and
validates the machine-readable benchmark JSON pipeline.  ``--trace out.json`` on ``solve`` and ``serve-bench``
exports the run's unified timeline as Chrome trace JSON
(``about://tracing`` / Perfetto); ``trace`` summarizes such a file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.mip.checkpoint import load_snapshot, save_snapshot
from repro.mip.snapshot import capture_snapshot, resume_from_snapshot
from repro.mip.solver import SolverOptions
from repro.problems.miplib import MINI_MIPLIB, instance_by_name
from repro.problems.mps import read_mps, write_mps
from repro.reporting import (
    format_bytes,
    format_seconds,
    render_metrics,
    render_percentiles,
    render_table,
    render_trace,
)
from repro.strategies.runner import STRATEGIES


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (solve / generate / info / list)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU-based MIP reproduction: solve, generate, inspect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve an MPS model")
    solve.add_argument("model", help="path to an MPS file")
    solve.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default=None,
        help="run under a metered strategy engine (§3)",
    )
    solve.add_argument("--branching", default="pseudocost")
    solve.add_argument("--node-selection", default="best_first")
    solve.add_argument("--cut-rounds", type=int, default=0)
    solve.add_argument("--node-limit", type=int, default=200_000)
    solve.add_argument(
        "--node-lp",
        choices=["simplex", "pdhg"],
        default="simplex",
        help="node relaxation engine: exact simplex or restarted "
        "first-order PDHG with tolerance-padded bounds",
    )
    solve.add_argument(
        "--checkpoint", default=None, help="write a snapshot here if interrupted"
    )
    solve.add_argument(
        "--restart-from", default=None, help="resume from a snapshot file"
    )
    solve.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="export the run's timeline as Chrome trace JSON",
    )
    solve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="host-seconds budget; a mid-solve expiry returns the "
        "anytime answer (incumbent + dual bound + gap) as time_limit",
    )
    solve.add_argument(
        "--sanitize",
        choices=["repair", "warn", "reject"],
        default=None,
        help="run the problem sanitizer first (see docs/robustness.md)",
    )
    solve.add_argument(
        "--mode",
        choices=["exact", "heuristic_first", "heuristic_only"],
        default="exact",
        help="quality-vs-latency contract: exact B&B, portfolio-seeded "
        "B&B, or the portfolio alone with a certified gap "
        "(docs/heuristics.md)",
    )
    solve.add_argument(
        "--gap", type=float, default=None, metavar="REL",
        help="relative-gap target for the non-exact modes (e.g. 0.01)",
    )

    generate = sub.add_parser("generate", help="write a mini-MIPLIB instance")
    generate.add_argument("name", choices=sorted(MINI_MIPLIB))
    generate.add_argument("-o", "--output", required=True)

    info = sub.add_parser("info", help="summarize an MPS model")
    info.add_argument("model")

    sub.add_parser("list", help="list mini-MIPLIB instances")

    trace = sub.add_parser(
        "trace", help="validate and summarize an exported Chrome trace file"
    )
    trace.add_argument("file", help="path to a Chrome trace JSON file")
    trace.add_argument(
        "--limit", type=int, default=20, help="rows in the summary table"
    )

    certify = sub.add_parser(
        "certify",
        help="solve an MPS model, then audit the answer with exact "
        "certificates and cross-solver differential testing",
    )
    certify.add_argument("model", help="path to an MPS file")
    certify.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default=None,
        help="solve under a metered strategy engine before certifying",
    )
    certify.add_argument("--node-limit", type=int, default=200_000)
    certify.add_argument(
        "--skip-differential",
        action="store_true",
        help="certificate audit only (differential re-solves are slower)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="randomized certificate/differential/metamorphic testing "
        "with instance shrinking",
    )
    fuzz.add_argument("--budget", type=int, default=100, help="instances to fuzz")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--out", default="fuzz-repros", help="directory for shrunk repro files"
    )
    fuzz.add_argument("--max-vars", type=int, default=9)
    fuzz.add_argument("--max-rows", type=int, default=7)
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.add_argument("--no-differential", action="store_true")
    fuzz.add_argument("--no-metamorphic", action="store_true")
    fuzz.add_argument("--no-lp-differential", action="store_true")

    replay = sub.add_parser(
        "replay", help="re-run the failing check stored in a repro file"
    )
    replay.add_argument("repro", help="path to a repro JSON file")

    chaos = sub.add_parser(
        "chaos",
        help="replay seeded fault plans against solve/serve/distributed "
        "and audit every recovery (see docs/fault_tolerance.md)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--plan", action="append", default=[], metavar="PLAN.json",
        help="replay a saved fault plan (repeatable); replaces the "
        "builtin corpus unless --builtin is also given",
    )
    chaos.add_argument(
        "--builtin", action="store_true",
        help="with --plan: run the builtin corpus as well",
    )
    chaos.add_argument(
        "--save-plans", default=None, metavar="DIR",
        help="write the corpus plans as JSON into DIR and exit",
    )
    chaos.add_argument(
        "--items", type=int, default=8, help="knapsack items per chaos problem"
    )
    chaos.add_argument(
        "--requests", type=int, default=8, help="requests in the serve scenario"
    )
    chaos.add_argument(
        "--no-serve", action="store_true", help="skip the serve scenarios"
    )
    chaos.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="export the chaos run's timeline as Chrome trace JSON",
    )
    chaos.add_argument(
        "--bench", default=None, metavar="BENCH_chaos.json",
        help="also write the deterministic chaos-overhead benchmark "
        "artifact (validated by bench-smoke --check)",
    )

    guard = sub.add_parser(
        "guard",
        help="run the pathological corpus through sanitize → solve "
        "under budgets and audit every verdict (docs/robustness.md)",
    )
    guard.add_argument(
        "--deadline", type=float, default=5.0,
        help="per-case host-seconds budget (the anti-hang backstop)",
    )
    guard.add_argument(
        "--case", action="append", default=[], metavar="NAME",
        help="run only this corpus case (repeatable)",
    )
    guard.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list corpus case names and exit",
    )

    bench_smoke = sub.add_parser(
        "bench-smoke",
        help="tiny PDHG-vs-simplex crossover run that exports and "
        "validates machine-readable benchmark JSON (the CI gate)",
    )
    bench_smoke.add_argument(
        "--sizes", default="4,8", help="comma-separated LP sizes to sweep"
    )
    bench_smoke.add_argument("--batch", type=int, default=4)
    bench_smoke.add_argument("--eps", type=float, default=1e-4)
    bench_smoke.add_argument("-o", "--out", default="BENCH_smoke.json")
    bench_smoke.add_argument(
        "--check",
        action="append",
        default=[],
        metavar="FILE",
        help="also validate an existing bench artifact (repeatable); "
        "a missing or schema-invalid file fails the run",
    )

    warm_bench = sub.add_parser(
        "warm-bench",
        help="mini E15 run: warm-vs-cold node-LP pivots plus the serve "
        "parametric path, exported as validated benchmark JSON",
    )
    warm_bench.add_argument(
        "--node-limit", type=int, default=50_000, dest="node_limit"
    )
    warm_bench.add_argument(
        "--serve-requests", type=int, default=16, dest="serve_requests"
    )
    warm_bench.add_argument("--seed", type=int, default=7)
    warm_bench.add_argument("-o", "--out", default="BENCH_warm.json")
    warm_bench.add_argument(
        "--min-reduction", type=float, default=2.0, dest="min_reduction",
        help="fail unless warm starts cut pivots/node by this factor",
    )

    portfolio_bench = sub.add_parser(
        "portfolio-bench",
        help="E16: time-to-first-incumbent of the heuristic portfolio "
        "vs pure branch and bound, exported as validated benchmark JSON",
    )
    portfolio_bench.add_argument(
        "--node-limit", type=int, default=2000, dest="node_limit"
    )
    portfolio_bench.add_argument("-o", "--out", default="BENCH_portfolio.json")
    portfolio_bench.add_argument(
        "--min-speedup", type=float, default=5.0, dest="min_speedup",
        help="fail unless the gated geomean first-incumbent speedup "
        "reaches this factor",
    )
    portfolio_bench.add_argument(
        "--skip-pathological", action="store_true",
        help="first-incumbent corpus only (skip the robustness rows)",
    )

    cluster_bench = sub.add_parser(
        "cluster-bench",
        help="S2: sharded-cluster throughput/latency sweep under "
        "heavy-tailed traffic, exported as validated benchmark JSON",
    )
    cluster_bench.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to sweep (first = baseline)",
    )
    cluster_bench.add_argument("--requests", type=int, default=400)
    cluster_bench.add_argument(
        "--pool-size", type=int, default=128, dest="pool_size",
        help="distinct problems in the shape-diverse pool",
    )
    cluster_bench.add_argument("--workers", type=int, default=2)
    cluster_bench.add_argument(
        "--router", default="hash", choices=("hash", "least_loaded")
    )
    cluster_bench.add_argument(
        "--mean-interarrival", type=float, default=4e-5,
        dest="mean_interarrival",
        help="mean simulated seconds between arrivals (Pareto gaps)",
    )
    cluster_bench.add_argument("--seed", type=int, default=0)
    cluster_bench.add_argument(
        "--no-slo", action="store_true",
        help="disable SLO admission (no shedding columns)",
    )
    cluster_bench.add_argument("-o", "--out", default="BENCH_s2.json")
    cluster_bench.add_argument(
        "--min-speedup", type=float, default=3.0, dest="min_speedup",
        help="fail unless peak-vs-base throughput reaches this factor",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="sweep the batching solve service over batching policies (§5.5)",
    )
    serve.add_argument("--requests", type=int, default=120)
    serve.add_argument("--distinct", type=int, default=40, help="distinct problems in the pool")
    serve.add_argument("--items", type=int, default=12, help="knapsack items per problem")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--mean-interarrival", type=float, default=2e-5,
        help="mean simulated seconds between arrivals",
    )
    serve.add_argument(
        "--batch-sizes", default="1,8,32",
        help="comma-separated max batch sizes to sweep",
    )
    serve.add_argument("--max-wait", type=float, default=2e-3)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--show-metrics", action="store_true",
        help="print the per-stage metrics of the last configuration",
    )
    serve.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="export the last configuration's timeline as Chrome trace JSON",
    )
    return parser


def _export_trace(tracer, path: str) -> None:
    """Write a tracer's Chrome trace and print a confirmation line."""
    trace = obs.write_chrome_trace(tracer, path)
    print(f"trace     : {path} ({len(trace['traceEvents'])} events)")


def cmd_solve(args) -> int:
    """``repro solve``: branch-and-cut an MPS model via :func:`repro.api.solve`."""
    from repro.api import SolveOptions, solve

    problem = read_mps(args.model)
    options = SolverOptions(
        branching=args.branching,
        node_selection=args.node_selection,
        cut_rounds=args.cut_rounds,
        node_limit=args.node_limit,
        node_lp=args.node_lp,
        keep_tree=args.checkpoint is not None,
    )

    if args.restart_from:
        snapshot = load_snapshot(args.restart_from)
        result = resume_from_snapshot(problem, snapshot)
        print(f"restarted from {args.restart_from} ({snapshot.num_leaves} leaves)")
        print(f"status    : {result.status.value}")
        if result.x is not None:
            print(f"objective : {result.objective:.6g}")
        return 0 if result.ok else 1

    report = solve(
        problem,
        SolveOptions(
            strategy=args.strategy or "direct",
            solver=options,
            trace=args.trace is not None,
            deadline=args.deadline,
            sanitize=args.sanitize,
            mode=args.mode,
            gap_target=args.gap,
        ),
    )
    result = report.result
    if args.mode != "exact":
        print(f"mode      : {args.mode}")

    if args.strategy:
        sr = report.strategy_report
        print(f"strategy  : {args.strategy}")
        print(f"status    : {report.status}")
        if report.x is not None:
            print(f"objective : {report.objective:.6g}")
        print(f"nodes     : {report.nodes}")
        print(f"makespan  : {format_seconds(report.makespan_seconds)} (simulated)")
        print(f"kernels   : {sr.kernels}")
        print(
            f"transfers : {sr.h2d_transfers + sr.d2h_transfers} "
            f"({format_bytes(sr.bytes_moved)})"
        )
    else:
        print(f"status    : {report.status}")
        if report.x is not None:
            print(f"objective : {report.objective:.6g}")
            nonzero = [
                (f"x{j}", report.x[j])
                for j in range(problem.n)
                if abs(report.x[j]) > 1e-9
            ]
            if len(nonzero) <= 30:
                print(render_table(["var", "value"], nonzero))
        print(f"nodes     : {report.nodes}")
        print(f"LP iters  : {report.lp_iterations}")
        if report.status in (
            "time_limit", "iteration_limit", "node_limit", "heuristic"
        ):
            bound = report.best_bound
            gap = report.gap
            print(f"bound     : {bound:.6g}" if np.isfinite(bound) else "bound     : inf")
            print(f"gap       : {gap:.4%}" if np.isfinite(gap) else "gap       : inf")
        if "sanitize" in report.metrics:
            repaired = report.metrics["sanitize"].get("repaired", [])
            if repaired:
                print(f"sanitized : {', '.join(repaired)}")
        if args.checkpoint and result is not None and result.tree is not None:
            incumbent = report.objective if report.x is not None else -np.inf
            snap = capture_snapshot(result.tree, incumbent, report.x)
            save_snapshot(snap, args.checkpoint)
            print(f"checkpoint: {args.checkpoint} ({snap.num_leaves} open leaves)")

    if "portfolio" in report.metrics:
        pf = report.metrics["portfolio"]
        first = pf.get("first_incumbent_seconds")
        if first is not None:
            print(
                f"portfolio : first incumbent at {format_seconds(first)} "
                f"(simulated), {pf.get('incumbents', 0)} incumbents"
            )
    if args.trace and report.tracer is not None:
        _export_trace(report.tracer, args.trace)
    if report.ok:
        return 0
    if report.status == "heuristic":
        # A certified heuristic answer is what a non-exact mode promised.
        return 0
    if args.deadline is not None and report.status in (
        "time_limit", "iteration_limit", "node_limit"
    ):
        # A budgeted run that stopped with a structured anytime answer
        # did what was asked of it.
        return 0
    return 1


def cmd_generate(args) -> int:
    """``repro generate``: write a mini-MIPLIB instance as MPS."""
    problem = instance_by_name(args.name)
    write_mps(problem, args.output)
    print(f"wrote {args.name} ({problem.n} vars) to {args.output}")
    return 0


def cmd_info(args) -> int:
    """``repro info``: summarize an MPS model's shape and types."""
    problem = read_mps(args.model)
    rows = [
        ("name", problem.name),
        ("variables", problem.n),
        ("integer", problem.num_integer),
        ("continuous", problem.n - problem.num_integer),
        ("<= rows", 0 if problem.a_ub is None else problem.a_ub.shape[0]),
        ("= rows", 0 if problem.a_eq is None else problem.a_eq.shape[0]),
        ("pure binary", problem.is_pure_binary),
        ("matrix bytes", format_bytes(problem.matrix_bytes())),
    ]
    print(render_table(["field", "value"], rows))
    return 0


def cmd_list(_args) -> int:
    """``repro list``: print the mini-MIPLIB registry names."""
    for name in sorted(MINI_MIPLIB):
        print(name)
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: validate + summarize a Chrome trace JSON file."""
    try:
        trace = obs.load_trace(args.file)
    except ValueError as exc:
        print(f"invalid: not JSON ({exc})", file=sys.stderr)
        return 1
    problems = obs.validate_chrome_trace(trace)
    if problems:
        for problem in problems[:20]:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    events = trace.get("traceEvents", [])
    meta = trace.get("otherData", {})
    spans = [ev for ev in events if ev.get("ph") == "X"]
    print(f"file      : {args.file}")
    if meta.get("trace_id"):
        print(f"trace id  : {meta['trace_id']}")
    print(f"events    : {len(events)} ({len(spans)} spans)")
    rows = obs.summarize_trace_file(trace)
    print()
    print(render_trace(rows[: args.limit], title="time by span (descending)"))
    if len(rows) > args.limit:
        print(f"... {len(rows) - args.limit} more rows (raise --limit)")
    return 0


def cmd_certify(args) -> int:
    """``repro certify``: solve, then independently audit the answer."""
    from repro.api import SolveOptions, solve
    from repro.check import certify_mip_result, differential_mip
    from repro.reporting import render_certificate, render_differential

    problem = read_mps(args.model)
    options = SolverOptions(node_limit=args.node_limit)
    result = solve(
        problem,
        SolveOptions(strategy=args.strategy or "direct", solver=options),
    ).result
    print(f"status    : {result.status.value}")
    if result.x is not None:
        print(f"objective : {result.objective:.6g}")

    certificate = certify_mip_result(problem, result)
    print()
    print(render_certificate(certificate))
    ok = certificate.ok

    if not args.skip_differential:
        diff = differential_mip(problem, node_limit=args.node_limit)
        print()
        print(render_differential(diff))
        ok = ok and diff.ok

    print()
    print("certified: OK" if ok else "certified: FAILED")
    return 0 if ok else 1


def cmd_fuzz(args) -> int:
    """``repro fuzz``: randomized correctness campaign with shrinking."""
    from repro.check import FuzzOptions, run_fuzz
    from repro.reporting import render_fuzz

    options = FuzzOptions(
        budget=args.budget,
        seed=args.seed,
        out_dir=args.out,
        shrink=not args.no_shrink,
        differential=not args.no_differential,
        metamorphic=not args.no_metamorphic,
        lp_differential=not args.no_lp_differential,
        max_vars=args.max_vars,
        max_rows=args.max_rows,
    )
    report = run_fuzz(options, log_fn=print)
    print(render_fuzz(report))
    return 0 if report.ok else 1


def cmd_replay(args) -> int:
    """``repro replay``: re-run the failing check in a repro file."""
    from repro.check import replay_repro
    from repro.reporting import render_fuzz

    report = replay_repro(args.repro)
    print(render_fuzz(report))
    if report.ok:
        print("replay: the stored failure no longer reproduces")
        return 0
    print("replay: still failing")
    return 1


def cmd_chaos(args) -> int:
    """``repro chaos``: replay fault plans and audit every recovery."""
    import os

    from repro.faults.chaos import builtin_corpus, run_chaos
    from repro.faults.plan import FaultPlan
    from repro.reporting import render_chaos

    corpus = builtin_corpus(args.seed)
    if args.save_plans:
        os.makedirs(args.save_plans, exist_ok=True)
        for plan in corpus:
            path = os.path.join(args.save_plans, f"{plan.name}.json")
            plan.save(path)
            print(f"wrote {path}")
        return 0

    plans = None
    if args.plan:
        plans = [FaultPlan.load(path) for path in args.plan]
        if args.builtin:
            plans = corpus + plans
    tracer = None
    if args.trace:
        with obs.tracing() as tracer:
            report = run_chaos(
                plans,
                seed=args.seed,
                items=args.items,
                requests=args.requests,
                serve=not args.no_serve,
                log_fn=print,
            )
    else:
        report = run_chaos(
            plans,
            seed=args.seed,
            items=args.items,
            requests=args.requests,
            serve=not args.no_serve,
            log_fn=print,
        )
    print()
    print(render_chaos(report))
    if args.trace and tracer is not None:
        _export_trace(tracer, args.trace)
    if args.bench:
        from repro.faults.chaos import chaos_overhead_payload
        from repro.obs.bench import load_bench_json, write_bench_json

        payload = chaos_overhead_payload(seed=args.seed, items=args.items)
        write_bench_json(args.bench, payload)
        loaded = load_bench_json(args.bench)
        print(
            f"bench     : {args.bench} ({len(loaded['rows'])} plans, "
            f"max overhead "
            f"{loaded['summary']['max_overhead_ratio']:.2f}x)"
        )
    print()
    print("chaos: OK" if report.ok else "chaos: FAILED")
    return 0 if report.ok else 1


def cmd_guard(args) -> int:
    """``repro guard``: pathological corpus through the guard stack."""
    from repro.guard.gauntlet import run_gauntlet
    from repro.problems.pathological import case_by_name, pathological_corpus
    from repro.reporting import render_guard

    if args.list_cases:
        for case in pathological_corpus():
            print(f"{case.name:<22} expect={case.expect:<10} {case.notes}")
        return 0
    cases = None
    if args.case:
        try:
            cases = [case_by_name(name) for name in args.case]
        except KeyError as exc:
            print(f"error: unknown case {exc}", file=sys.stderr)
            return 2
    report = run_gauntlet(cases=cases, deadline=args.deadline, log_fn=print)
    print()
    print(render_guard(report))
    print()
    print("guard: OK" if report.ok else "guard: FAILED")
    return 0 if report.ok else 1


def cmd_bench_smoke(args) -> int:
    """``repro bench-smoke``: write + validate benchmark JSON artifacts.

    Runs the crossover sweep at toy sizes (the point is the artifact
    pipeline, not the measurement), writes the result through the
    :mod:`repro.obs.bench` schema, re-loads it through the validator,
    and then validates any ``--check`` artifacts — so CI fails on a
    missing or schema-invalid ``BENCH_*.json``, not just on eyeballs.
    """
    from repro.lp.pdhg_crossover import crossover_bench_payload
    from repro.obs.bench import load_bench_json, write_bench_json

    try:
        sizes = [int(tok) for tok in args.sizes.split(",") if tok]
    except ValueError:
        print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes:
        print("error: --sizes is empty", file=sys.stderr)
        return 2

    payload = crossover_bench_payload(sizes, batch=args.batch, eps=args.eps)
    write_bench_json(args.out, payload)
    # Trust only what re-loads through the validator.
    loaded = load_bench_json(args.out)
    print(
        f"bench-smoke: wrote {args.out} ({len(loaded['rows'])} rows, "
        f"crossover_m={loaded['summary'].get('crossover_m')})"
    )

    failures = 0
    for path in args.check:
        try:
            checked = load_bench_json(path)
        except ReproError as exc:
            print(f"bench-smoke: INVALID {path}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(
                f"bench-smoke: ok {path} "
                f"(bench={checked['bench']}, {len(checked['rows'])} rows)"
            )
    return 1 if failures else 0


def cmd_warm_bench(args) -> int:
    """``repro warm-bench``: the E15 warm-start measurement + artifact.

    Runs the warm-vs-cold node-LP sweep and the near-duplicate serve
    stream, writes ``BENCH_warm.json`` through the :mod:`repro.obs.bench`
    schema, re-loads it through the validator, and gates on the headline
    pivot reduction — the CI ``warm-smoke`` job's entry point.
    """
    from repro.mip.warmbench import warm_bench_payload
    from repro.obs.bench import load_bench_json, write_bench_json

    payload = warm_bench_payload(
        node_limit=args.node_limit,
        serve_requests=args.serve_requests,
        seed=args.seed,
    )
    write_bench_json(args.out, payload)
    loaded = load_bench_json(args.out)
    summary = loaded["summary"]
    print(
        f"warm-bench: wrote {args.out} ({len(loaded['rows'])} rows, "
        f"pivot_reduction={summary['pivot_reduction']}x, "
        f"serve hits={summary['serve_range_hits']} range "
        f"+ {summary['serve_warm_hits']} warm)"
    )
    if summary["pivot_reduction"] < args.min_reduction:
        print(
            f"warm-bench: FAILED pivot_reduction {summary['pivot_reduction']} "
            f"< required {args.min_reduction}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_portfolio_bench(args) -> int:
    """``repro portfolio-bench``: the E16 measurement + artifact.

    Runs the time-to-first-incumbent corpus (heuristic portfolio vs
    pure branch and bound) plus the pathological robustness rows,
    writes ``BENCH_portfolio.json`` through the :mod:`repro.obs.bench`
    schema, re-loads it through the validator, and gates on the
    geometric-mean speedup — the CI ``portfolio-smoke`` job's entry
    point.
    """
    from repro.mip.portfolio_bench import portfolio_bench_payload
    from repro.obs.bench import load_bench_json, write_bench_json

    payload = portfolio_bench_payload(
        node_limit=args.node_limit,
        include_pathological=not args.skip_pathological,
    )
    write_bench_json(args.out, payload)
    loaded = load_bench_json(args.out)
    summary = loaded["summary"]
    print(
        f"portfolio-bench: wrote {args.out} ({len(loaded['rows'])} rows, "
        f"geomean_speedup={summary['geomean_speedup']}x over "
        f"{summary['gated_instances']} gated instances, "
        f"max gap at handover={summary['max_gap_at_handover']})"
    )
    if not summary["all_certified"]:
        print(
            "portfolio-bench: FAILED — a corpus instance produced no "
            "certified incumbent",
            file=sys.stderr,
        )
        return 1
    if summary["geomean_speedup"] < args.min_speedup:
        print(
            f"portfolio-bench: FAILED geomean_speedup "
            f"{summary['geomean_speedup']} < required {args.min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_cluster_bench(args) -> int:
    """``repro cluster-bench``: the S2 measurement + artifact.

    Replays one heavy-tailed stream against every shard count, writes
    ``BENCH_s2.json`` through the :mod:`repro.obs.bench` schema,
    re-loads it through the validator, and gates on the peak-vs-base
    throughput speedup plus sub-linear p99 growth and zero gold sheds —
    the CI ``cluster-smoke`` job's entry point.
    """
    from repro.cluster import cluster_bench_payload
    from repro.obs.bench import load_bench_json, write_bench_json

    try:
        shard_counts = [int(tok) for tok in args.shards.split(",") if tok]
    except ValueError:
        print(f"error: bad --shards {args.shards!r}", file=sys.stderr)
        return 2
    if not shard_counts:
        print("error: --shards is empty", file=sys.stderr)
        return 2

    payload = cluster_bench_payload(
        shard_counts=shard_counts,
        num_requests=args.requests,
        pool_size=args.pool_size,
        num_workers=args.workers,
        router=args.router,
        mean_interarrival=args.mean_interarrival,
        seed=args.seed,
        with_slo=not args.no_slo,
    )
    write_bench_json(args.out, payload)
    loaded = load_bench_json(args.out)
    summary = loaded["summary"]
    print(
        f"cluster-bench: wrote {args.out} ({len(loaded['rows'])} rows, "
        f"{summary['base_shards']}->{summary['peak_shards']} shards: "
        f"throughput x{summary['throughput_speedup']:.2f}, "
        f"p99 ratio {summary['p99_ratio']:.3f}, "
        f"shed gold/silver/bronze "
        f"{summary['shed_rate_gold_peak']:.0%}/"
        f"{summary['shed_rate_silver_peak']:.0%}/"
        f"{summary['shed_rate_bronze_peak']:.0%})"
    )
    failed = []
    if summary["throughput_speedup"] < args.min_speedup:
        failed.append(
            f"throughput_speedup {summary['throughput_speedup']:.3f} "
            f"< required {args.min_speedup}"
        )
    if not summary["p99_sublinear"]:
        failed.append(
            f"p99 grew super-linearly (ratio {summary['p99_ratio']:.3f} "
            f">= shard ratio {summary['shard_ratio']:.3f})"
        )
    if not args.no_slo and summary["shed_rate_gold_peak"] > 0.0:
        failed.append("gold traffic was shed")
    for reason in failed:
        print(f"cluster-bench: FAILED {reason}", file=sys.stderr)
    return 1 if failed else 0


def cmd_serve_bench(args) -> int:
    """``repro serve-bench``: offered load vs batching policy sweep."""
    from repro.serve import BatchingPolicy, lp_pool, run_load, synthetic_stream

    pool = lp_pool(args.distinct, num_items=args.items, seed=args.seed)
    stream = synthetic_stream(
        pool, args.requests, args.mean_interarrival, seed=args.seed
    )
    try:
        batch_sizes = [int(tok) for tok in args.batch_sizes.split(",") if tok]
    except ValueError:
        print(f"error: bad --batch-sizes {args.batch_sizes!r}", file=sys.stderr)
        return 2
    if not batch_sizes:
        print("error: --batch-sizes is empty", file=sys.stderr)
        return 2

    rows = []
    last = None
    tracer = None
    for i, batch_size in enumerate(batch_sizes):
        policy = BatchingPolicy(max_batch_size=batch_size, max_wait=args.max_wait)
        if args.trace and i == len(batch_sizes) - 1:
            # Trace only the last configuration, so the exported timeline
            # is one clean run instead of every sweep point overlaid.
            with obs.tracing() as tracer:
                summary = run_load(stream, policy=policy, num_workers=args.workers)
        else:
            summary = run_load(stream, policy=policy, num_workers=args.workers)
        last = summary
        rows.append(
            (
                batch_size,
                round(summary["throughput"]),
                summary["batches"],
                f"{summary['dedup_rate']:.0%}",
                format_seconds(summary["mean_queue_wait"]),
                format_seconds(summary["mean_device"]),
                format_seconds(summary["p50_latency"]),
                format_seconds(summary["p95_latency"]),
                format_seconds(summary["p99_latency"]),
                format_seconds(summary["makespan"]),
            )
        )
    print(
        render_table(
            [
                "batch",
                "req/s",
                "batches",
                "dedup",
                "queue wait",
                "device",
                "p50",
                "p95",
                "p99",
                "makespan",
            ],
            rows,
            title=(
                f"serve-bench: {args.requests} requests "
                f"({args.distinct} distinct), {args.workers} workers"
            ),
        )
    )
    if args.show_metrics and last is not None:
        print()
        print(
            render_metrics(
                last["service"].metrics,
                title=f"per-stage metrics (batch={batch_sizes[-1]})",
                prefix="serve.",
            )
        )
        print(
            render_metrics(
                last["service"].metrics, prefix="time.serve."
            )
        )
        print()
        print(
            render_percentiles(
                last["service"].metrics,
                ["serve.latency", "serve.queue_wait", "serve.device_time"],
                title="latency percentiles (observed histograms)",
            )
        )
    if args.trace and tracer is not None:
        _export_trace(tracer, args.trace)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": cmd_solve,
        "generate": cmd_generate,
        "info": cmd_info,
        "list": cmd_list,
        "trace": cmd_trace,
        "certify": cmd_certify,
        "fuzz": cmd_fuzz,
        "replay": cmd_replay,
        "chaos": cmd_chaos,
        "guard": cmd_guard,
        "bench-smoke": cmd_bench_smoke,
        "warm-bench": cmd_warm_bench,
        "portfolio-bench": cmd_portfolio_bench,
        "cluster-bench": cmd_cluster_bench,
        "serve-bench": cmd_serve_bench,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
