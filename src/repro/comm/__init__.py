"""Simulated message-passing substrate.

The paper's strategies 2–4 (§3) orchestrate branch-and-cut across many
nodes with MPI, in the style of the Ubiquity Generator (UG) framework
(§2.3): a Supervisor–Worker layout with ramp-up, dynamic load balancing,
and checkpointing.  No MPI runtime exists here, so this package provides
a deterministic in-process equivalent:

- :mod:`repro.comm.network` — latency/bandwidth network model and
  payload sizing.
- :mod:`repro.comm.mpi` — :class:`SimMPI`: ranks are generator
  coroutines that yield communication requests (``Send``, ``Recv``,
  ``Barrier``, ``Bcast``, ``Allreduce``, ``Gather``, ``Compute``); an
  event-driven scheduler matches messages, advances per-rank simulated
  clocks, and detects deadlock.
- :mod:`repro.comm.supervisor` — the UG-style supervisor–worker engine
  used by the distributed branch-and-bound strategies.
"""

from repro.comm.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Allreduce,
    Recv,
    Reduce,
    Scatter,
    Send,
    SimMPI,
)
from repro.comm.network import NetworkSpec, SUMMIT_FAT_TREE, payload_bytes
from repro.comm.supervisor import (
    SupervisorConfig,
    SupervisorResult,
    Task,
    TaskResult,
    run_supervisor_worker,
)

__all__ = [
    "SimMPI",
    "Send",
    "Recv",
    "Barrier",
    "Bcast",
    "Allreduce",
    "Gather",
    "Reduce",
    "Scatter",
    "Compute",
    "ANY_SOURCE",
    "ANY_TAG",
    "NetworkSpec",
    "SUMMIT_FAT_TREE",
    "payload_bytes",
    "Task",
    "TaskResult",
    "SupervisorConfig",
    "SupervisorResult",
    "run_supervisor_worker",
]
