"""Inter-node network model and payload sizing.

Message cost is the usual alpha–beta model: ``latency + bytes/bandwidth``.
Payload byte counts are estimated structurally so that shipping a
branch-and-bound node (bounds + basis) across ranks is priced like the
real serialized object would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class NetworkSpec:
    """Alpha–beta cost model for one interconnect."""

    name: str
    #: One-way message latency in seconds (alpha).
    latency: float
    #: Point-to-point bandwidth in B/s (1/beta).
    bandwidth: float

    def message_time(self, nbytes: int) -> float:
        """Seconds for one point-to-point message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth


#: Summit-class fat-tree: ~1.5 µs latency, 12.5 GB/s per direction.
SUMMIT_FAT_TREE = NetworkSpec(name="summit-fat-tree", latency=1.5e-6, bandwidth=12.5e9)

#: A loopback network for single-node (threaded) runs: shared memory.
SHARED_MEMORY = NetworkSpec(name="shared-memory", latency=2e-7, bandwidth=100e9)

#: A free network: every message takes exactly 0 seconds.  Used by the
#: differential lane to make a 1-shard cluster timing-identical to a
#: plain single-pool service (any nonzero routing cost would shift
#: arrival times and break bitwise response equality).
ZERO_COST = NetworkSpec(name="zero-cost", latency=0.0, bandwidth=float("inf"))


def payload_bytes(payload: Any) -> int:
    """Structural estimate of a payload's serialized size in bytes."""
    if payload is None:
        return 8
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return 16 + sum(payload_bytes(k) + payload_bytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(payload_bytes(item) for item in payload)
    size_hint = getattr(payload, "comm_nbytes", None)
    if size_hint is not None:
        return int(size_hint() if callable(size_hint) else size_hint)
    # Unknown object: charge a conservative flat envelope.
    return 256
