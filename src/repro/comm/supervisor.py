"""UG-style Supervisor–Worker engine over SimMPI.

Paper §2.3: the Ubiquity Generator framework parallelizes a
branch-and-bound base solver with a Supervisor–Worker coordination
mechanism — the supervisor keeps a small pool of sub-problems for load
balancing, implements *ramp-up* (growing the pool before wide
distribution), dynamic load balancing, and checkpointing/restart.  This
module implements that engine generically: callers provide the root
tasks and an ``evaluate`` function; branch-and-bound plugs in its node
evaluation, but the engine is independently testable.

Consistent snapshots (paper §2.1): in a distributed run the snapshot
must include (a) tasks being evaluated and (b) tasks in transit.  The
supervisor owns both sets here (tasks are handed out and returned via
messages it sees), so the snapshot taken at result-receipt — queued ∪
outstanding — is exactly the paper's consistent leaf set.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.comm.mpi import ANY_SOURCE, Compute, Recv, Send, SimMPI
from repro.comm.network import SUMMIT_FAT_TREE, NetworkSpec
from repro.errors import CommError
from repro.metrics import Metrics

#: Message tags for the supervisor protocol.
TAG_WORK_REQUEST = 1
TAG_TASK = 2
TAG_RESULT = 3
TAG_STOP = 4


@dataclass(frozen=True)
class Task:
    """One unit of distributable work (a branch-and-bound node).

    ``priority`` orders the supervisor's pool (smaller first — for
    best-first B&B use the negated LP bound).  ``nbytes`` prices the
    message that ships this task to a worker.
    """

    payload: Any
    priority: float = 0.0
    nbytes: int = 256

    def comm_nbytes(self) -> int:
        """Hook for :func:`repro.comm.network.payload_bytes`."""
        return self.nbytes


@dataclass(frozen=True)
class TaskResult:
    """What evaluating one task produced."""

    #: New tasks spawned (branch children); empty when the node closed.
    children: Tuple[Task, ...] = ()
    #: Simulated seconds the evaluation took on the worker.
    compute_seconds: float = 0.0
    #: New incumbent objective if the evaluation found one (maximization).
    incumbent: Optional[float] = None
    #: Free-form detail carried back to the caller.
    detail: Any = None


#: evaluate(payload, incumbent) -> TaskResult; must be pure per payload.
EvaluateFn = Callable[[Any, Optional[float]], TaskResult]


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervisor–worker engine."""

    num_workers: int
    #: Expand tasks on the supervisor until the pool can feed every
    #: worker (UG's ramp-up).  Without it the initial task trickles out.
    ramp_up: bool = True
    #: Dynamic load balancing: children return to the global pool.  When
    #: False, children stay on the worker that produced them (static).
    dynamic_load_balancing: bool = True
    #: Record a consistent snapshot every N completed evaluations
    #: (0 disables checkpointing).
    checkpoint_every: int = 0
    #: Safety valve on total evaluations.
    max_evaluations: int = 1_000_000
    #: Called with each snapshot as it is taken.  Unlike the in-memory
    #: ``SupervisorResult.snapshots`` list (lost if the run dies), a
    #: sink outlives a crashed run — it is how rank-loss recovery gets
    #: the latest consistent snapshot to restart from.
    checkpoint_sink: Optional[Callable[["Snapshot"], None]] = None


@dataclass
class Snapshot:
    """A consistent snapshot: tasks that preserve the optimum."""

    #: Simulated supervisor time at capture.
    when: float
    #: Payloads of queued + outstanding tasks.
    tasks: List[Any]
    #: Incumbent at capture time.
    incumbent: Optional[float]


@dataclass
class SupervisorResult:
    """Outcome of a supervisor–worker run."""

    makespan: float
    evaluations: int
    incumbent: Optional[float]
    details: List[Any]
    snapshots: List[Snapshot]
    #: Per-rank clocks (rank 0 is the supervisor).
    clocks: List[float]
    metrics: Metrics
    #: Evaluations performed per worker rank (1-indexed ranks).
    per_worker: List[int] = field(default_factory=list)


def run_supervisor_worker(
    roots: List[Task],
    evaluate: EvaluateFn,
    config: SupervisorConfig,
    network: NetworkSpec = SUMMIT_FAT_TREE,
) -> SupervisorResult:
    """Run tasks to exhaustion on ``num_workers`` workers + 1 supervisor.

    With ``num_workers == 0`` the supervisor evaluates everything itself
    (the sequential baseline the scaling experiment E8 normalizes by).
    """
    if config.num_workers < 0:
        raise CommError(f"num_workers must be >= 0, got {config.num_workers}")
    if config.num_workers == 0:
        return _run_sequential(roots, evaluate, config)
    if config.dynamic_load_balancing:
        program = _make_dynamic_program(roots, evaluate, config)
    else:
        program = _make_static_program(roots, evaluate, config)
    mpi = SimMPI(config.num_workers + 1, network=network)
    run = mpi.run(program)
    sup: _SupervisorOutcome = run.results[0]
    return SupervisorResult(
        makespan=run.makespan,
        evaluations=sup.evaluations,
        incumbent=sup.incumbent,
        details=sup.details,
        snapshots=sup.snapshots,
        clocks=run.clocks,
        metrics=run.metrics,
        per_worker=sup.per_worker,
    )


# ---------------------------------------------------------------------------
# Sequential baseline
# ---------------------------------------------------------------------------


def _run_sequential(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig
) -> SupervisorResult:
    pool = _TaskPool(roots)
    clock = 0.0
    incumbent: Optional[float] = None
    details: List[Any] = []
    snapshots: List[Snapshot] = []
    evaluations = 0
    while pool and evaluations < config.max_evaluations:
        task = pool.pop()
        result = evaluate(task.payload, incumbent)
        clock += result.compute_seconds
        evaluations += 1
        incumbent = _merge_incumbent(incumbent, result.incumbent)
        if result.detail is not None:
            details.append(result.detail)
        for child in result.children:
            pool.push(child)
        if config.checkpoint_every and evaluations % config.checkpoint_every == 0:
            snapshot = Snapshot(when=clock, tasks=pool.payloads(), incumbent=incumbent)
            snapshots.append(snapshot)
            if config.checkpoint_sink is not None:
                config.checkpoint_sink(snapshot)
    return SupervisorResult(
        makespan=clock,
        evaluations=evaluations,
        incumbent=incumbent,
        details=details,
        snapshots=snapshots,
        clocks=[clock],
        metrics=Metrics(),
        per_worker=[],
    )


# ---------------------------------------------------------------------------
# Shared machinery
# ---------------------------------------------------------------------------


class _TaskPool:
    """Priority pool with deterministic FIFO tie-breaking."""

    def __init__(self, roots: List[Task]):
        self._heap: List[Tuple[float, int, Task]] = []
        self._counter = itertools.count()
        for task in roots:
            self.push(task)

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (task.priority, next(self._counter), task))

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def payloads(self) -> List[Any]:
        return [task.payload for _, _, task in sorted(self._heap, key=lambda t: t[:2])]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


def _merge_incumbent(current: Optional[float], new: Optional[float]) -> Optional[float]:
    """Keep the larger objective (maximization convention)."""
    if new is None:
        return current
    if current is None or new > current:
        return new
    return current


@dataclass
class _SupervisorOutcome:
    evaluations: int
    incumbent: Optional[float]
    details: List[Any]
    snapshots: List[Snapshot]
    per_worker: List[int]


# ---------------------------------------------------------------------------
# Dynamic load balancing protocol
# ---------------------------------------------------------------------------


def _make_dynamic_program(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig
):
    def program(rank: int, size: int) -> Generator:
        if rank == 0:
            return (yield from _dynamic_supervisor(roots, evaluate, config, size))
        return (yield from _dynamic_worker(evaluate))

    return program


def _dynamic_supervisor(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig, size: int
) -> Generator:
    pool = _TaskPool(roots)
    incumbent: Optional[float] = None
    details: List[Any] = []
    snapshots: List[Snapshot] = []
    per_worker = [0] * size  # index by rank; rank 0 stays zero
    evaluations = 0
    outstanding = 0  # tasks handed to workers, results not yet back
    outstanding_tasks: dict = {}  # worker rank -> Task in flight / in eval
    idle_workers: List[int] = []

    # Ramp-up: expand locally until every worker can receive a task.
    if config.ramp_up:
        while pool and len(pool) < config.num_workers and evaluations < config.max_evaluations:
            task = pool.pop()
            result = evaluate(task.payload, incumbent)
            yield Compute(seconds=result.compute_seconds)
            evaluations += 1
            incumbent = _merge_incumbent(incumbent, result.incumbent)
            if result.detail is not None:
                details.append(result.detail)
            for child in result.children:
                pool.push(child)

    stopped = 0
    while stopped < config.num_workers:
        msg = yield Recv(source=ANY_SOURCE)
        if msg.tag == TAG_WORK_REQUEST:
            if pool and evaluations + outstanding < config.max_evaluations:
                task = pool.pop()
                outstanding += 1
                outstanding_tasks[msg.source] = task
                yield Send(dest=msg.source, payload=(task, incumbent), tag=TAG_TASK)
            elif outstanding == 0:
                yield Send(dest=msg.source, tag=TAG_STOP)
                stopped += 1
            else:
                idle_workers.append(msg.source)
        elif msg.tag == TAG_RESULT:
            outstanding -= 1
            outstanding_tasks.pop(msg.source, None)
            result: TaskResult = msg.payload
            evaluations += 1
            per_worker[msg.source] += 1
            incumbent = _merge_incumbent(incumbent, result.incumbent)
            if result.detail is not None:
                details.append(result.detail)
            for child in result.children:
                pool.push(child)
            if config.checkpoint_every and evaluations % config.checkpoint_every == 0:
                # Consistent snapshot (§2.1): queued tasks ∪ tasks still
                # with workers or in transit — together they preserve the
                # optimum no matter where the search is interrupted.
                snapshot = Snapshot(
                    when=msg.arrival,
                    tasks=pool.payloads()
                    + [t.payload for t in outstanding_tasks.values()],
                    incumbent=incumbent,
                )
                snapshots.append(snapshot)
                if config.checkpoint_sink is not None:
                    config.checkpoint_sink(snapshot)
            # Feed idle workers as work becomes available.
            while idle_workers and pool and evaluations + outstanding < config.max_evaluations:
                worker = idle_workers.pop(0)
                task = pool.pop()
                outstanding += 1
                outstanding_tasks[worker] = task
                yield Send(dest=worker, payload=(task, incumbent), tag=TAG_TASK)
            if not pool and outstanding == 0:
                while idle_workers:
                    yield Send(dest=idle_workers.pop(0), tag=TAG_STOP)
                    stopped += 1
        else:  # pragma: no cover - protocol violation
            raise CommError(f"supervisor got unexpected tag {msg.tag}")

    return _SupervisorOutcome(
        evaluations=evaluations,
        incumbent=incumbent,
        details=details,
        snapshots=snapshots,
        per_worker=per_worker[1:],
    )


def _dynamic_worker(evaluate: EvaluateFn) -> Generator:
    while True:
        yield Send(dest=0, tag=TAG_WORK_REQUEST)
        msg = yield Recv(source=0)
        if msg.tag == TAG_STOP:
            return None
        task, incumbent = msg.payload
        result = evaluate(task.payload, incumbent)
        yield Compute(seconds=result.compute_seconds)
        yield Send(dest=0, payload=result, tag=TAG_RESULT)


# ---------------------------------------------------------------------------
# Static partitioning protocol (the no-load-balancing ablation)
# ---------------------------------------------------------------------------


def _make_static_program(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig
):
    def program(rank: int, size: int) -> Generator:
        if rank == 0:
            return (yield from _static_supervisor(roots, evaluate, config))
        return (yield from _static_worker(roots, evaluate, config, rank))

    return program


def _static_supervisor(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig
) -> Generator:
    incumbent: Optional[float] = None
    details: List[Any] = []
    evaluations = 0
    per_worker = [0] * config.num_workers
    for _ in range(config.num_workers):
        msg = yield Recv(source=ANY_SOURCE, tag=TAG_RESULT)
        count, best, worker_details = msg.payload
        evaluations += count
        per_worker[msg.source - 1] = count
        incumbent = _merge_incumbent(incumbent, best)
        details.extend(worker_details)
    return _SupervisorOutcome(
        evaluations=evaluations,
        incumbent=incumbent,
        details=details,
        snapshots=[],
        per_worker=per_worker,
    )


def _static_worker(
    roots: List[Task], evaluate: EvaluateFn, config: SupervisorConfig, rank: int
) -> Generator:
    # Round-robin ownership of root tasks; children never migrate.
    mine = [task for i, task in enumerate(roots) if i % config.num_workers == rank - 1]
    pool = _TaskPool(mine)
    incumbent: Optional[float] = None
    details: List[Any] = []
    count = 0
    while pool and count < config.max_evaluations // config.num_workers:
        task = pool.pop()
        result = evaluate(task.payload, incumbent)
        yield Compute(seconds=result.compute_seconds)
        count += 1
        incumbent = _merge_incumbent(incumbent, result.incumbent)
        if result.detail is not None:
            details.append(result.detail)
        for child in result.children:
            pool.push(child)
    yield Send(dest=0, payload=(count, incumbent, details), tag=TAG_RESULT)
    return None
