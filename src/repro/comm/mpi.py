"""SimMPI: deterministic, event-driven simulated MPI.

Rank programs are *generator functions* that yield request objects and
are resumed with the request's result — the mpi4py surface reduced to
what parallel branch-and-cut needs (paper §2.3/§3):

    def worker(rank, size):
        msg = yield Recv()                       # blocking receive
        yield Compute(seconds=msg.payload.cost)  # model local work
        yield Send(dest=0, payload=result)       # eager buffered send
        total = yield Allreduce(local, op=max)   # collective
        return final_value

The scheduler maintains one simulated clock per rank, matches sends to
receives with alpha–beta message timing, executes collectives with
log₂(P) tree timing, and raises :class:`DeadlockError` when every
unfinished rank is blocked on a message that can never arrive.

Determinism: ready ranks are always resumed in rank order, and message
matching is FIFO per (source, tag) — repeated runs give identical
schedules and clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro import obs
from repro.comm.network import SUMMIT_FAT_TREE, NetworkSpec, payload_bytes
from repro.errors import CommError, DeadlockError, RankError, RankLostError
from repro.faults.injector import active as fault_active
from repro.metrics import Metrics

#: Wildcard source for :class:`Recv`.
ANY_SOURCE = -1
#: Wildcard tag for :class:`Recv`.
ANY_TAG = -1


@dataclass(frozen=True)
class Send:
    """Eager buffered send: deposits the message and continues."""

    dest: int
    payload: Any = None
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Blocking receive; matches by (source, tag) with wildcards."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class Probe:
    """Non-blocking probe: resumes immediately with a bool (message waiting?)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class Compute:
    """Advance this rank's clock by ``seconds`` of local work."""

    seconds: float


@dataclass(frozen=True)
class Barrier:
    """Synchronize all ranks (tree timing)."""


@dataclass(frozen=True)
class Bcast:
    """Broadcast ``payload`` from ``root``; every rank receives it."""

    root: int = 0
    payload: Any = None


@dataclass(frozen=True)
class Allreduce:
    """Reduce ``value`` across ranks with ``op``; all ranks get the result."""

    value: Any
    op: Callable[[Any, Any], Any]


@dataclass(frozen=True)
class Gather:
    """Gather ``value`` from every rank to ``root`` (others get None)."""

    value: Any
    root: int = 0


@dataclass(frozen=True)
class Reduce:
    """Reduce ``value`` to ``root`` with ``op`` (others get None)."""

    value: Any
    op: Callable[[Any, Any], Any]
    root: int = 0


@dataclass(frozen=True)
class Scatter:
    """Root supplies ``values`` (one per rank); each rank gets its own."""

    values: Any = None
    root: int = 0


@dataclass(frozen=True)
class Message:
    """A matched receive's result."""

    source: int
    tag: int
    payload: Any
    #: Simulated time at which the message became available.
    arrival: float


@dataclass(eq=False)
class _RankState:
    gen: Generator
    rank: int
    clock: float = 0.0
    finished: bool = False
    result: Any = None
    #: Pending value to resume the generator with.
    resume_value: Any = None
    #: Set when blocked on a Recv that found no match.
    blocked_recv: Optional[Recv] = None
    #: Set when waiting at a collective.
    at_collective: Optional[Tuple[str, Any]] = None
    #: Messages sent to this rank, in deposit order.
    mailbox: List[Message] = field(default_factory=list)


class SimMPI:
    """A simulated communicator over ``num_ranks`` ranks."""

    def __init__(
        self,
        num_ranks: int,
        network: NetworkSpec = SUMMIT_FAT_TREE,
        metrics: Optional[Metrics] = None,
    ):
        if num_ranks < 1:
            raise RankError(f"need at least 1 rank, got {num_ranks}")
        self.num_ranks = num_ranks
        self.network = network
        self.metrics = metrics if metrics is not None else Metrics()
        self._ranks: List[_RankState] = []

    # -- public API ------------------------------------------------------------

    def run(
        self, program: Callable[[int, int], Generator], max_steps: int = 10_000_000
    ) -> "SimMPIResult":
        """Run ``program(rank, size)`` on every rank to completion.

        Returns a :class:`SimMPIResult` with per-rank return values and
        clocks.  Raises :class:`DeadlockError` if progress stalls and
        :class:`CommError` if ``max_steps`` scheduler steps are exceeded.
        """
        self._ranks = [
            _RankState(gen=program(rank, self.num_ranks), rank=rank)
            for rank in range(self.num_ranks)
        ]
        steps = 0
        while not all(r.finished for r in self._ranks):
            progressed = self._step_ready_ranks()
            if not progressed:
                progressed = self._try_unblock()
            if not progressed:
                self._raise_deadlock()
            steps += 1
            if steps > max_steps:
                raise CommError(f"scheduler exceeded {max_steps} steps")
        return SimMPIResult(
            results=[r.result for r in self._ranks],
            clocks=[r.clock for r in self._ranks],
            metrics=self.metrics,
        )

    # -- scheduling ------------------------------------------------------------

    def _step_ready_ranks(self) -> bool:
        progressed = False
        for rank, state in enumerate(self._ranks):
            if state.finished or state.blocked_recv or state.at_collective:
                continue
            progressed = True
            self._resume(rank, state)
        return progressed

    def _resume(self, rank: int, state: _RankState) -> None:
        injector = fault_active()
        if injector is not None and injector.rank_drop(rank):
            # The rank dies before making progress; the whole run fails
            # fast so a supervisor-level recovery loop can restart from
            # its latest consistent snapshot.
            state.finished = True
            state.gen.close()
            self.metrics.inc("comm.rank_drops")
            obs.event("fault.rank_drop", category="fault", rank=rank)
            raise RankLostError(rank)
        value, state.resume_value = state.resume_value, None
        try:
            request = state.gen.send(value)
        except StopIteration as stop:
            state.finished = True
            state.result = stop.value
            return
        self._handle(rank, state, request)

    def _handle(self, rank: int, state: _RankState, request: Any) -> None:
        if isinstance(request, Send):
            self._do_send(rank, state, request)
        elif isinstance(request, Recv):
            if not self._try_deliver(rank, state, request):
                state.blocked_recv = request
        elif isinstance(request, Probe):
            state.resume_value = self._find_match(rank, request, state.clock) is not None
        elif isinstance(request, Compute):
            if request.seconds < 0:
                raise CommError(f"negative compute time {request.seconds}")
            start = state.clock
            state.clock += request.seconds
            self.metrics.add_time("time.compute", request.seconds)
            tracer = obs.active()
            if tracer is not None:
                tracer.sim_span(
                    "compute", start, request.seconds,
                    f"rank{rank}", category="comm",
                )
        elif isinstance(request, (Barrier, Bcast, Allreduce, Gather, Reduce, Scatter)):
            state.at_collective = (type(request).__name__, request)
            self._maybe_complete_collective()
        else:
            raise CommError(f"rank {rank} yielded unknown request {request!r}")

    def _do_send(self, rank: int, state: _RankState, request: Send) -> None:
        if not (0 <= request.dest < self.num_ranks):
            raise RankError(f"send to invalid rank {request.dest}")
        nbytes = payload_bytes(request.payload)
        cost = self.network.message_time(nbytes)
        # Eager protocol: sender pays injection, message lands after flight.
        inject_start = state.clock
        state.clock += self.network.latency
        arrival = state.clock + cost
        self._ranks[request.dest].mailbox.append(
            Message(source=rank, tag=request.tag, payload=request.payload, arrival=arrival)
        )
        self.metrics.inc("comm.messages")
        self.metrics.inc("comm.bytes", nbytes)
        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                f"send->{request.dest}", inject_start, arrival - inject_start,
                f"rank{rank}", category="comm",
                dest=request.dest, tag=request.tag, nbytes=nbytes,
            )
        state.resume_value = None

    def _find_match(
        self, rank: int, request: Recv, ready_by: Optional[float]
    ) -> Optional[int]:
        mailbox = self._ranks[rank].mailbox
        for idx, msg in enumerate(mailbox):
            if request.source not in (ANY_SOURCE, msg.source):
                continue
            if request.tag not in (ANY_TAG, msg.tag):
                continue
            if ready_by is not None and msg.arrival > ready_by:
                continue
            return idx
        return None

    def _try_deliver(self, rank: int, state: _RankState, request: Recv) -> bool:
        # Prefer a message already arrived; otherwise accept the earliest
        # matching in-flight message and wait for it.
        idx = self._find_match(rank, request, state.clock)
        if idx is None:
            idx = self._find_earliest_match(rank, request)
        if idx is None:
            return False
        msg = self._ranks[rank].mailbox.pop(idx)
        state.clock = max(state.clock, msg.arrival)
        state.resume_value = msg
        state.blocked_recv = None
        return True

    def _find_earliest_match(self, rank: int, request: Recv) -> Optional[int]:
        best_idx, best_arrival = None, None
        for idx, msg in enumerate(self._ranks[rank].mailbox):
            if request.source not in (ANY_SOURCE, msg.source):
                continue
            if request.tag not in (ANY_TAG, msg.tag):
                continue
            if best_arrival is None or msg.arrival < best_arrival:
                best_idx, best_arrival = idx, msg.arrival
        return best_idx

    def _try_unblock(self) -> bool:
        progressed = False
        for rank, state in enumerate(self._ranks):
            if state.finished or state.blocked_recv is None:
                continue
            if self._try_deliver(rank, state, state.blocked_recv):
                self._resume(rank, state)
                progressed = True
        return progressed

    # -- collectives -------------------------------------------------------------

    def _maybe_complete_collective(self) -> None:
        waiting = [r for r in self._ranks if r.at_collective and not r.finished]
        active = [r for r in self._ranks if not r.finished]
        if len(waiting) != len(active) or not waiting:
            return
        kinds = {r.at_collective[0] for r in waiting}
        if len(kinds) != 1:
            raise CommError(f"mismatched collectives: {sorted(kinds)}")
        kind = kinds.pop()
        requests = [r.at_collective[1] for r in waiting]
        # Tree-structured timing: log2(P) message steps from the latest rank.
        depth = max(1, math.ceil(math.log2(max(2, len(waiting)))))
        start = max(r.clock for r in waiting)

        if kind == "Barrier":
            finish = start + depth * self.network.latency
            results = [None] * len(waiting)
        elif kind == "Bcast":
            roots = {req.root for req in requests}
            if len(roots) != 1:
                raise CommError(f"Bcast with mismatched roots {sorted(roots)}")
            root = roots.pop()
            payload = next(
                req.payload for r, req in zip(waiting, requests) if r.rank == root
            )
            nbytes = payload_bytes(payload)
            finish = start + depth * self.network.message_time(nbytes)
            results = [payload] * len(waiting)
        elif kind == "Allreduce":
            op = requests[0].op
            acc = requests[0].value
            for req in requests[1:]:
                acc = op(acc, req.value)
            nbytes = max(payload_bytes(req.value) for req in requests)
            finish = start + 2 * depth * self.network.message_time(nbytes)
            results = [acc] * len(waiting)
        elif kind == "Reduce":
            roots = {req.root for req in requests}
            if len(roots) != 1:
                raise CommError(f"Reduce with mismatched roots {sorted(roots)}")
            root = roots.pop()
            op = requests[0].op
            acc = requests[0].value
            for req in requests[1:]:
                acc = op(acc, req.value)
            nbytes = max(payload_bytes(req.value) for req in requests)
            finish = start + depth * self.network.message_time(nbytes)
            results = [acc if r.rank == root else None for r in waiting]
        elif kind == "Scatter":
            roots = {req.root for req in requests}
            if len(roots) != 1:
                raise CommError(f"Scatter with mismatched roots {sorted(roots)}")
            root = roots.pop()
            values = next(
                req.values for r, req in zip(waiting, requests) if r.rank == root
            )
            if values is None or len(values) != self.num_ranks:
                raise CommError(
                    f"Scatter root must supply one value per rank "
                    f"({0 if values is None else len(values)} != {self.num_ranks})"
                )
            nbytes = sum(payload_bytes(v) for v in values)
            finish = start + depth * self.network.latency + nbytes / self.network.bandwidth
            results = [values[r.rank] for r in waiting]
        elif kind == "Gather":
            roots = {req.root for req in requests}
            if len(roots) != 1:
                raise CommError(f"Gather with mismatched roots {sorted(roots)}")
            root = roots.pop()
            gathered = [req.value for req in requests]
            nbytes = sum(payload_bytes(req.value) for req in requests)
            finish = start + depth * self.network.latency + nbytes / self.network.bandwidth
            results = [gathered if r.rank == root else None for r in waiting]
        else:  # pragma: no cover - _handle filters kinds
            raise CommError(f"unknown collective {kind}")

        self.metrics.inc(f"comm.collective.{kind.lower()}")
        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                kind.lower(), start, finish - start,
                "collective", category="comm", ranks=len(waiting),
            )
        for state, result in zip(waiting, results):
            state.clock = finish
            state.at_collective = None
            state.resume_value = result

    # -- failure reporting ---------------------------------------------------------

    def _raise_deadlock(self) -> None:
        detail = []
        for rank, state in enumerate(self._ranks):
            if state.finished:
                continue
            if state.blocked_recv is not None:
                req = state.blocked_recv
                detail.append(
                    f"rank {rank} blocked on Recv(source={req.source}, tag={req.tag})"
                )
            elif state.at_collective is not None:
                detail.append(f"rank {rank} waiting at {state.at_collective[0]}")
            else:  # pragma: no cover - defensive
                detail.append(f"rank {rank} unexpectedly stalled")
        raise DeadlockError("; ".join(detail))


@dataclass
class SimMPIResult:
    """Outcome of a :meth:`SimMPI.run`."""

    #: Per-rank generator return values.
    results: List[Any]
    #: Per-rank final simulated clocks (seconds).
    clocks: List[float]
    metrics: Metrics

    @property
    def makespan(self) -> float:
        """Slowest rank's finish time — the job's simulated duration."""
        return max(self.clocks)
