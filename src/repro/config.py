"""Global numerical tolerances and solver defaults.

A single, explicit place for every magic number.  All solvers take their
defaults from :class:`Tolerances` / :class:`SolverDefaults` instances so
tests can tighten or loosen them without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Tolerances:
    """Numerical tolerances shared across the LP/MIP stack."""

    #: Feasibility tolerance on primal constraint violation.
    feasibility: float = 1e-7
    #: Optimality (reduced-cost / dual feasibility) tolerance.
    optimality: float = 1e-7
    #: A variable is considered integral when within this of an integer.
    integrality: float = 1e-6
    #: Pivot magnitudes below this are treated as zero in factorizations.
    pivot: float = 1e-10
    #: Relative MIP gap at which branch-and-bound declares optimality.
    mip_gap: float = 1e-6
    #: Absolute MIP gap companion to :attr:`mip_gap`.
    mip_gap_abs: float = 1e-9
    #: Entries below this are dropped when sparsifying.
    drop: float = 1e-12

    def is_integral(self, value: float) -> bool:
        """True when ``value`` is within the integrality tolerance of ℤ."""
        return abs(value - round(value)) <= self.integrality


@dataclass(frozen=True)
class SolverDefaults:
    """Iteration budgets and cadence defaults for the solvers."""

    #: Simplex iteration limit as ``base + factor * (m + n)``.
    simplex_iter_base: int = 2000
    simplex_iter_factor: int = 40
    #: Refactorize the basis every this-many eta updates.
    refactor_interval: int = 64
    #: Interior-point maximum iterations.
    ipm_max_iter: int = 100
    #: Branch-and-bound node budget.
    node_limit: int = 200_000
    #: Maximum cut-generation rounds per node.
    cut_rounds: int = 4
    #: Maximum cuts accepted per round.
    cuts_per_round: int = 16

    def simplex_iter_limit(self, m: int, n: int) -> int:
        """Iteration budget for an ``m``-constraint, ``n``-variable LP."""
        return self.simplex_iter_base + self.simplex_iter_factor * (m + n)


#: Library-wide default tolerance set.
DEFAULT_TOLERANCES = Tolerances()

#: Library-wide default solver settings.
DEFAULT_SOLVER = SolverDefaults()


@dataclass
class Config:
    """Bundle of tolerances and defaults passed through solver stacks."""

    tolerances: Tolerances = field(default_factory=Tolerances)
    solver: SolverDefaults = field(default_factory=SolverDefaults)
    #: Seed used by any internal randomized tie-breaking.
    seed: int = 0


DEFAULT_CONFIG = Config()
