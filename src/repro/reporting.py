"""Plain-text table/series rendering for experiment reports.

Every benchmark prints its rows through these helpers so EXPERIMENTS.md
and the bench output share one format.  No plotting dependencies — the
"figures" are rendered as aligned series tables plus an ASCII sparkline.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Keys every report dict carries, in canonical order.  The optional
#: solver sections (``nodes``, ``lp_iterations``, ``makespan_seconds``,
#: ``metrics``) and surface-specific extras follow when supplied.
CORE_REPORT_KEYS = ("status", "objective", "mode", "strategy", "trace_id", "bounds")


def _clean_number(value) -> Optional[float]:
    """NaN/±inf/None → None; everything else → float."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        return None
    return value


def report_dict(
    *,
    status: str,
    objective,
    strategy: Optional[str],
    mode: str = "exact",
    trace_id: str = "",
    best_bound=None,
    gap=None,
    nodes: Optional[int] = None,
    lp_iterations: Optional[int] = None,
    makespan_seconds: Optional[float] = None,
    metrics: Optional[Dict[str, Any]] = None,
    **extra,
) -> Dict[str, Any]:
    """The one JSON-friendly report shape shared by every solve surface.

    :meth:`repro.api.SolveReport.to_dict`,
    :meth:`repro.strategies.engine.StrategyReport.to_dict`, and
    :meth:`repro.serve.SolveResponse.to_dict` all delegate here, so a
    dashboard reading one of them reads all three.  Non-finite numbers
    export as ``None``; the core keys (:data:`CORE_REPORT_KEYS` plus the
    ``bounds`` sub-keys) are always present, optional solver sections
    appear only when the surface supplies them, and keyword extras land
    after them in the order given.
    """
    out: Dict[str, Any] = {
        "status": status,
        "objective": _clean_number(objective),
        "mode": mode,
        "strategy": strategy,
        "trace_id": trace_id,
        "bounds": {
            "best_bound": _clean_number(best_bound),
            "gap": _clean_number(gap),
        },
    }
    if nodes is not None:
        out["nodes"] = nodes
    if lp_iterations is not None:
        out["lp_iterations"] = lp_iterations
    if makespan_seconds is not None:
        out["makespan_seconds"] = makespan_seconds
    if metrics is not None:
        out["metrics"] = metrics
    out.update(extra)
    return out


def format_value(value) -> str:
    """Compact human-readable cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Engineering-style time formatting."""
    if seconds <= 0:
        return "0"
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("µs", 1e-6), ("ns", 1e-9)):
        if seconds >= scale:
            return f"{seconds / scale:.3g} {unit}"
    return f"{seconds:.3g} s"


def format_bytes(nbytes: int) -> str:
    """Binary-prefixed byte counts."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.3g} {unit}"
        value /= 1024
    return f"{value:.3g} TiB"  # pragma: no cover - loop always returns


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_metrics(metrics, title: Optional[str] = None, prefix: Optional[str] = None) -> str:
    """Table of a :class:`repro.metrics.Metrics` object's buckets.

    Counters render as counts, time buckets as engineering-style times;
    ``prefix`` keeps only keys starting with it (e.g. ``"serve."``).
    The object is read through :meth:`Metrics.to_dict`, so any mapping
    with that method works.
    """
    data = metrics.to_dict()
    rows: List[tuple] = []
    for name, value in data["counters"].items():
        if prefix and not name.startswith(prefix):
            continue
        rows.append((name, value))
    for name, value in data["times"].items():
        if prefix and not name.startswith(prefix):
            continue
        rows.append((name, format_seconds(value)))
    return render_table(["metric", "value"], rows, title=title)


def render_trace(rows, title: Optional[str] = None) -> str:
    """Table of :func:`repro.obs.summarize_spans`-shaped rows.

    Each row is ``(timeline, name, count, total, mean, max)`` with the
    durations in seconds; they render with engineering-style times.
    """
    table_rows = [
        (
            timeline,
            name,
            count,
            format_seconds(total),
            format_seconds(mean),
            format_seconds(peak),
        )
        for timeline, name, count, total, mean, peak in rows
    ]
    return render_table(
        ["timeline", "span", "count", "total", "mean", "max"],
        table_rows,
        title=title,
    )


def render_percentiles(metrics, names: Sequence[str], title: Optional[str] = None) -> str:
    """Table of p50/p95/p99 latency summaries from observed histograms.

    ``names`` selects histograms on a :class:`repro.metrics.Metrics` (or
    :class:`repro.obs.MetricsRegistry`); missing/empty ones are skipped.
    """
    rows = []
    for name in names:
        hist = metrics.histogram(name) if hasattr(metrics, "histogram") else None
        if hist is None or not hist.count:
            continue
        rows.append(
            (
                name,
                hist.count,
                format_seconds(hist.percentile(50.0)),
                format_seconds(hist.percentile(95.0)),
                format_seconds(hist.percentile(99.0)),
                format_seconds(hist.mean),
            )
        )
    return render_table(
        ["histogram", "count", "p50", "p95", "p99", "mean"], rows, title=title
    )


def render_certificate(report) -> str:
    """Table of a :class:`repro.check.CertificateReport`'s exact checks."""
    rows = [
        (
            check.name,
            "pass" if check.ok else "FAIL",
            check.violation,
            check.tolerance,
            check.detail,
        )
        for check in report.checks
    ]
    return render_table(
        ["check", "status", "violation", "tolerance", "detail"],
        rows,
        title=f"certificate: {report.problem_name}",
    )


def render_differential(report) -> str:
    """Tables of a :class:`repro.check.DifferentialReport`'s runs/conflicts."""
    rows = [
        (
            run.name,
            run.status,
            run.objective,
            "yes" if run.conclusive else "no",
        )
        for run in report.runs
    ]
    out = render_table(
        ["solver", "status", "objective", "conclusive"],
        rows,
        title=f"differential: {report.problem_name}",
    )
    if report.disagreements:
        conflict_rows = [
            (d.left, d.right, d.kind, d.left_value, d.right_value, d.delta)
            for d in report.disagreements
        ]
        out += "\n" + render_table(
            ["left", "right", "kind", "left value", "right value", "delta"],
            conflict_rows,
            title="DISAGREEMENTS",
        )
    return out


def render_fuzz(report) -> str:
    """Summary + failure tables of a :class:`repro.check.FuzzReport`."""
    rows = [
        ("instances", report.instances),
        ("certificate checks", report.certificate_checks),
        ("differential checks", report.differential_checks),
        ("LP differential checks", report.lp_differential_checks),
        ("warm-vs-cold checks", getattr(report, "warm_checks", 0)),
        ("metamorphic checks", report.metamorphic_checks),
        ("solver errors", report.solver_errors),
        ("failures", len(report.failures)),
    ]
    out = render_table(
        ["metric", "value"],
        rows,
        title=f"fuzz: budget {report.budget}, seed {report.seed}",
    )
    if report.failures:
        failure_rows = [
            (
                f.kind,
                f.iteration,
                "x".join(str(v) for v in f.shrunk_size) or "-",
                f.repro_path,
                f.detail[:60],
            )
            for f in report.failures
        ]
        out += "\n" + render_table(
            ["kind", "iter", "shrunk (m,n,nnz)", "repro file", "detail"],
            failure_rows,
            title="FAILURES",
        )
    return out


def render_chaos(report) -> str:
    """Per-run table of a :class:`repro.faults.chaos.ChaosReport`."""
    rows = []
    for run in report.runs:
        counts = run.counts or {}
        rows.append(
            (
                "ok" if run.ok else "FAIL",
                run.plan,
                run.scenario,
                counts.get("injected", 0),
                counts.get("recovered", 0),
                counts.get("tolerated", 0),
                counts.get("escaped", 0),
                run.detail[:48] if run.detail else "-",
            )
        )
    failures = sum(1 for run in report.runs if not run.ok)
    return render_table(
        ["", "plan", "scenario", "inj", "rec", "tol", "esc", "detail"],
        rows,
        title=(
            f"chaos: {len(report.runs)} runs, "
            f"{report.total_injected} faults injected, {failures} failures"
        ),
    )


def render_guard(report) -> str:
    """Per-case table of a :class:`repro.guard.gauntlet.GauntletReport`."""
    rows = []
    for run in report.runs:
        rows.append(
            (
                "ok" if run.ok else "FAIL",
                run.case,
                run.expect,
                run.outcome,
                ",".join(run.repaired) if run.repaired else "-",
                ",".join(f"{k}={v}" for k, v in sorted(run.counters.items()))
                or "-",
                run.detail[:48] if run.detail else "-",
            )
        )
    failures = sum(1 for run in report.runs if not run.ok)
    return render_table(
        ["", "case", "expect", "outcome", "repaired", "guard", "detail"],
        rows,
        title=f"guard gauntlet: {len(report.runs)} cases, {failures} failures",
    )


def sparkline(values: Sequence[Number]) -> str:
    """One-line unicode sparkline of a series."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Sequence[tuple],
    title: Optional[str] = None,
) -> str:
    """A "figure": x column + one column per (name, values) series,
    followed by per-series sparklines."""
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for _, values in series])
    table = render_table(headers, rows, title=title)
    sparks = "\n".join(
        f"  {name:>20}: {sparkline(values)}" for name, values in series
    )
    return f"{table}\n{sparks}"
