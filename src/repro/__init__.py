"""repro — GPU-based Mixed Integer Programming on parallel platforms.

A faithful, simulator-backed reproduction of Perumalla & Alam,
*"Design Considerations for GPU-based Mixed Integer Programming on
Parallel Computing Platforms"* (ICPP Workshops 2021).

Subpackages
-----------
- :mod:`repro.la` — dense/sparse/batched linear algebra built from scratch.
- :mod:`repro.device` — calibrated simulated GPU/CPU device model.
- :mod:`repro.comm` — simulated MPI and supervisor–worker orchestration.
- :mod:`repro.lp` — revised simplex, dual simplex, interior point.
- :mod:`repro.mip` — branch-and-cut MIP solver (the paper's subject).
- :mod:`repro.strategies` — the paper's four parallel execution strategies.
- :mod:`repro.problems` — seeded instance generators and MPS I/O.

- :mod:`repro.obs` — unified span tracing, metrics, timeline export.

The most used entry points are re-exported here::

    from repro import MIPProblem, BranchAndBoundSolver, SolverOptions
    from repro import LinearProgram, solve_lp, run_strategy
    from repro.api import solve, SolveOptions   # the unified front door
"""

from repro import obs
from repro.lp.problem import LinearProgram
from repro.lp.simplex import SimplexOptions, solve_lp
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.strategies.runner import run_strategy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "obs",
    "LinearProgram",
    "solve_lp",
    "SimplexOptions",
    "MIPProblem",
    "MIPResult",
    "MIPStatus",
    "BranchAndBoundSolver",
    "SolverOptions",
    "run_strategy",
]
