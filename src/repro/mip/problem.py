"""Mixed integer program definition (paper Eq. 1).

    maximize  cᵀx
    s.t.      A_ub x ≤ b_ub,  A_eq x = b_eq,  lb ≤ x ≤ ub
              x_j ∈ ℤ for j with integer[j]

Integer variables must carry *finite integral* bounds: finiteness makes
the standard-form matrix identical across the whole branch-and-bound
tree (only the right-hand side changes with branching bounds), which is
the matrix-reuse property the paper's §5.3 builds on, and integrality of
the bounds keeps branching floors/ceilings exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.errors import ProblemFormatError
from repro.lp.problem import LinearProgram

#: Default box for integer variables declared without finite bounds.
DEFAULT_INTEGER_BOUND = 1e6


@dataclass
class MIPProblem:
    """A maximization MIP over dense data."""

    c: np.ndarray
    integer: np.ndarray  # bool mask, True where x_j ∈ ℤ
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    lb: Optional[np.ndarray] = None
    ub: Optional[np.ndarray] = None
    name: str = "mip"

    def __post_init__(self):
        # Delegate structural validation to LinearProgram.
        base = LinearProgram(
            c=self.c,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            lb=self.lb,
            ub=self.ub,
        )
        self.c = base.c
        self.a_ub, self.b_ub = base.a_ub, base.b_ub
        self.a_eq, self.b_eq = base.a_eq, base.b_eq
        self.lb, self.ub = base.lb, base.ub
        self.integer = np.asarray(self.integer, dtype=bool)
        if self.integer.shape != (self.n,):
            raise ProblemFormatError(
                f"integer mask has shape {self.integer.shape}, expected ({self.n},)"
            )
        # Give unbounded integer variables a finite box and round bounds in.
        for j in np.nonzero(self.integer)[0]:
            if not np.isfinite(self.lb[j]):
                self.lb[j] = -DEFAULT_INTEGER_BOUND
            if not np.isfinite(self.ub[j]):
                self.ub[j] = DEFAULT_INTEGER_BOUND
            self.lb[j] = np.ceil(self.lb[j] - 1e-9)
            self.ub[j] = np.floor(self.ub[j] + 1e-9)
            if self.lb[j] > self.ub[j]:
                raise ProblemFormatError(
                    f"integer variable {j} has empty bound box "
                    f"[{self.lb[j]}, {self.ub[j]}]"
                )

    @property
    def n(self) -> int:
        """Number of decision variables."""
        return self.c.shape[0]

    @property
    def num_integer(self) -> int:
        """Number of integer-constrained variables."""
        return int(self.integer.sum())

    @property
    def is_pure_binary(self) -> bool:
        """True when every integer variable is 0/1."""
        idx = self.integer
        return bool(
            np.all(self.lb[idx] >= 0.0) and np.all(self.ub[idx] <= 1.0)
        )

    def relaxation(self) -> LinearProgram:
        """The LP relaxation (integrality dropped)."""
        return LinearProgram(
            c=self.c.copy(),
            a_ub=None if self.a_ub is None else self.a_ub.copy(),
            b_ub=None if self.b_ub is None else self.b_ub.copy(),
            a_eq=None if self.a_eq is None else self.a_eq.copy(),
            b_eq=None if self.b_eq is None else self.b_eq.copy(),
            lb=self.lb.copy(),
            ub=self.ub.copy(),
        )

    def is_feasible(
        self, x: np.ndarray, tol: Tolerances = DEFAULT_TOLERANCES
    ) -> bool:
        """Check a candidate point against all constraints + integrality."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            return False
        if self.a_ub is not None and np.any(
            self.a_ub @ x > self.b_ub + tol.feasibility * 10
        ):
            return False
        if self.a_eq is not None and np.any(
            np.abs(self.a_eq @ x - self.b_eq) > tol.feasibility * 10
        ):
            return False
        if np.any(x < self.lb - tol.feasibility * 10):
            return False
        if np.any(x > self.ub + tol.feasibility * 10):
            return False
        frac = np.abs(x[self.integer] - np.round(x[self.integer]))
        return bool(np.all(frac <= tol.integrality * 10))

    def objective(self, x: np.ndarray) -> float:
        """Objective value of a point."""
        return float(self.c @ np.asarray(x, dtype=np.float64))

    def fractional_integers(
        self, x: np.ndarray, tol: Tolerances = DEFAULT_TOLERANCES
    ) -> np.ndarray:
        """Indices of integer variables with fractional values in ``x``."""
        idx = np.nonzero(self.integer)[0]
        frac = np.abs(x[idx] - np.round(x[idx]))
        return idx[frac > tol.integrality]

    def matrix_bytes(self) -> int:
        """Dense footprint of the constraint blocks (device sizing)."""
        total = 0
        if self.a_ub is not None:
            total += self.a_ub.size * 8
        if self.a_eq is not None:
            total += self.a_eq.size * 8
        return total
