"""Consistent snapshots of a branch-and-bound search (paper §2.1).

"A consistent snapshot of the branch-and-bound tree is defined as the
set of leaves that preserves the optimal solution to the problem."  In
a sequential search that set is simply the active leaves at any moment
between node evaluations; this module captures it, serializes it, and
resumes the search from it — the checkpoint/restart facility UG provides
(§2.3) and experiment E9 measures.

The distributed variant lives in :mod:`repro.comm.supervisor` (the
supervisor's queued ∪ outstanding task set); both obey the same
invariant, tested in ``tests/mip/test_snapshot.py``: *restarting from
any snapshot reproduces the original optimum*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MIPError
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.tree import BBTree


@dataclass
class SearchSnapshot:
    """A consistent snapshot: per-leaf bound boxes plus the incumbent."""

    #: (lb, ub) pairs, one per active leaf.
    leaves: List[Tuple[np.ndarray, np.ndarray]]
    incumbent_objective: float = -np.inf
    incumbent_x: Optional[np.ndarray] = None

    @property
    def num_leaves(self) -> int:
        """Open leaves captured."""
        return len(self.leaves)

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stack the leaf boxes into (k, n) arrays for serialization."""
        if not self.leaves:
            n = 0 if self.incumbent_x is None else self.incumbent_x.shape[0]
            return np.zeros((0, n)), np.zeros((0, n))
        lbs = np.vstack([lb for lb, _ in self.leaves])
        ubs = np.vstack([ub for _, ub in self.leaves])
        return lbs, ubs

    @classmethod
    def from_arrays(
        cls,
        lbs: np.ndarray,
        ubs: np.ndarray,
        incumbent_objective: float = -np.inf,
        incumbent_x: Optional[np.ndarray] = None,
    ) -> "SearchSnapshot":
        """Rebuild a snapshot from stacked arrays."""
        leaves = [(lbs[i].copy(), ubs[i].copy()) for i in range(lbs.shape[0])]
        return cls(
            leaves=leaves,
            incumbent_objective=incumbent_objective,
            incumbent_x=incumbent_x,
        )


def capture_snapshot(
    tree: BBTree,
    incumbent_objective: float = -np.inf,
    incumbent_x: Optional[np.ndarray] = None,
) -> SearchSnapshot:
    """Capture the consistent snapshot of a (paused) search tree."""
    leaves = [tree.node_bounds(node.node_id) for node in tree.active_leaves()]
    return SearchSnapshot(
        leaves=leaves,
        incumbent_objective=incumbent_objective,
        incumbent_x=incumbent_x,
    )


def assert_search_complete(tree: BBTree) -> None:
    """Figure 1's completion invariant: no node remains ACTIVE.

    Raises :class:`MIPError` when violated.
    """
    stuck = tree.active_leaves()
    if stuck:
        ids = [n.node_id for n in stuck[:8]]
        raise MIPError(
            f"search not complete: {len(stuck)} nodes still active (e.g. {ids})"
        )


def resume_from_snapshot(
    problem: MIPProblem,
    snapshot: SearchSnapshot,
    solver_factory=None,
) -> MIPResult:
    """Finish a search from a snapshot; the optimum is preserved.

    Each captured leaf becomes an independent sub-MIP (the problem
    restricted to the leaf's bound box); the best sub-result merged with
    the snapshot incumbent equals the original problem's optimum.
    """
    from repro.mip.solver import BranchAndBoundSolver, SolverOptions

    if solver_factory is None:
        def solver_factory(sub):
            return BranchAndBoundSolver(sub, SolverOptions())

    best_obj = snapshot.incumbent_objective
    best_x = snapshot.incumbent_x
    total_nodes = 0
    for lb, ub in snapshot.leaves:
        sub = MIPProblem(
            c=problem.c,
            integer=problem.integer,
            a_ub=problem.a_ub,
            b_ub=problem.b_ub,
            a_eq=problem.a_eq,
            b_eq=problem.b_eq,
            lb=lb,
            ub=ub,
            name=f"{problem.name}-leaf",
        )
        result = solver_factory(sub).solve()
        total_nodes += result.stats.nodes_processed
        if result.status is MIPStatus.OPTIMAL and result.objective > best_obj:
            best_obj = result.objective
            best_x = result.x

    status = MIPStatus.OPTIMAL if best_x is not None else MIPStatus.INFEASIBLE
    out = MIPResult(
        status=status,
        objective=best_obj if best_x is not None else np.nan,
        x=best_x,
        best_bound=best_obj if best_x is not None else -np.inf,
    )
    out.stats.nodes_processed = total_nodes
    return out
