"""Disk persistence for consistent snapshots (UG-style checkpointing).

§2.3: UG "includes implementations of ramp-up, dynamic load balancing,
and check-pointing and restarting mechanisms."  This module serializes a
:class:`repro.mip.snapshot.SearchSnapshot` to a single JSON document —
small (bound boxes + incumbent only), human-inspectable, and restartable
across processes.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import MIPError
from repro.mip.snapshot import SearchSnapshot

FORMAT_VERSION = 1


def _encode_array(arr: np.ndarray) -> list:
    # Infinities must survive JSON: encode as strings.
    return [
        ("inf" if v == np.inf else "-inf" if v == -np.inf else float(v))
        for v in np.asarray(arr, dtype=np.float64)
    ]


def _decode_array(values: list) -> np.ndarray:
    return np.array(
        [np.inf if v == "inf" else -np.inf if v == "-inf" else float(v) for v in values]
    )


def save_snapshot(snapshot: SearchSnapshot, path: str) -> None:
    """Write a snapshot as JSON (atomically via a temp file)."""
    doc = {
        "version": FORMAT_VERSION,
        "incumbent_objective": (
            None
            if snapshot.incumbent_objective == -np.inf
            else float(snapshot.incumbent_objective)
        ),
        "incumbent_x": (
            None
            if snapshot.incumbent_x is None
            else _encode_array(snapshot.incumbent_x)
        ),
        "leaves": [
            {"lb": _encode_array(lb), "ub": _encode_array(ub)}
            for lb, ub in snapshot.leaves
        ],
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle)
    os.replace(tmp, path)


def load_snapshot(path: str) -> SearchSnapshot:
    """Read a snapshot written by :func:`save_snapshot`."""
    with open(path) as handle:
        doc = json.load(handle)
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise MIPError(f"unsupported checkpoint version {version!r}")
    incumbent = doc.get("incumbent_objective")
    incumbent_x = doc.get("incumbent_x")
    return SearchSnapshot(
        leaves=[
            (_decode_array(leaf["lb"]), _decode_array(leaf["ub"]))
            for leaf in doc["leaves"]
        ],
        incumbent_objective=-np.inf if incumbent is None else float(incumbent),
        incumbent_x=None if incumbent_x is None else _decode_array(incumbent_x),
    )
