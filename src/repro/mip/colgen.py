"""Column generation for cutting stock (Gilmore–Gomory).

Paper §3.3 lists column generation among the "advanced heuristics" the
hybrid strategy's CPU side implements while GPUs do the heavy LP solves.
This module implements the classic setting:

*Cutting stock*: cut stock rolls of width ``W`` into item widths ``w_i``
with demands ``d_i``, minimizing rolls used.  The restricted master LP
holds one column per cutting *pattern*; the pricing subproblem — find a
pattern with reduced cost < 0 — is an integer knapsack, solved exactly
by dynamic programming.  Iterate master ↔ pricing until no improving
pattern exists, then recover an integer solution by branch-and-bound on
the generated columns.

On the platform of the paper, every master re-solve is a §5.1-style
warm re-solve on a device-resident matrix whose column set grows — the
same "incremental updates and reuse of matrices" the paper says vendor
libraries must support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ProblemFormatError, SolverError
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions


@dataclass
class CuttingStockInstance:
    """Stock width, item widths, and integer demands."""

    stock_width: float
    widths: np.ndarray
    demands: np.ndarray

    def __post_init__(self):
        self.widths = np.asarray(self.widths, dtype=np.float64)
        self.demands = np.asarray(self.demands, dtype=np.float64)
        if self.widths.shape != self.demands.shape:
            raise ProblemFormatError("widths/demands length mismatch")
        if np.any(self.widths <= 0) or np.any(self.widths > self.stock_width):
            raise ProblemFormatError("item widths must lie in (0, stock width]")
        if np.any(self.demands < 0):
            raise ProblemFormatError("demands must be non-negative")

    @property
    def num_items(self) -> int:
        """Distinct item widths."""
        return self.widths.shape[0]


@dataclass
class ColumnGenerationResult:
    """Outcome of the column-generation solve."""

    #: Minimum rolls in the final integer solution.
    rolls: float
    #: LP bound of the full master at termination.
    lp_bound: float
    #: Patterns generated (columns of the final master), items × patterns.
    patterns: np.ndarray
    #: Integer usage count per pattern.
    usage: np.ndarray
    #: Master LP re-solves performed.
    master_solves: int
    #: Pricing subproblems solved.
    pricing_rounds: int


def _integer_knapsack_best_pattern(
    widths: np.ndarray, values: np.ndarray, capacity: float
) -> Optional[np.ndarray]:
    """Max-value integer knapsack by DP over a discretized capacity.

    Returns the best pattern (counts per item) or None when no positive-
    value pattern exists.  Widths are scaled to integers exactly (they
    are generated as integers in tests/benchmarks).
    """
    w_int = np.round(widths).astype(np.int64)
    cap = int(np.floor(capacity + 1e-9))
    n = widths.shape[0]
    best = np.zeros(cap + 1)
    take = np.full(cap + 1, -1, dtype=np.int64)  # -1: waste one unit
    for c in range(1, cap + 1):
        best[c] = best[c - 1]
        for i in range(n):
            if w_int[i] <= c and values[i] > 0:
                candidate = best[c - w_int[i]] + values[i]
                if candidate > best[c] + 1e-12:
                    best[c] = candidate
                    take[c] = i
    if best[cap] <= 1e-9:
        return None
    pattern = np.zeros(n)
    c = cap
    while c > 0:
        i = int(take[c])
        if i < 0:
            c -= 1
        else:
            pattern[i] += 1
            c -= int(w_int[i])
    return pattern


def solve_cutting_stock(
    instance: CuttingStockInstance,
    max_rounds: int = 200,
) -> ColumnGenerationResult:
    """Gilmore–Gomory column generation, then integer recovery.

    Raises :class:`SolverError` if the master LP ever fails (it cannot,
    structurally: the initial single-item patterns keep it feasible).
    """
    n = instance.num_items
    w = instance.widths
    d = instance.demands
    cap = instance.stock_width

    # Initial columns: one pattern per item, as many as fit on a roll.
    patterns: List[np.ndarray] = []
    for i in range(n):
        pattern = np.zeros(n)
        pattern[i] = np.floor(cap / w[i])
        patterns.append(pattern)

    master_solves = 0
    pricing_rounds = 0
    duals = np.zeros(n)

    for _ in range(max_rounds):
        a = np.column_stack(patterns)  # items × patterns
        # Master: minimize pattern usage s.t. coverage >= demand.
        master = LinearProgram(
            c=-np.ones(a.shape[1]),          # maximize -(rolls)
            a_ub=-a,                          # -A x <= -d  ==  A x >= d
            b_ub=-d,
            ub=np.full(a.shape[1], float(d.sum())),
        )
        res = solve_lp(master)
        master_solves += 1
        if res.status is not LPStatus.OPTIMAL:
            raise SolverError(f"master LP failed with status {res.status}")
        # Duals of the coverage rows (the first n standard-form rows).
        # For max cᵀx s.t. Gx ≤ h these are the usual nonnegative row
        # prices, which equal the covering duals π directly.
        duals = res.duals[:n]

        pricing_rounds += 1
        pattern = _integer_knapsack_best_pattern(w, duals, cap)
        # Reduced cost of a pattern p: 1 - duals·p; improving iff > 1.
        if pattern is None or float(duals @ pattern) <= 1.0 + 1e-7:
            break
        patterns.append(pattern)
    else:
        raise SolverError("column generation did not converge")

    a = np.column_stack(patterns)
    lp_bound = -res.objective  # rolls lower bound (fractional)

    # Integer recovery: branch-and-bound over the generated columns.
    mip = MIPProblem(
        c=-np.ones(a.shape[1]),
        integer=np.ones(a.shape[1], dtype=bool),
        a_ub=-a,
        b_ub=-d,
        lb=np.zeros(a.shape[1]),
        ub=np.full(a.shape[1], float(d.sum())),
        name="cutting-stock-master",
    )
    int_res = BranchAndBoundSolver(mip, SolverOptions()).solve()
    if int_res.status is not MIPStatus.OPTIMAL:
        raise SolverError(f"integer master failed: {int_res.status}")

    return ColumnGenerationResult(
        rolls=-int_res.objective,
        lp_bound=lp_bound,
        patterns=a,
        usage=int_res.x,
        master_solves=master_solves,
        pricing_rounds=pricing_rounds,
    )
