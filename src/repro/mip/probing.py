"""Probing: tentative fixing of binary variables to tighten the root.

One of the "advanced heuristics such as probing" that strategy 3's
CPU side hosts (paper §3.3).  For each binary variable, both tentative
fixings are propagated through the constraint rows; outcomes:

- both fixings infeasible → the problem is infeasible;
- one fixing infeasible  → the variable is permanently fixed the other
  way (a bound tightening valid for the whole tree);
- implications recorded (x_i = v forces x_j = w) for future use.

Propagation is simple activity-based bound tightening over the ≤-rows —
cheap, sound, and exactly what production solvers run at the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mip.problem import MIPProblem


@dataclass
class ProbingResult:
    """Outcome of a probing pass."""

    #: False when probing proved the problem infeasible.
    feasible: bool
    #: Variables fixed (index -> value).
    fixed: Dict[int, float] = field(default_factory=dict)
    #: Implications (i, v_i) -> list of (j, v_j) forced assignments.
    implications: Dict[Tuple[int, int], List[Tuple[int, int]]] = field(
        default_factory=dict
    )
    #: Tightened bound arrays (valid for the whole tree).
    lb: Optional[np.ndarray] = None
    ub: Optional[np.ndarray] = None

    @property
    def num_fixed(self) -> int:
        """Variables permanently fixed by probing."""
        return len(self.fixed)


def _propagate(
    a: np.ndarray, b: np.ndarray, lb: np.ndarray, ub: np.ndarray, rounds: int = 3
) -> bool:
    """Activity-based bound tightening on A x ≤ b; False if infeasible.

    Mutates ``lb``/``ub`` in place.
    """
    m, n = a.shape
    for _ in range(rounds):
        changed = False
        pos = np.where(a > 0, a, 0.0)
        neg = np.where(a < 0, a, 0.0)
        min_activity = pos @ lb + neg @ ub
        if np.any(min_activity > b + 1e-7):
            return False
        for i in range(m):
            row = a[i]
            support = np.nonzero(np.abs(row) > 1e-12)[0]
            for j in support:
                coeff = row[j]
                # Remaining minimum activity without variable j.
                rest = min_activity[i] - (
                    coeff * (lb[j] if coeff > 0 else ub[j])
                )
                slack = b[i] - rest
                if coeff > 0:
                    new_ub = slack / coeff
                    if new_ub < ub[j] - 1e-9:
                        ub[j] = new_ub
                        changed = True
                else:
                    new_lb = slack / coeff
                    if new_lb > lb[j] + 1e-9:
                        lb[j] = new_lb
                        changed = True
                if lb[j] > ub[j] + 1e-7:
                    return False
        if changed:
            # Integer variables round inward.
            pass
        else:
            break
    return True


def probe(problem: MIPProblem, max_variables: int = 64) -> ProbingResult:
    """Probe the binary variables of ``problem``.

    Returns tightened global bounds, permanent fixings, and the
    implication table.  Only ≤-rows participate (equality rows are left
    to the LP); at most ``max_variables`` binaries are probed, most
    constrained first.
    """
    lb = problem.lb.copy()
    ub = problem.ub.copy()
    if problem.a_ub is None:
        return ProbingResult(feasible=True, lb=lb, ub=ub)
    a, b = problem.a_ub, problem.b_ub

    binary = problem.integer & (lb >= -1e-9) & (ub <= 1.0 + 1e-9)
    candidates = np.nonzero(binary & (ub - lb > 0.5))[0]
    # Most-constrained first: by number of row appearances.
    appearances = (np.abs(a) > 1e-12).sum(axis=0)
    candidates = candidates[np.argsort(-appearances[candidates])][:max_variables]

    result = ProbingResult(feasible=True)
    for var in candidates:
        outcomes = {}
        for value in (0.0, 1.0):
            trial_lb, trial_ub = lb.copy(), ub.copy()
            trial_lb[var] = trial_ub[var] = value
            ok = _propagate(a, b, trial_lb, trial_ub)
            outcomes[value] = (ok, trial_lb, trial_ub)
        ok0, lb0, ub0 = outcomes[0.0]
        ok1, lb1, ub1 = outcomes[1.0]
        if not ok0 and not ok1:
            result.feasible = False
            result.lb, result.ub = lb, ub
            return result
        if not ok0:
            lb[var] = ub[var] = 1.0
            result.fixed[int(var)] = 1.0
            lb, ub = lb1, ub1
        elif not ok1:
            lb[var] = ub[var] = 0.0
            result.fixed[int(var)] = 0.0
            lb, ub = lb0, ub0
        else:
            # Record binary implications: x_var = v forces x_j.
            for value, (_ok, t_lb, t_ub) in outcomes.items():
                forced = []
                for j in np.nonzero(binary)[0]:
                    if j == var:
                        continue
                    if t_lb[j] > 0.5 and lb[j] <= 0.5:
                        forced.append((int(j), 1))
                    elif t_ub[j] < 0.5 and ub[j] >= 0.5:
                        forced.append((int(j), 0))
                if forced:
                    result.implications[(int(var), int(value))] = forced

    # Final inward rounding for integer variables.
    idx = problem.integer
    lb[idx] = np.ceil(lb[idx] - 1e-9)
    ub[idx] = np.floor(ub[idx] + 1e-9)
    if np.any(lb > ub + 1e-9):
        result.feasible = False
    result.lb, result.ub = lb, ub
    return result


def apply_probing(problem: MIPProblem, result: ProbingResult) -> MIPProblem:
    """New problem with probing's tightened bounds folded in."""
    if not result.feasible:
        raise ValueError("cannot apply an infeasible probing result")
    return MIPProblem(
        c=problem.c,
        integer=problem.integer,
        a_ub=problem.a_ub,
        b_ub=problem.b_ub,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lb=result.lb,
        ub=result.ub,
        name=f"{problem.name}+probed",
    )
