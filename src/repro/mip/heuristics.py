"""Deprecated serial primal heuristics — use :mod:`repro.mip.portfolio`.

These three functions were the repo's original CPU-side heuristics
(paper §3's "advanced heuristics" assigned to the host).  The batched,
seeded portfolio (:func:`repro.mip.portfolio.run_portfolio`) subsumes
all of them; what remains here are thin compatibility wrappers that
emit :class:`DeprecationWarning` and delegate:

- :func:`rounding_heuristic` → :func:`repro.mip.portfolio.round_to_feasible`
- :func:`diving_heuristic` → :func:`repro.mip.portfolio.dive_fix`
- :func:`feasibility_pump` → a small :func:`repro.mip.portfolio.run_portfolio`
  call (feasibility jump + fix-and-propagate, LNS off)

Each wrapper keeps the historical contract: a feasible point or None,
never a claim of optimality.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

import numpy as np

from repro.lp.problem import LinearProgram
from repro.lp.simplex import solve_lp
from repro.mip.portfolio import (
    PortfolioOptions,
    dive_fix,
    round_to_feasible,
    run_portfolio,
)
from repro.mip.problem import MIPProblem


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.mip.heuristics.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def rounding_heuristic(
    problem: MIPProblem, x: np.ndarray
) -> Optional[np.ndarray]:
    """Deprecated: use :func:`repro.mip.portfolio.round_to_feasible`."""
    _warn("rounding_heuristic", "repro.mip.portfolio.round_to_feasible")
    return round_to_feasible(problem, x)


def feasibility_pump(
    problem: MIPProblem,
    max_iterations: int = 30,
    lp_solver: Callable = solve_lp,
    seed: int = 0,
) -> Optional[np.ndarray]:
    """Deprecated: use :func:`repro.mip.portfolio.run_portfolio`.

    Delegates to a small portfolio run (feasibility jump over a handful
    of seeded restarts plus fix-and-propagate; LNS and certification
    off, matching the old pump's cost profile).  ``lp_solver`` is kept
    for signature compatibility; the portfolio always uses the exact
    simplex path.
    """
    _warn("feasibility_pump", "repro.mip.portfolio.run_portfolio")
    del lp_solver  # legacy parameter; the portfolio pins its LP engine
    result = run_portfolio(
        problem,
        PortfolioOptions(
            seed=seed,
            restarts=8,
            n_jobs=8,
            fj_sweeps=max(1, max_iterations),
            lns=False,
            certify=False,
        ),
    )
    if result.best is None:
        return None
    return result.best.x


def diving_heuristic(
    problem: MIPProblem,
    node_lp: LinearProgram,
    x: np.ndarray,
    max_depth: int = 20,
    lp_solver: Callable = solve_lp,
) -> Optional[np.ndarray]:
    """Deprecated: use :func:`repro.mip.portfolio.dive_fix`."""
    _warn("diving_heuristic", "repro.mip.portfolio.dive_fix")
    return dive_fix(problem, node_lp, x, max_depth=max_depth, lp_solver=lp_solver)
