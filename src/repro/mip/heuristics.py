"""Primal heuristics: cheap searches for incumbent solutions.

Strategy 3 of the paper (§3) highlights "advanced heuristics such as
probing, cut generation, column generation" as the CPU-side work of a
hybrid solver.  Two classics are implemented; both return a feasible
point (or None) and never claim optimality.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.mip.problem import MIPProblem


def rounding_heuristic(
    problem: MIPProblem, x: np.ndarray
) -> Optional[np.ndarray]:
    """Round the LP solution on the integer variables; keep if feasible."""
    candidate = np.asarray(x, dtype=np.float64).copy()
    idx = problem.integer
    candidate[idx] = np.round(candidate[idx])
    candidate[idx] = np.clip(candidate[idx], problem.lb[idx], problem.ub[idx])
    if problem.is_feasible(candidate):
        return candidate
    return None


def feasibility_pump(
    problem: MIPProblem,
    max_iterations: int = 30,
    lp_solver: Callable = solve_lp,
    seed: int = 0,
) -> Optional[np.ndarray]:
    """Feasibility pump (Fischetti–Glover–Lodi, simplified).

    Alternates between an LP-feasible point and its integer rounding,
    each LP minimizing the L1 distance to the previous rounding.  On a
    rounding cycle, a few integer components are randomly flipped (the
    classic perturbation).  Returns a feasible point or None.
    """
    rng = np.random.default_rng(seed)
    relax = problem.relaxation()
    base = lp_solver(relax)
    if base.status is not LPStatus.OPTIMAL:
        return None
    x = base.x
    idx = np.nonzero(problem.integer)[0]
    previous_roundings = set()

    for _ in range(max_iterations):
        x_round = x.copy()
        x_round[idx] = np.clip(
            np.round(x_round[idx]), problem.lb[idx], problem.ub[idx]
        )
        if problem.is_feasible(x_round):
            return x_round
        key = tuple(x_round[idx].astype(np.int64))
        if key in previous_roundings:
            # Cycle: flip a random subset of the most fractional vars.
            flips = rng.choice(idx, size=max(1, idx.size // 4), replace=False)
            for j in flips:
                lo, hi = problem.lb[j], problem.ub[j]
                x_round[j] = float(
                    np.clip(x_round[j] + rng.choice([-1.0, 1.0]), lo, hi)
                )
            key = tuple(x_round[idx].astype(np.int64))
        previous_roundings.add(key)

        # Distance LP: minimize sum |x_j - x_round_j| over integer vars.
        # For bounded binaries/integers: |x - r| is x - r when pushing
        # down is impossible and r - x when pushing up is impossible;
        # generally encode via the objective sign at the rounded point.
        c_dist = np.zeros(problem.n)
        for j in idx:
            lo, hi = problem.lb[j], problem.ub[j]
            if x_round[j] <= lo + 1e-9:
                c_dist[j] = -1.0  # minimize x_j - lo  -> maximize -x_j
            elif x_round[j] >= hi - 1e-9:
                c_dist[j] = 1.0  # minimize hi - x_j -> maximize x_j
            else:
                # Interior rounding: pull toward it from whichever side;
                # approximate with the sign of the current deviation.
                c_dist[j] = 1.0 if x[j] < x_round[j] else -1.0
        dist_lp = LinearProgram(
            c=c_dist,
            a_ub=relax.a_ub,
            b_ub=relax.b_ub,
            a_eq=relax.a_eq,
            b_eq=relax.b_eq,
            lb=relax.lb,
            ub=relax.ub,
        )
        res = lp_solver(dist_lp)
        if res.status is not LPStatus.OPTIMAL:
            return None
        x = res.x
        fractional = problem.fractional_integers(x)
        if fractional.size == 0 and problem.is_feasible(x):
            return x
    return None


def diving_heuristic(
    problem: MIPProblem,
    node_lp: LinearProgram,
    x: np.ndarray,
    max_depth: int = 20,
    lp_solver: Callable = solve_lp,
) -> Optional[np.ndarray]:
    """Fix-and-resolve dive toward an integral point.

    Repeatedly fixes the *least* fractional integer variable to its
    nearest integer and re-solves the LP; stops at integrality (success),
    infeasibility, or the depth limit.  Returns a feasible point or None.
    """
    current_lp = node_lp
    current_x = np.asarray(x, dtype=np.float64)
    for _ in range(max_depth):
        fractional = problem.fractional_integers(current_x)
        if fractional.size == 0:
            if problem.is_feasible(current_x):
                return current_x
            return None
        frac_parts = current_x[fractional] - np.floor(current_x[fractional])
        dist = np.minimum(frac_parts, 1.0 - frac_parts)
        var = int(fractional[np.argmin(dist)])
        value = float(np.round(current_x[var]))
        value = float(np.clip(value, current_lp.lb[var], current_lp.ub[var]))
        current_lp = current_lp.with_bounds(var, lb=value, ub=value)
        res = lp_solver(current_lp)
        if res.status is not LPStatus.OPTIMAL:
            return None
        current_x = res.x
    return None
