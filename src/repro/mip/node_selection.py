"""Node selection (evaluation-order) policies.

Paper §5.3: because host↔device transfers of the (potentially large)
matrix dominate, "a GPU-based parallel MIP solver must strive to reuse
the matrix on the GPU across as many branch-and-cut nodes as possible.
This may warrant the use of a GPU-specific scheduling policy that picks
the next node to evaluate."  The policies below are the E6 sweep:

- ``best_first`` — classic best-bound; minimizes evaluated nodes but
  jumps arbitrarily around the tree (worst matrix locality).
- ``depth_first`` — LIFO plunging; maximal locality, can bloat the tree.
- ``hybrid`` — best-bound with a depth bonus (diving tie-break).
- ``gpu_locality`` — prefer a child of the just-evaluated node (the
  resident matrix needs only a bound-row RHS tweak), then any node whose
  tree distance is within a window, then fall back to best bound.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.errors import MIPError
from repro.mip.tree import BBTree


class NodeSelector:
    """Interface: a pool of open node ids with a policy-defined pop."""

    name = "base"

    def __init__(self, tree: BBTree):
        self._tree = tree

    def push(self, node_id: int, bound: float) -> None:
        """Add an open node with its parent-inherited bound."""
        raise NotImplementedError

    def pop(self) -> int:
        """Select and remove the next node to evaluate."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class BestFirstSelector(NodeSelector):
    """Highest LP bound first (maximization best-bound search)."""

    name = "best_first"

    def __init__(self, tree: BBTree):
        super().__init__(tree)
        self._heap: List[Tuple[float, int, int]] = []
        self._counter = itertools.count()

    def push(self, node_id: int, bound: float) -> None:
        heapq.heappush(self._heap, (-bound, next(self._counter), node_id))

    def pop(self) -> int:
        if not self._heap:
            raise MIPError("pop from empty node pool")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class DepthFirstSelector(NodeSelector):
    """LIFO stack (plunge down the most recent branch)."""

    name = "depth_first"

    def __init__(self, tree: BBTree):
        super().__init__(tree)
        self._stack: List[int] = []

    def push(self, node_id: int, bound: float) -> None:
        self._stack.append(node_id)

    def pop(self) -> int:
        if not self._stack:
            raise MIPError("pop from empty node pool")
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class HybridSelector(NodeSelector):
    """Best bound with a small depth bonus (mild plunging)."""

    name = "hybrid"

    def __init__(self, tree: BBTree, depth_bonus: float = 1e-4):
        super().__init__(tree)
        self._heap: List[Tuple[float, int, int]] = []
        self._counter = itertools.count()
        self._depth_bonus = depth_bonus

    def push(self, node_id: int, bound: float) -> None:
        depth = self._tree.node(node_id).depth
        key = -(bound + self._depth_bonus * depth)
        heapq.heappush(self._heap, (key, next(self._counter), node_id))

    def pop(self) -> int:
        if not self._heap:
            raise MIPError("pop from empty node pool")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class GpuLocalitySelector(NodeSelector):
    """Matrix-reuse-aware ordering (§5.3).

    Children of the last evaluated node are preferred outright; failing
    that, the open node nearest (in tree distance) to the last node is
    chosen if within ``locality_window``; otherwise best bound.
    """

    name = "gpu_locality"

    def __init__(self, tree: BBTree, locality_window: int = 3):
        super().__init__(tree)
        self._open: List[Tuple[float, int]] = []  # (bound, node_id)
        self._last: Optional[int] = None
        self._window = locality_window

    def push(self, node_id: int, bound: float) -> None:
        self._open.append((bound, node_id))

    def pop(self) -> int:
        if not self._open:
            raise MIPError("pop from empty node pool")
        pick = None
        if self._last is not None:
            # 1. A child of the last node, if open.
            last_children = set(self._tree.node(self._last).children)
            for i, (_, nid) in enumerate(self._open):
                if nid in last_children:
                    pick = i
                    break
            # 2. Nearest open node within the locality window.
            if pick is None:
                best_dist = self._window + 1
                for i, (_, nid) in enumerate(self._open):
                    dist = self._tree.tree_distance(self._last, nid)
                    if dist < best_dist:
                        best_dist, pick = dist, i
        if pick is None:
            # 3. Fall back to best bound.
            pick = max(range(len(self._open)), key=lambda i: self._open[i][0])
        _, node_id = self._open.pop(pick)
        self._last = node_id
        return node_id

    def __len__(self) -> int:
        return len(self._open)


def make_selector(name: str, tree: BBTree, **kwargs) -> NodeSelector:
    """Factory for node selectors by name."""
    rules = {
        "best_first": BestFirstSelector,
        "depth_first": DepthFirstSelector,
        "hybrid": HybridSelector,
        "gpu_locality": GpuLocalitySelector,
    }
    try:
        return rules[name](tree, **kwargs)
    except KeyError:
        raise ValueError(
            f"unknown node selector {name!r}; choose from {sorted(rules)}"
        ) from None
