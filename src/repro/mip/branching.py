"""Branching-variable selection rules.

The paper (§5.3) notes that a GPU-based solver "would entail choosing a
branching scheme … qualitatively different from a traditional CPU-based
solver's".  Three classic rules are provided so the ablation benches can
measure the trade-off between per-node cost and tree size:

- ``most_fractional`` — pick the integer variable whose value is nearest
  0.5 away from integrality; free, but weak.
- ``pseudocost`` — learned average objective degradation per unit of
  fractionality in each direction; near-free once warmed up.
- ``strong`` — tentatively solve both child LPs for the top candidates;
  expensive per node, smallest trees (and on a GPU the two child LPs are
  an obvious batched pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import MIPError

#: Tentative child-LP solver used by strong branching:
#: (var, new_lb, new_ub) -> optimal objective or -inf when infeasible.
ChildProbe = Callable[[int, Optional[float], Optional[float]], float]


class BranchingRule:
    """Interface: choose the branching variable from the fractional set."""

    name = "base"

    def select(
        self,
        fractional: np.ndarray,
        x: np.ndarray,
        bound: float,
        probe: Optional[ChildProbe] = None,
    ) -> int:
        """Return the chosen variable index (a member of ``fractional``)."""
        raise NotImplementedError

    def record(
        self, var: int, direction: str, fractionality: float, degradation: float
    ) -> None:
        """Feed back the observed bound degradation of a branch child."""


class MostFractionalBranching(BranchingRule):
    """Variable with fractional part closest to 0.5."""

    name = "most_fractional"

    def select(self, fractional, x, bound, probe=None) -> int:
        if fractional.size == 0:
            raise MIPError("no fractional variable to branch on")
        frac = x[fractional] - np.floor(x[fractional])
        return int(fractional[np.argmin(np.abs(frac - 0.5))])


@dataclass
class _PseudocostEntry:
    up_sum: float = 0.0
    up_count: int = 0
    down_sum: float = 0.0
    down_count: int = 0

    def estimate(self, direction: str, default: float) -> float:
        if direction == "up":
            return self.up_sum / self.up_count if self.up_count else default
        return self.down_sum / self.down_count if self.down_count else default


class PseudocostBranching(BranchingRule):
    """Product of learned up/down degradations (SCIP-style score)."""

    name = "pseudocost"

    def __init__(self):
        self._entries: Dict[int, _PseudocostEntry] = {}
        self._global_sum = 1.0
        self._global_count = 1

    def _default(self) -> float:
        return self._global_sum / self._global_count

    def select(self, fractional, x, bound, probe=None) -> int:
        if fractional.size == 0:
            raise MIPError("no fractional variable to branch on")
        eps = 1e-6
        best_var, best_score = int(fractional[0]), -np.inf
        default = self._default()
        for var in fractional:
            value = x[var]
            f = value - np.floor(value)
            entry = self._entries.get(int(var), _PseudocostEntry())
            up = entry.estimate("up", default) * (1.0 - f)
            down = entry.estimate("down", default) * f
            score = max(up, eps) * max(down, eps)
            if score > best_score:
                best_var, best_score = int(var), score
        return best_var

    def record(self, var, direction, fractionality, degradation) -> None:
        if fractionality <= 1e-9:
            return
        per_unit = max(0.0, degradation) / fractionality
        entry = self._entries.setdefault(int(var), _PseudocostEntry())
        if direction == "up":
            entry.up_sum += per_unit
            entry.up_count += 1
        elif direction == "down":
            entry.down_sum += per_unit
            entry.down_count += 1
        else:
            raise MIPError(f"unknown branch direction {direction!r}")
        self._global_sum += per_unit
        self._global_count += 1


class StrongBranching(BranchingRule):
    """Probe both children of the top-k fractional candidates.

    Scores a candidate by the product of its children's bound
    degradations (the classic reliability measure); requires the solver
    to supply a ``probe`` callback.
    """

    name = "strong"

    def __init__(self, max_candidates: int = 4):
        self.max_candidates = max_candidates

    def select(self, fractional, x, bound, probe=None) -> int:
        if fractional.size == 0:
            raise MIPError("no fractional variable to branch on")
        if probe is None:
            # Degrade gracefully to most-fractional when no probe exists.
            return MostFractionalBranching().select(fractional, x, bound)
        frac = x[fractional] - np.floor(x[fractional])
        order = np.argsort(-np.abs(np.abs(frac - 0.5) - 0.5))  # most fractional first
        candidates = fractional[order][: self.max_candidates]
        eps = 1e-6
        best_var, best_score = int(candidates[0]), -np.inf
        for var in candidates:
            value = x[var]
            down_obj = probe(int(var), None, float(np.floor(value)))
            up_obj = probe(int(var), float(np.ceil(value)), None)
            down_deg = bound - down_obj
            up_deg = bound - up_obj
            score = max(down_deg, eps) * max(up_deg, eps)
            if score > best_score:
                best_var, best_score = int(var), score
        return best_var


class ReliabilityBranching(BranchingRule):
    """Strong branching until pseudocosts become reliable (SCIP default).

    A variable's pseudocost estimate is *reliable* once it has been
    observed ``reliability`` times in each direction; unreliable
    candidates are strong-branched (initializing their pseudocosts),
    reliable ones are scored from history — the standard way to get
    strong branching's small trees at near-pseudocost cost.
    """

    name = "reliability"

    def __init__(self, reliability: int = 2, max_strong: int = 4):
        self.reliability = reliability
        self.max_strong = max_strong
        self._pseudo = PseudocostBranching()

    def select(self, fractional, x, bound, probe=None) -> int:
        if fractional.size == 0:
            raise MIPError("no fractional variable to branch on")
        entries = self._pseudo._entries
        unreliable = [
            int(v)
            for v in fractional
            if entries.get(int(v), _PseudocostEntry()).up_count < self.reliability
            or entries.get(int(v), _PseudocostEntry()).down_count < self.reliability
        ]
        if probe is not None and unreliable:
            frac = x[unreliable] - np.floor(x[unreliable])
            order = np.argsort(np.abs(frac - 0.5))
            for v in np.asarray(unreliable)[order][: self.max_strong]:
                value = x[int(v)]
                f = value - np.floor(value)
                down_obj = probe(int(v), None, float(np.floor(value)))
                up_obj = probe(int(v), float(np.ceil(value)), None)
                if np.isfinite(down_obj):
                    self._pseudo.record(int(v), "down", f, bound - down_obj)
                if np.isfinite(up_obj):
                    self._pseudo.record(int(v), "up", 1.0 - f, bound - up_obj)
        return self._pseudo.select(fractional, x, bound)

    def record(self, var, direction, fractionality, degradation) -> None:
        self._pseudo.record(var, direction, fractionality, degradation)


def make_branching(name: str, **kwargs) -> BranchingRule:
    """Factory for branching rules by name."""
    rules = {
        "most_fractional": MostFractionalBranching,
        "pseudocost": PseudocostBranching,
        "strong": StrongBranching,
        "reliability": ReliabilityBranching,
    }
    try:
        return rules[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown branching rule {name!r}; choose from {sorted(rules)}"
        ) from None
