"""MIP solver result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.mip.tree import BBTree


class MIPStatus(enum.Enum):
    """Terminal status of a branch-and-bound search."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    NODE_LIMIT = "node_limit"
    UNBOUNDED = "unbounded"
    #: Cooperative deadline budget (:mod:`repro.guard`) expired: the
    #: result is *anytime* — best incumbent + certified dual bound + gap.
    TIME_LIMIT = "time_limit"
    #: LP iteration budgets exhausted even after escalation; the search
    #: stopped early with an anytime incumbent/bound instead of raising.
    ITERATION_LIMIT = "iteration_limit"

    @property
    def ok(self) -> bool:
        """True when optimality was proven."""
        return self is MIPStatus.OPTIMAL

    @property
    def anytime(self) -> bool:
        """True for budget-exhausted statuses carrying a partial answer."""
        return self in (
            MIPStatus.NODE_LIMIT,
            MIPStatus.TIME_LIMIT,
            MIPStatus.ITERATION_LIMIT,
        )


@dataclass
class MIPStats:
    """Search statistics for reports and benchmarks."""

    nodes_processed: int = 0
    lp_iterations: int = 0
    cuts_added: int = 0
    cut_rounds: int = 0
    warm_starts: int = 0
    cold_starts: int = 0
    heuristic_solutions: int = 0
    #: (nodes_processed, incumbent) history for gap plots.
    incumbent_history: List[Tuple[int, float]] = field(default_factory=list)
    #: Matrix "switches": evaluated node not a child of the previous one.
    matrix_switches: int = 0
    #: Total tree distance travelled between consecutive nodes (§5.3).
    reuse_distance: int = 0
    #: Guard escalation-ladder climbs triggered by unusable node LPs.
    escalations: int = 0
    #: LP pivots spent inside warm-started node re-solves.
    warm_pivots: int = 0
    #: LP pivots spent inside cold node solves.
    cold_pivots: int = 0
    #: Warm solves that pivoted on the parent's resident factorization.
    warm_factor_reuses: int = 0
    #: Warm answers discarded by the from-scratch KKT audit (cold re-run).
    warm_audit_failures: int = 0
    #: Feasibility-jump restarts launched by the portfolio phase.
    portfolio_restarts: int = 0
    #: Masked lockstep sweeps executed by the portfolio phase.
    portfolio_sweeps: int = 0
    #: Certified incumbents the portfolio phase produced.
    portfolio_incumbents: int = 0
    #: Simulated device seconds the portfolio phase charged.
    portfolio_seconds: float = 0.0
    #: Nodes processed when the first incumbent landed (-1 = never).
    first_incumbent_nodes: int = -1
    #: Engine-simulated seconds at the first incumbent (NaN = never).
    first_incumbent_seconds: float = float("nan")


@dataclass
class MIPResult:
    """Outcome of a branch-and-bound search."""

    status: MIPStatus
    objective: float = np.nan
    x: Optional[np.ndarray] = None
    #: Best proven upper bound (== objective when optimal).
    best_bound: float = np.inf
    stats: MIPStats = field(default_factory=MIPStats)
    #: The search tree (retained when options.keep_tree).
    tree: Optional[BBTree] = None
    #: Best distinct feasible solutions found, ``(objective, x)`` sorted
    #: best-first; length capped by ``SolverOptions.solution_pool_size``.
    solution_pool: List[Tuple[float, np.ndarray]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when optimality was proven."""
        return self.status.ok

    @property
    def gap(self) -> float:
        """Relative gap between incumbent and best bound."""
        if not np.isfinite(self.objective) or not np.isfinite(self.best_bound):
            return np.inf
        denom = max(1e-10, abs(self.objective))
        return abs(self.best_bound - self.objective) / denom
