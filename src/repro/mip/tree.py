"""The branch-and-bound tree with Figure 1's node tags.

Nodes carry *bound deltas* rather than whole problems: a node's LP is
the root problem plus the chain of variable-bound tightenings along its
ancestor path — exactly the "minor updates such as new bounds added for
a subset of variables" reuse the paper's §5.3 describes.

Tags follow Figure 1: every node is ``ACTIVE`` while awaiting (or under)
evaluation; evaluation converts it to ``FEASIBLE`` (integral solution),
``INFEASIBLE``, ``PRUNED`` (bound dominated by the incumbent) or
``BRANCHED`` (interior node with children).  At completion of the search
no node may remain ``ACTIVE`` — asserted by
:func:`repro.mip.snapshot.assert_search_complete`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import MIPError
from repro.lp.problem import LinearProgram


class NodeTag(enum.Enum):
    """Life-cycle tag of a branch-and-bound node (paper Figure 1)."""

    ACTIVE = "active"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    PRUNED = "pruned"
    BRANCHED = "branched"

    @property
    def is_leaf_terminal(self) -> bool:
        """True for tags that close a leaf."""
        return self in (NodeTag.FEASIBLE, NodeTag.INFEASIBLE, NodeTag.PRUNED)


@dataclass
class BoundChange:
    """One branching decision: a variable bound tightening."""

    var: int
    #: "lb" or "ub".
    kind: str
    value: float
    #: The variable's (fractional) LP value at the parent, for pseudocosts.
    parent_value: float = 0.0


@dataclass
class BBNode:
    """One node of the tree."""

    node_id: int
    parent_id: Optional[int]
    depth: int
    #: The bound change that created this node (None for the root).
    change: Optional[BoundChange]
    tag: NodeTag = NodeTag.ACTIVE
    #: LP relaxation bound once evaluated (maximization upper bound).
    lp_bound: float = np.inf
    #: Variable branched on at this node (set when BRANCHED).
    branch_var: Optional[int] = None
    children: List[int] = field(default_factory=list)
    #: Optimal basis of this node's (pre-cut) LP, for child warm starts.
    warm_basis: Optional[np.ndarray] = None
    #: Parent's LP bound, inherited at creation (pre-evaluation prune key).
    inherited_bound: float = np.inf


class BBTree:
    """Container and bookkeeping for the branch-and-bound tree."""

    def __init__(self, root_problem: LinearProgram):
        self._root_problem = root_problem
        self._nodes: Dict[int, BBNode] = {}
        self._next_id = 0
        root = BBNode(node_id=self._alloc_id(), parent_id=None, depth=0, change=None)
        self._nodes[root.node_id] = root

    def _alloc_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    @property
    def root(self) -> BBNode:
        """The root node."""
        return self._nodes[0]

    @property
    def size(self) -> int:
        """Total nodes ever created."""
        return len(self._nodes)

    def node(self, node_id: int) -> BBNode:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MIPError(f"unknown node id {node_id}") from None

    def nodes(self) -> Iterator[BBNode]:
        """All nodes in creation order."""
        return iter(self._nodes.values())

    def add_child(self, parent_id: int, change: BoundChange) -> BBNode:
        """Create an ACTIVE child under ``parent_id``."""
        parent = self.node(parent_id)
        child = BBNode(
            node_id=self._alloc_id(),
            parent_id=parent_id,
            depth=parent.depth + 1,
            change=change,
        )
        self._nodes[child.node_id] = child
        parent.children.append(child.node_id)
        return child

    def path_changes(self, node_id: int) -> List[BoundChange]:
        """Bound changes along the root→node path (root first)."""
        changes: List[BoundChange] = []
        node = self.node(node_id)
        while node.change is not None:
            changes.append(node.change)
            node = self.node(node.parent_id)
        changes.reverse()
        return changes

    def node_bounds(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Effective (lb, ub) at a node, folding the path's tightenings."""
        lb = self._root_problem.lb.copy()
        ub = self._root_problem.ub.copy()
        for change in self.path_changes(node_id):
            if change.kind == "lb":
                lb[change.var] = max(lb[change.var], change.value)
            elif change.kind == "ub":
                ub[change.var] = min(ub[change.var], change.value)
            else:
                raise MIPError(f"unknown bound kind {change.kind!r}")
        return lb, ub

    def node_problem(self, node_id: int) -> LinearProgram:
        """The node's LP relaxation (root problem + path bounds)."""
        lb, ub = self.node_bounds(node_id)
        base = self._root_problem
        return LinearProgram(
            c=base.c,
            a_ub=base.a_ub,
            b_ub=base.b_ub,
            a_eq=base.a_eq,
            b_eq=base.b_eq,
            lb=lb,
            ub=ub,
        )

    def tree_distance(self, a: int, b: int) -> int:
        """Edges between two nodes (matrix-reuse locality metric, §5.3)."""
        ancestors_a = {}
        node, dist = self.node(a), 0
        while True:
            ancestors_a[node.node_id] = dist
            if node.parent_id is None:
                break
            node, dist = self.node(node.parent_id), dist + 1
        node, dist = self.node(b), 0
        while node.node_id not in ancestors_a:
            node, dist = self.node(node.parent_id), dist + 1
        return dist + ancestors_a[node.node_id]

    def active_leaves(self) -> List[BBNode]:
        """All nodes still tagged ACTIVE."""
        return [n for n in self._nodes.values() if n.tag is NodeTag.ACTIVE]

    def tag_counts(self) -> Dict[NodeTag, int]:
        """Histogram of node tags."""
        counts = {tag: 0 for tag in NodeTag}
        for node in self._nodes.values():
            counts[node.tag] += 1
        return counts

    def render(self, max_depth: int = 6) -> str:
        """ASCII rendering of the tree (Figure 1 regeneration)."""
        lines: List[str] = []

        def visit(node_id: int, prefix: str, is_last: bool) -> None:
            node = self.node(node_id)
            if node.depth > max_depth:
                return
            connector = "" if node.parent_id is None else ("└─ " if is_last else "├─ ")
            desc = node.tag.value
            if node.tag is NodeTag.BRANCHED and node.branch_var is not None:
                desc += f" on x{node.branch_var}"
            bound = "" if not np.isfinite(node.lp_bound) else f" bound={node.lp_bound:.4g}"
            change = ""
            if node.change is not None:
                op = "≥" if node.change.kind == "lb" else "≤"
                change = f" [x{node.change.var} {op} {node.change.value:g}]"
            lines.append(f"{prefix}{connector}n{node.node_id}{change}: {desc}{bound}")
            child_prefix = prefix + ("" if node.parent_id is None else ("   " if is_last else "│  "))
            for i, child in enumerate(node.children):
                visit(child, child_prefix, i == len(node.children) - 1)

        visit(0, "", True)
        return "\n".join(lines)
