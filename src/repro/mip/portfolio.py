"""repro.mip.portfolio — batched, seeded primal-heuristic portfolio.

The paper's hybrid strategy (§3) leaves heuristics on the CPU side, but
feasibility-jump / fix-and-propagate searches are wide, lockstep,
data-parallel workloads — exactly what the simulated device model was
built to price.  This module runs three complementary primal heuristics
under one roof and one seed:

- **feasibility jump** — many independent restarts advanced in masked
  lockstep sweeps, one ``(k, n_int)`` state block per chunk.  Each sweep
  scores every ±1 move of every integer variable for every member in two
  fused GEMM-shaped passes (charged as :func:`repro.device.kernels.gemm_kernel`
  like :mod:`repro.lp.pdhg_batch` charges its batched matvecs), applies
  the best strictly-improving move per member with one masked AXPY, and
  bumps each stuck member's *own* violated-row weights (per-member weight
  vectors — the classic feasibility-jump restart rule);
- **fix-and-propagate** — rounds the root-LP point at a *batch* of
  fixing thresholds, propagates variable bounds through the rows after
  each fixing, re-solves the residual LP, and dives the leftovers;
- **LNS** — re-solves small sub-MIPs around the incumbent with most
  integers pinned, through the ordinary branch-and-bound driver so the
  existing warm-start machinery (:mod:`repro.lp.warm`) carries bases
  between the sub-tree's nodes.

Every incumbent is audited by the exact-rational certificate
(:func:`repro.check.certify_mip_solution`) before it is trusted; the
root relaxation's objective is kept as the dual bound so callers can
report a *certified* gap for heuristic-only answers.

Determinism: member ``r``'s trajectory depends only on ``(seed, r)`` —
per-member RNG streams, per-row lockstep math — so the same seed yields
the same incumbent for any ``n_jobs`` chunk width, and ties between
equal-objective incumbents break on (phase, member) order, not on
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.device import kernels as K
from repro.device.gpu import Device
from repro.errors import ReproError
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.guard import budget as guard_budget
from repro.mip.problem import MIPProblem

#: Tie-break order between equal-objective incumbents (earlier wins).
_PHASE_RANK = {"rounding": 0, "feasibility_jump": 1, "fix_propagate": 2, "lns": 3}


@dataclass
class PortfolioOptions:
    """Configuration for one :func:`run_portfolio` call."""

    #: Master seed; member ``r`` draws from ``default_rng((seed, r))``.
    seed: int = 0
    #: Total feasibility-jump restarts (fixed — independent of n_jobs).
    restarts: int = 32
    #: Lockstep chunk width: how many restarts advance per device sweep.
    n_jobs: int = 16
    #: Masked lockstep sweeps per feasibility-jump chunk.
    fj_sweeps: int = 120
    #: Run the feasibility-jump phase.
    feasibility_jump: bool = True
    #: Run the fix-and-propagate phase.
    fix_propagate: bool = True
    #: Rounding thresholds the fix-and-propagate phase batches over.
    thresholds: Tuple[float, ...] = (0.05, 0.2, 0.35, 0.5)
    #: Run the large-neighborhood-search phase.
    lns: bool = True
    lns_rounds: int = 2
    #: Fraction of the integer variables left free per LNS sub-MIP.
    lns_neighborhood: float = 0.3
    #: Node budget per LNS sub-MIP re-solve.
    lns_node_limit: int = 200
    #: Audit every incumbent with the exact-rational certificate before
    #: trusting it (rejected candidates are counted, never returned).
    certify: bool = True

    def __post_init__(self):
        if self.restarts < 1:
            raise ReproError(f"restarts must be at least 1, got {self.restarts!r}")
        if self.n_jobs < 1:
            raise ReproError(f"n_jobs must be at least 1, got {self.n_jobs!r}")
        if self.fj_sweeps < 1:
            raise ReproError(f"fj_sweeps must be at least 1, got {self.fj_sweeps!r}")
        if self.lns_rounds < 0:
            raise ReproError(
                f"lns_rounds must be non-negative, got {self.lns_rounds!r}"
            )
        if not 0.0 < self.lns_neighborhood <= 1.0:
            raise ReproError(
                "lns_neighborhood must be in (0, 1], "
                f"got {self.lns_neighborhood!r}"
            )
        if self.lns_node_limit < 1:
            raise ReproError(
                f"lns_node_limit must be positive, got {self.lns_node_limit!r}"
            )
        for t in self.thresholds:
            if not 0.0 <= t <= 0.5:
                raise ReproError(
                    f"thresholds must lie in [0, 0.5], got {t!r}"
                )


@dataclass
class PortfolioIncumbent:
    """One certified feasible point found by the portfolio."""

    x: np.ndarray
    objective: float
    #: Which phase produced it: "feasibility_jump", "fix_propagate", "lns".
    heuristic: str
    #: Restart index / threshold index / LNS round — phase-local id.
    member: int
    #: True when the exact-rational certificate audited this point.
    certified: bool = False


@dataclass
class PortfolioResult:
    """Outcome of one :func:`run_portfolio` call."""

    #: Every accepted incumbent, in discovery order.
    incumbents: List[PortfolioIncumbent] = field(default_factory=list)
    #: Best incumbent (deterministic tie-break), None when none found.
    best: Optional[PortfolioIncumbent] = None
    #: Root-relaxation objective — the dual bound a heuristic answer's
    #: certified gap is measured against (+inf when the LP was unusable,
    #: -inf when the relaxation itself is infeasible).
    dual_bound: float = float("inf")
    #: Root relaxation status value ("optimal", "infeasible", ...).
    relaxation_status: str = ""
    #: Phase counters for ``MIPStats`` / report metrics.
    stats: Dict[str, int] = field(default_factory=dict)
    #: LP pivots spent across root/polish/dive/LNS solves.
    lp_iterations: int = 0
    #: Simulated device seconds charged by the portfolio (0 host-only).
    elapsed_seconds: float = 0.0
    #: Device clock at the moment the first incumbent landed (NaN if none).
    first_incumbent_seconds: float = float("nan")

    @property
    def objective(self) -> float:
        """Best incumbent objective (NaN when none found)."""
        return self.best.objective if self.best is not None else float("nan")

    @property
    def gap(self) -> float:
        """Relative certified gap of the best incumbent vs the dual bound."""
        if self.best is None or not np.isfinite(self.dual_bound):
            return float("inf")
        obj = self.best.objective
        return abs(self.dual_bound - obj) / max(1e-10, abs(obj))

    def summary(self) -> Dict[str, object]:
        """JSON-friendly counters for report metrics."""
        out: Dict[str, object] = dict(self.stats)
        out["incumbents"] = len(self.incumbents)
        out["lp_iterations"] = self.lp_iterations
        out["elapsed_seconds"] = float(self.elapsed_seconds)
        out["first_incumbent_seconds"] = (
            None
            if not np.isfinite(self.first_incumbent_seconds)
            else float(self.first_incumbent_seconds)
        )
        out["objective"] = (
            None if self.best is None else float(self.best.objective)
        )
        out["dual_bound"] = (
            None if not np.isfinite(self.dual_bound) else float(self.dual_bound)
        )
        out["gap"] = None if not np.isfinite(self.gap) else float(self.gap)
        if self.best is not None:
            out["best_heuristic"] = self.best.heuristic
        return out


# ---------------------------------------------------------------------------
# shared building blocks (also the implementations behind the deprecated
# repro.mip.heuristics wrappers)
# ---------------------------------------------------------------------------


def round_to_feasible(problem: MIPProblem, x: np.ndarray) -> Optional[np.ndarray]:
    """Round the integer components of ``x``; keep the point if feasible."""
    candidate = np.asarray(x, dtype=np.float64).copy()
    idx = problem.integer
    candidate[idx] = np.round(candidate[idx])
    candidate[idx] = np.clip(candidate[idx], problem.lb[idx], problem.ub[idx])
    if problem.is_feasible(candidate):
        return candidate
    return None


def dive_fix(
    problem: MIPProblem,
    node_lp: LinearProgram,
    x: np.ndarray,
    max_depth: int = 20,
    lp_solver: Callable = solve_lp,
) -> Optional[np.ndarray]:
    """Fix-and-resolve dive: pin the least-fractional integer, re-solve.

    Stops at integrality (success), LP infeasibility, or the depth
    limit.  Returns a feasible point or None; never claims optimality.
    """
    current_lp = node_lp
    current_x = np.asarray(x, dtype=np.float64)
    iterations = 0
    for _ in range(max_depth):
        fractional = problem.fractional_integers(current_x)
        if fractional.size == 0:
            if problem.is_feasible(current_x):
                return current_x
            return None
        frac_parts = current_x[fractional] - np.floor(current_x[fractional])
        dist = np.minimum(frac_parts, 1.0 - frac_parts)
        var = int(fractional[np.argmin(dist)])
        value = float(np.round(current_x[var]))
        value = float(np.clip(value, current_lp.lb[var], current_lp.ub[var]))
        current_lp = current_lp.with_bounds(var, lb=value, ub=value)
        res = lp_solver(current_lp)
        iterations += res.iterations
        if res.status is not LPStatus.OPTIMAL:
            return None
        current_x = res.x
    return None


def propagate_bounds(
    problem: MIPProblem,
    lb: np.ndarray,
    ub: np.ndarray,
    max_passes: int = 4,
    tol: float = 1e-7,
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Row-activity bound propagation over fixed/tightened boxes.

    Standard min-activity argument: for a ≤-row, the smallest achievable
    activity must not exceed the rhs, and each variable's bound tightens
    against the row's residual slack.  Equality rows propagate in both
    directions.  Integer bounds round inward.  Returns ``(lb, ub,
    feasible)``; infeasible means the fixing is proven contradictory.
    """
    lb = lb.astype(np.float64).copy()
    ub = ub.astype(np.float64).copy()
    rows: List[Tuple[np.ndarray, float]] = []
    if problem.a_ub is not None:
        for i in range(problem.a_ub.shape[0]):
            rows.append((problem.a_ub[i], float(problem.b_ub[i])))
    if problem.a_eq is not None:
        for i in range(problem.a_eq.shape[0]):
            rows.append((problem.a_eq[i], float(problem.b_eq[i])))
            rows.append((-problem.a_eq[i], -float(problem.b_eq[i])))
    integer = problem.integer
    for _ in range(max_passes):
        changed = False
        if np.any(lb > ub + tol):
            return lb, ub, False
        for a, b in rows:
            pos = a > 0
            neg = a < 0
            min_act = float(a[pos] @ lb[pos] + a[neg] @ ub[neg])
            slack = b - min_act
            if slack < -tol * (1.0 + abs(b)):
                return lb, ub, False
            support = np.nonzero(a)[0]
            for j in support:
                aj = a[j]
                if aj > 0:
                    new_ub = lb[j] + slack / aj
                    if integer[j]:
                        new_ub = np.floor(new_ub + tol)
                    if new_ub < ub[j] - tol:
                        ub[j] = new_ub
                        changed = True
                else:
                    new_lb = ub[j] + slack / aj
                    if integer[j]:
                        new_lb = np.ceil(new_lb - tol)
                    if new_lb > lb[j] + tol:
                        lb[j] = new_lb
                        changed = True
        if not changed:
            break
    return lb, ub, not np.any(lb > ub + tol)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _charge_lp_stream(device: Optional[Device], m: int, n: int, iterations: int) -> None:
    """Price one serial small-LP solve (same stream repro.api charges)."""
    if device is None or m <= 0:
        return
    device._charge(K.getrf_kernel(m), None)
    for _ in range(max(1, iterations)):
        device._charge(K.trsv_kernel(m), None)
        device._charge(K.trsv_kernel(m), None)
        device._charge(K.gemv_kernel(n, m), None)


class _Collector:
    """Accepts candidate points, certifies them, tracks the stats."""

    def __init__(self, problem: MIPProblem, options: PortfolioOptions,
                 device: Optional[Device]):
        self.problem = problem
        self.options = options
        self.device = device
        self.incumbents: List[PortfolioIncumbent] = []
        self.rejected = 0
        self.first_seconds = float("nan")

    def offer(self, x: np.ndarray, heuristic: str, member: int) -> bool:
        """Audit and record one candidate; True when it was accepted."""
        x = np.asarray(x, dtype=np.float64)
        if not self.problem.is_feasible(x):
            return False
        obj = float(self.problem.objective(x))
        certified = False
        if self.options.certify:
            from repro.check import certify_mip_solution

            report = certify_mip_solution(self.problem, x, objective=obj)
            if not report.ok:
                self.rejected += 1
                return False
            certified = True
        self.incumbents.append(
            PortfolioIncumbent(
                x=x.copy(), objective=obj, heuristic=heuristic,
                member=member, certified=certified,
            )
        )
        if self.device is not None and np.isnan(self.first_seconds):
            self.first_seconds = self.device.clock.now
        obs.event(
            "portfolio.incumbent", category="mip",
            objective=obj, heuristic=heuristic, member=member,
        )
        return True

    def best(self) -> Optional[PortfolioIncumbent]:
        """Deterministic best: objective, then phase order, then member."""
        if not self.incumbents:
            return None
        return max(
            self.incumbents,
            key=lambda inc: (
                inc.objective,
                -_PHASE_RANK.get(inc.heuristic, 9),
                -inc.member,
            ),
        )


@dataclass
class _Prep:
    """Shared per-problem data every phase reads."""

    idx: np.ndarray          # integer variable indices
    cont: np.ndarray         # continuous variable indices
    a_rows: np.ndarray       # all rows as <= inequalities, (p, n)
    b_rows: np.ndarray       # (p,)
    x_lp: Optional[np.ndarray]
    dual_bound: float
    relaxation_status: str
    lp_iterations: int


def _prepare(problem: MIPProblem, device: Optional[Device]) -> _Prep:
    """Solve the root relaxation once; assemble the unified row system."""
    idx = np.nonzero(problem.integer)[0]
    cont = np.nonzero(~problem.integer)[0]
    blocks = []
    rhs = []
    if problem.a_ub is not None:
        blocks.append(problem.a_ub)
        rhs.append(problem.b_ub)
    if problem.a_eq is not None:
        blocks.append(problem.a_eq)
        rhs.append(problem.b_eq)
        blocks.append(-problem.a_eq)
        rhs.append(-problem.b_eq)
    if blocks:
        a_rows = np.vstack(blocks).astype(np.float64)
        b_rows = np.concatenate(rhs).astype(np.float64)
    else:
        a_rows = np.zeros((0, problem.n))
        b_rows = np.zeros(0)

    relax = problem.relaxation()
    res = solve_lp(relax)
    sf_m = relax.to_standard_form().m if problem.n else 0
    _charge_lp_stream(device, sf_m, problem.n, res.iterations)
    x_lp = None
    dual_bound = float("inf")
    if res.status is LPStatus.OPTIMAL:
        x_lp = np.clip(res.x, problem.lb, problem.ub)
        dual_bound = float(res.objective)
    elif res.status is LPStatus.INFEASIBLE:
        dual_bound = float("-inf")
    return _Prep(
        idx=idx,
        cont=cont,
        a_rows=a_rows,
        b_rows=b_rows,
        x_lp=x_lp,
        dual_bound=dual_bound,
        relaxation_status=res.status.value,
        lp_iterations=res.iterations,
    )


def _assemble(
    problem: MIPProblem, prep: _Prep, x_int: np.ndarray,
    collector: _Collector, device: Optional[Device],
) -> Tuple[np.ndarray, int]:
    """Full-space candidate from an integer assignment.

    With continuous variables present, polish them by re-solving the LP
    with the integers pinned (charged as one small-LP stream); without,
    the integer assignment is the whole point.
    """
    x = np.zeros(problem.n)
    x[prep.idx] = x_int
    if prep.cont.size == 0:
        return x, 0
    if prep.x_lp is not None:
        x[prep.cont] = prep.x_lp[prep.cont]
    lb = problem.lb.copy()
    ub = problem.ub.copy()
    lb[prep.idx] = x_int
    ub[prep.idx] = x_int
    polish = LinearProgram(
        c=problem.c, a_ub=problem.a_ub, b_ub=problem.b_ub,
        a_eq=problem.a_eq, b_eq=problem.b_eq, lb=lb, ub=ub,
    )
    res = solve_lp(polish)
    sf_m = polish.to_standard_form().m
    _charge_lp_stream(device, sf_m, problem.n, res.iterations)
    if res.status is LPStatus.OPTIMAL:
        return np.clip(res.x, problem.lb, problem.ub), res.iterations
    return x, res.iterations


def _feasibility_jump(
    problem: MIPProblem,
    options: PortfolioOptions,
    prep: _Prep,
    collector: _Collector,
    device: Optional[Device],
) -> Tuple[int, int, bool]:
    """Wide restarts in masked lockstep chunks; returns (sweeps, lp_iters, cut).

    The state is a ``(k, n_int)`` block per chunk.  One sweep scores the
    down- and up-moves of every integer variable for every active member
    (two GEMM-shaped passes over the ``(k, rows, n_int)`` broadcast),
    applies each member's best strictly-improving move with one masked
    AXPY, and bumps stuck members' violated-row weights before a seeded
    kick.  Rows/columns are member-independent, so a member's trajectory
    is identical for any chunk width.
    """
    idx = prep.idx
    ni = idx.size
    if ni == 0:
        return 0, 0, False
    lb_i = problem.lb[idx]
    ub_i = problem.ub[idx]
    a_int = prep.a_rows[:, idx] if prep.a_rows.size else np.zeros((0, ni))
    p = a_int.shape[0]
    # Continuous contribution is frozen at the root-LP point (polished
    # per candidate later); fold it into the rhs.
    if prep.cont.size and prep.x_lp is not None:
        b_eff = prep.b_rows - prep.a_rows[:, prep.cont] @ prep.x_lp[prep.cont]
    else:
        b_eff = prep.b_rows.copy()
    row_tol = 1e-7 * (1.0 + np.abs(b_eff))
    c_int = problem.c[idx]
    obj_eps = 1e-4 / max(1.0, float(np.abs(c_int).max()) if ni else 1.0)
    if prep.x_lp is not None:
        base_round = np.clip(np.round(prep.x_lp[idx]), lb_i, ub_i)
    else:
        base_round = np.clip(np.zeros(ni), lb_i, ub_i)

    total_sweeps = 0
    lp_iters = 0
    cut = False
    for chunk_start in range(0, options.restarts, options.n_jobs):
        # Anytime contract: an expired deadline budget stops the phase
        # at the next chunk boundary with whatever incumbents exist.
        if guard_budget.deadline_hit():
            cut = True
            break
        members = list(range(chunk_start, min(chunk_start + options.n_jobs,
                                              options.restarts)))
        k = len(members)
        rngs = [np.random.default_rng((options.seed, r)) for r in members]
        x = np.tile(base_round, (k, 1))
        for t, r in enumerate(members):
            if r == 0:
                continue
            # Later restarts randomize a growing share of the rounding.
            share = min(0.9, 0.1 + r / max(1, options.restarts))
            mask = rngs[t].random(ni) < share
            draw = rngs[t].integers(
                lb_i.astype(np.int64), ub_i.astype(np.int64) + 1
            ).astype(np.float64)
            x[t] = np.where(mask, draw, x[t])
        # Residuals per member via gemv (k-independent math per row).
        res = np.stack([a_int @ x[t] for t in range(k)]) - b_eff[None, :] \
            if p else np.zeros((k, 0))
        if device is not None and p:
            device._charge(K.gemm_kernel(k, p, ni), None)
        w = np.ones((k, p))
        active = np.ones(k, dtype=bool)

        for _sweep in range(options.fj_sweeps):
            if not active.any():
                break
            if guard_budget.deadline_hit():
                cut = True
                break
            total_sweeps += 1
            viol = (w * np.maximum(res, 0.0)).sum(axis=1) if p else np.zeros(k)
            # Members whose integer rows close out: assemble + audit.
            for t in np.nonzero(active)[0]:
                if p == 0 or (res[t] <= row_tol).all():
                    cand, it = _assemble(problem, prep, x[t], collector, device)
                    lp_iters += it
                    collector.offer(cand, "feasibility_jump", members[t])
                    active[t] = False
            if not active.any():
                break

            down_d = np.where(x > lb_i[None, :] + 0.5, -1.0, 0.0)
            up_d = np.where(x < ub_i[None, :] - 0.5, 1.0, 0.0)
            if p:
                # Two fused score passes — the same (k × rows · n_int)
                # arithmetic a batched GEMM would do, charged as such.
                new_down = res[:, :, None] + a_int[None, :, :] * down_d[:, None, :]
                new_up = res[:, :, None] + a_int[None, :, :] * up_d[:, None, :]
                viol_down = (w[:, :, None] * np.maximum(new_down, 0.0)).sum(axis=1)
                viol_up = (w[:, :, None] * np.maximum(new_up, 0.0)).sum(axis=1)
                if device is not None:
                    device._charge(K.gemm_kernel(k, p, ni), None)
                    device._charge(K.gemm_kernel(k, p, ni), None)
            else:
                viol_down = np.zeros((k, ni))
                viol_up = np.zeros((k, ni))
            score_down = viol_down - viol[:, None] - obj_eps * c_int[None, :] * down_d
            score_up = viol_up - viol[:, None] - obj_eps * c_int[None, :] * up_d
            score_down[down_d == 0.0] = np.inf
            score_up[up_d == 0.0] = np.inf
            scores = np.concatenate([score_down, score_up], axis=1)  # (k, 2ni)
            pick = np.argmin(scores, axis=1)
            best_score = scores[np.arange(k), pick]
            improving = active & (best_score < -1e-9)

            # Masked apply: each improving member moves one coordinate.
            for t in np.nonzero(improving)[0]:
                j = int(pick[t] % ni)
                d = -1.0 if pick[t] < ni else 1.0
                x[t, j] += d
                if p:
                    res[t] += d * a_int[:, j]
            if device is not None and improving.any():
                device._charge(K.axpy_kernel(k * ni), None)

            # Stuck members: per-member weight bump + seeded kick.
            stuck = active & ~improving
            for t in np.nonzero(stuck)[0]:
                if p:
                    w[t, res[t] > row_tol] += 1.0
                kick = rngs[t].choice(ni, size=max(1, ni // 8), replace=False)
                for j in kick:
                    step = float(rngs[t].choice([-1.0, 1.0]))
                    new_val = float(np.clip(x[t, j] + step, lb_i[j], ub_i[j]))
                    d = new_val - x[t, j]
                    if d != 0.0:
                        x[t, j] = new_val
                        if p:
                            res[t] += d * a_int[:, j]
    return total_sweeps, lp_iters, cut


def _fix_and_propagate(
    problem: MIPProblem,
    options: PortfolioOptions,
    prep: _Prep,
    collector: _Collector,
    device: Optional[Device],
) -> Tuple[int, int, bool]:
    """LP-guided fixing batched over thresholds; returns (rounds, lp_iters, cut)."""
    if prep.x_lp is None or prep.idx.size == 0:
        return 0, 0, False
    idx = prep.idx
    frac = prep.x_lp[idx] - np.floor(prep.x_lp[idx])
    thresholds = np.asarray(options.thresholds, dtype=np.float64)
    # Batched fixing decision: one boolean block for all thresholds.
    fix_down = frac[None, :] <= thresholds[:, None]
    fix_up = frac[None, :] >= 1.0 - thresholds[:, None]
    rounds = 0
    lp_iters = 0
    cut = False
    for ti in range(thresholds.size):
        if guard_budget.deadline_hit():
            cut = True
            break
        lb = problem.lb.copy()
        ub = problem.ub.copy()
        vals = np.where(fix_up[ti], np.ceil(prep.x_lp[idx]),
                        np.floor(prep.x_lp[idx]))
        fixed = fix_down[ti] | fix_up[ti]
        lb[idx[fixed]] = vals[fixed]
        ub[idx[fixed]] = vals[fixed]
        lb2, ub2, ok = propagate_bounds(problem, lb, ub)
        if not ok:
            continue
        rounds += 1
        residual = LinearProgram(
            c=problem.c, a_ub=problem.a_ub, b_ub=problem.b_ub,
            a_eq=problem.a_eq, b_eq=problem.b_eq, lb=lb2, ub=ub2,
        )
        res = solve_lp(residual)
        sf_m = residual.to_standard_form().m
        _charge_lp_stream(device, sf_m, problem.n, res.iterations)
        lp_iters += res.iterations
        if res.status is not LPStatus.OPTIMAL:
            continue
        x = np.clip(res.x, lb2, ub2)
        if problem.fractional_integers(x).size:
            x = dive_fix(problem, residual, x, max_depth=min(25, idx.size))
            if x is None:
                continue
        collector.offer(x, "fix_propagate", ti)
    return rounds, lp_iters, cut


def _lns(
    problem: MIPProblem,
    options: PortfolioOptions,
    prep: _Prep,
    collector: _Collector,
    device: Optional[Device],
) -> Tuple[int, int, bool]:
    """Warm-started sub-MIP re-solves around the incumbent."""
    # Imported here: mip.solver imports this module for its rounding
    # heuristic, so the top level must stay solver-free.
    from repro.mip.solver import BranchAndBoundSolver, SolverOptions

    idx = prep.idx
    if idx.size == 0:
        return 0, 0, False
    rounds = 0
    lp_iters = 0
    cut = False
    for round_i in range(options.lns_rounds):
        if guard_budget.deadline_hit():
            cut = True
            break
        best = collector.best()
        if best is None:
            break
        rng = np.random.default_rng((options.seed, 7919, round_i))
        free_count = max(1, int(np.ceil(idx.size * options.lns_neighborhood)))
        free = rng.choice(idx, size=min(free_count, idx.size), replace=False)
        pinned = np.setdiff1d(idx, free)
        if pinned.size == 0 and idx.size > 1:
            continue
        lb = problem.lb.copy()
        ub = problem.ub.copy()
        lb[pinned] = np.round(best.x[pinned])
        ub[pinned] = np.round(best.x[pinned])
        sub = MIPProblem(
            c=problem.c, integer=problem.integer,
            a_ub=problem.a_ub, b_ub=problem.b_ub,
            a_eq=problem.a_eq, b_eq=problem.b_eq,
            lb=lb, ub=ub, name=f"{problem.name}-lns{round_i}",
        )
        solver = BranchAndBoundSolver(
            sub,
            SolverOptions(
                node_limit=options.lns_node_limit,
                warm_start=True,
            ),
        )
        result = solver.solve()
        rounds += 1
        lp_iters += result.stats.lp_iterations
        sf = sub.relaxation().to_standard_form()
        _charge_lp_stream(device, sf.m, sf.n, result.stats.lp_iterations)
        if result.x is not None:
            collector.offer(
                np.clip(result.x, problem.lb, problem.ub), "lns", round_i
            )
    return rounds, lp_iters, cut


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def run_portfolio(
    problem: MIPProblem,
    options: Optional[PortfolioOptions] = None,
    device: Optional[Device] = None,
) -> PortfolioResult:
    """Run the full heuristic portfolio on one MIP.

    Phases run in a fixed order (feasibility jump → fix-and-propagate →
    LNS) sharing one root-relaxation solve; the result's ``dual_bound``
    is that relaxation's objective, so ``result.gap`` is a *certified*
    optimality gap whenever ``options.certify`` is on (every incumbent
    passed the exact-rational feasibility certificate, and the LP bound
    is a true dual bound for the maximization MIP).
    """
    options = options or PortfolioOptions()
    t0 = device.clock.now if device is not None else 0.0
    with obs.span(
        "mip.portfolio", category="mip",
        n=problem.n, integers=problem.num_integer, restarts=options.restarts,
    ) as sp:
        prep = _prepare(problem, device)
        collector = _Collector(problem, options, device)
        stats: Dict[str, int] = {
            "restarts": 0, "fj_sweeps": 0, "fnp_rounds": 0,
            "lns_rounds": 0, "rejected": 0, "deadline_stops": 0,
        }
        lp_iters = prep.lp_iterations

        def expired() -> bool:
            # SolveOptions.deadline installs a guard budget around the
            # whole solve; the portfolio polls it at phase boundaries
            # (and inside each phase loop) so a mid-portfolio expiry
            # returns the certified anytime result instead of running on.
            if guard_budget.deadline_hit():
                stats["deadline_stops"] += 1
                return True
            return False

        if prep.idx.size == 0:
            # Pure-LP "MIP": the relaxation point is the candidate.
            if prep.x_lp is not None:
                collector.offer(prep.x_lp, "fix_propagate", 0)
        elif prep.relaxation_status != "infeasible":
            if options.feasibility_jump and not expired():
                sweeps, it, cut = _feasibility_jump(
                    problem, options, prep, collector, device
                )
                stats["restarts"] = options.restarts
                stats["fj_sweeps"] = sweeps
                stats["deadline_stops"] += int(cut)
                lp_iters += it
            if options.fix_propagate and not expired():
                rounds, it, cut = _fix_and_propagate(
                    problem, options, prep, collector, device
                )
                stats["fnp_rounds"] = rounds
                stats["deadline_stops"] += int(cut)
                lp_iters += it
            if options.lns and not expired():
                rounds, it, cut = _lns(problem, options, prep, collector, device)
                stats["lns_rounds"] = rounds
                stats["deadline_stops"] += int(cut)
                lp_iters += it

        stats["rejected"] = collector.rejected
        best = collector.best()
        sp.set(
            incumbents=len(collector.incumbents),
            best=best.objective if best is not None else None,
        )
        return PortfolioResult(
            incumbents=collector.incumbents,
            best=best,
            dual_bound=prep.dual_bound,
            relaxation_status=prep.relaxation_status,
            stats=stats,
            lp_iterations=lp_iters,
            elapsed_seconds=(device.clock.now - t0) if device is not None else 0.0,
            first_incumbent_seconds=collector.first_seconds,
        )
