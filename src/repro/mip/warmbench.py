"""E15 — warm-started node LPs and parametric serve re-solves, measured.

Two claims from the §5.3 reuse argument, one payload:

1. **Node-LP pivot reduction.**  A branch-and-bound child differs from
   its parent by one tightened bound, so re-solving from the parent's
   basis (and, when shapes allow, its resident factorization) should
   need far fewer dual-simplex pivots than a cold solve.  The benchmark
   runs the same instances warm and cold and reports pivots-per-node
   both ways; the headline ``pivot_reduction`` is the ratio (≥ 2x is
   the repeatable-result gate, measured instances land well above it).

2. **Serve warm-hit latency.**  A request stream of near-duplicate LPs
   (same constraint matrix, perturbed rhs) against
   :class:`repro.serve.SolveService` exercises the parametric re-solve
   path: after one cold seed, perturbations answer as range hits (zero
   pivots) or warm re-solves (a few pivots), at microsecond simulated
   latencies instead of full batch dispatch.

Every number is cross-validated before it is believed: warm and cold
runs must agree on status and objective per instance, and every
parametric serve answer was certificate-audited inside the service.

The payload follows the :mod:`repro.obs.bench` schema; experiment E15's
artifact is ``BENCH_warm.json`` at the repo root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.obs.bench import bench_payload
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip


def default_instances(
    knapsack_items: Sequence[int] = (18, 22),
    random_sizes: Sequence[Tuple[int, int]] = ((8, 6),),
    seed: int = 3,
) -> List[MIPProblem]:
    """The E15 instance mix: branchy knapsacks plus a dense random MIP."""
    instances = [
        generate_knapsack(n, seed=seed, correlation="strong")
        for n in knapsack_items
    ]
    instances.extend(
        generate_random_mip(n, m, seed=seed + 1, integer_fraction=1.0)
        for n, m in random_sizes
    )
    return instances


def _solve_both(problem: MIPProblem, node_limit: int) -> Dict[str, object]:
    """One instance warm and cold; cross-validated before reporting."""
    warm = BranchAndBoundSolver(
        problem, SolverOptions(node_limit=node_limit, warm_start=True)
    ).solve()
    cold = BranchAndBoundSolver(
        problem, SolverOptions(node_limit=node_limit, warm_start=False)
    ).solve()
    if warm.status is not cold.status:
        raise ReproError(
            f"E15 cross-validation: {problem.name} warm={warm.status.value} "
            f"vs cold={cold.status.value}"
        )
    scale = 1.0 + max(abs(warm.objective), abs(cold.objective))
    if abs(warm.objective - cold.objective) > 1e-6 * scale:
        raise ReproError(
            f"E15 cross-validation: {problem.name} objectives differ "
            f"({warm.objective!r} vs {cold.objective!r})"
        )
    warm_pivots = warm.stats.warm_pivots + warm.stats.cold_pivots
    cold_pivots = cold.stats.warm_pivots + cold.stats.cold_pivots
    warm_nodes = max(1, warm.stats.nodes_processed)
    cold_nodes = max(1, cold.stats.nodes_processed)
    warm_per_node = warm_pivots / warm_nodes
    cold_per_node = cold_pivots / cold_nodes
    return {
        "instance": problem.name,
        "status": warm.status.value,
        "objective": float(warm.objective),
        "warm_nodes": warm.stats.nodes_processed,
        "cold_nodes": cold.stats.nodes_processed,
        "warm_pivots": warm_pivots,
        "cold_pivots": cold_pivots,
        "warm_pivots_per_node": round(warm_per_node, 4),
        "cold_pivots_per_node": round(cold_per_node, 4),
        "pivot_reduction": round(cold_per_node / max(warm_per_node, 1e-12), 4),
        "warm_starts": warm.stats.warm_starts,
        "factor_reuses": warm.stats.warm_factor_reuses,
        "audit_failures": warm.stats.warm_audit_failures,
    }


def _serve_row(
    num_requests: int, seed: int, rel_scale: float = 0.02
) -> Dict[str, object]:
    """Near-duplicate LP stream through the serve parametric path."""
    from repro.serve import BatchingPolicy, SolveService

    rng = np.random.default_rng(seed)
    n, m = 10, 8
    a = np.abs(rng.normal(size=(m, n))) + 0.1
    b0 = np.abs(rng.normal(size=m)) * 5 + 2
    c = rng.normal(size=n) + 1.0

    service = SolveService(
        policy=BatchingPolicy(max_batch_size=1, max_wait=0.0)
    )
    for i in range(num_requests):
        if i == 0:
            scale = np.ones(m)  # the cold seed
        elif i % 4 == 0:
            # A big rhs move, out of the sensitivity ranges: forces the
            # warm dual-simplex re-solve (a few pivots, not zero).
            scale = rng.uniform(0.5, 1.5, size=m)
        else:
            scale = 1.0 + rel_scale * rng.uniform(-1, 1, size=m)
        problem = LinearProgram(
            c=c, a_ub=a, b_ub=b0 * scale, lb=np.zeros(n), ub=np.full(n, np.inf)
        )
        service.submit(problem, at=float(i))
        service.drain()
    responses = service.close()

    warm_latencies = [r.latency for r in responses if r.warm]
    cold_latencies = [r.latency for r in responses if not r.warm and not r.cached]
    cache = service.parametric
    mean = lambda xs: float(np.mean(xs)) if xs else None
    warm_mean = mean(warm_latencies)
    cold_mean = mean(cold_latencies)
    return {
        "instance": "serve-near-duplicates",
        "requests": num_requests,
        "range_hits": cache.range_hits,
        "warm_hits": cache.warm_hits,
        "parametric_misses": cache.misses,
        "parametric_audit_failures": cache.audit_failures,
        "warm_latency_mean": warm_mean,
        "cold_latency_mean": cold_mean,
        "warm_latency_speedup": (
            round(cold_mean / warm_mean, 4)
            if warm_mean and cold_mean
            else None
        ),
    }


def warm_bench_payload(
    instances: Optional[Sequence[MIPProblem]] = None,
    node_limit: int = 50_000,
    serve_requests: int = 16,
    seed: int = 7,
) -> Dict[str, object]:
    """Assemble the E15 artifact payload (schema of :mod:`repro.obs.bench`).

    ``rows`` carries one warm-vs-cold row per MIP instance plus one
    serve-stream row; ``summary`` holds the headline aggregate pivot
    reduction (total cold pivots-per-node over total warm) and the
    serve hit counts.
    """
    if instances is None:
        instances = default_instances()
    rows = [_solve_both(problem, node_limit) for problem in instances]
    serve = _serve_row(serve_requests, seed)

    total_warm = sum(r["warm_pivots"] for r in rows)
    total_cold = sum(r["cold_pivots"] for r in rows)
    warm_nodes = sum(r["warm_nodes"] for r in rows)
    cold_nodes = sum(r["cold_nodes"] for r in rows)
    warm_per_node = total_warm / max(1, warm_nodes)
    cold_per_node = total_cold / max(1, cold_nodes)

    summary = {
        "instances": len(rows),
        "pivot_reduction": round(cold_per_node / max(warm_per_node, 1e-12), 4),
        "warm_pivots_per_node": round(warm_per_node, 4),
        "cold_pivots_per_node": round(cold_per_node, 4),
        "serve_range_hits": serve["range_hits"],
        "serve_warm_hits": serve["warm_hits"],
        "serve_warm_latency_speedup": serve["warm_latency_speedup"],
    }
    return bench_payload(
        "e15_warm",
        rows=rows + [serve],
        params={
            "node_limit": node_limit,
            "serve_requests": serve_requests,
            "seed": seed,
        },
        summary=summary,
    )
