"""Mixed integer programming: branch-and-cut — the paper's subject.

- :mod:`repro.mip.problem` — `MIPProblem` (paper Eq. 1).
- :mod:`repro.mip.tree` — the branch-and-bound tree with the node tags
  of Figure 1 (active / feasible / infeasible / pruned / branched).
- :mod:`repro.mip.snapshot` — consistent snapshots and restart (§2.1).
- :mod:`repro.mip.branching` — most-fractional / pseudocost / strong.
- :mod:`repro.mip.node_selection` — best-first / depth-first / hybrid /
  GPU-locality-aware ordering (§5.3).
- :mod:`repro.mip.cuts` — Gomory mixed-integer and knapsack cover cuts
  with a cut pool (§5.2).
- :mod:`repro.mip.heuristics` — rounding and diving primal heuristics.
- :mod:`repro.mip.solver` — the branch-and-cut driver, parameterized by
  an execution engine so the paper's strategies can meter every LP
  solve, transfer and kernel.
- :mod:`repro.mip.ivm` — the Integer-Vector-Matrix tree representation
  of Gmys et al. for permutation problems (§2.3).
- :mod:`repro.mip.probing` — root probing / implication tables (§3.3).
- :mod:`repro.mip.colgen` — Gilmore–Gomory column generation (§3.3).
- :mod:`repro.mip.checkpoint` — JSON snapshot persistence (§2.3, UG).
- :mod:`repro.mip.batch_solver` — batched-node B&B (§5.5 end-to-end).
"""

from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.mip.tree import BBTree, NodeTag

__all__ = [
    "MIPProblem",
    "MIPResult",
    "MIPStatus",
    "BranchAndBoundSolver",
    "SolverOptions",
    "BatchedNodeSolver",
    "BatchedSolverOptions",
    "BBTree",
    "NodeTag",
]
