"""Cut pool: dedupe, rank by violation, cap per round."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class Cut:
    """One valid inequality ``row · x ≤ rhs`` in standard-form space."""

    row: np.ndarray
    rhs: float
    #: Violation at the generating LP solution (≥ 0 for useful cuts).
    violation: float
    source: str = "unknown"

    def normalized_key(self) -> Tuple:
        """Hashable key invariant to positive scaling (dedupe)."""
        norm = np.linalg.norm(self.row)
        if norm == 0:
            return ("zero",)
        row = self.row / norm
        rhs = self.rhs / norm
        return (round(rhs, 9),) + tuple(np.round(row, 9))


class CutPool:
    """Collects candidate cuts, dedupes, and selects the best ones."""

    def __init__(self, max_pool: int = 1000):
        self._cuts: List[Cut] = []
        self._seen: set = set()
        self._max_pool = max_pool

    def add(self, cut: Cut) -> bool:
        """Add a cut unless it's a duplicate; returns True when kept."""
        if len(self._cuts) >= self._max_pool:
            return False
        key = cut.normalized_key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._cuts.append(cut)
        return True

    def select(self, count: int, min_violation: float = 1e-6) -> List[Cut]:
        """Pop the ``count`` most violated cuts above the threshold."""
        eligible = [c for c in self._cuts if c.violation >= min_violation]
        eligible.sort(key=lambda c: -c.violation)
        chosen = eligible[:count]
        chosen_ids = {id(c) for c in chosen}
        self._cuts = [c for c in self._cuts if id(c) not in chosen_ids]
        return chosen

    def __len__(self) -> int:
        return len(self._cuts)
