"""Knapsack cover cuts from binary ≤-rows.

A row ``Σ a_j x_j ≤ b`` over binary variables with a_j > 0 admits, for
any *cover* C (a set with Σ_{j∈C} a_j > b), the valid inequality
``Σ_{j∈C} x_j ≤ |C| − 1``.  The separation heuristic greedily builds a
minimal cover from the LP solution sorted by x̄_j descending, keeping
the cut only when the current point violates it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.lp.problem import StandardFormLP
from repro.mip.cuts.pool import Cut
from repro.mip.problem import MIPProblem


def cover_cuts(
    problem: MIPProblem,
    sf: StandardFormLP,
    x: np.ndarray,
    max_cuts: int = 8,
) -> List[Cut]:
    """Generate violated cover cuts in standard-form space.

    ``x`` is the LP solution in *original* variables.  Rows qualify when
    every variable with a nonzero coefficient is binary and the
    coefficients are positive.
    """
    if problem.a_ub is None:
        return []
    binary = (
        problem.integer
        & (problem.lb >= -1e-9)
        & (problem.ub <= 1.0 + 1e-9)
    )
    cuts: List[Cut] = []
    for i in range(problem.a_ub.shape[0]):
        if len(cuts) >= max_cuts:
            break
        row = problem.a_ub[i]
        support = np.nonzero(np.abs(row) > 1e-12)[0]
        if support.size < 2:
            continue
        if not np.all(binary[support]) or np.any(row[support] <= 0):
            continue
        b = problem.b_ub[i]
        # Greedy cover: most fractional-valuable first.
        order = support[np.argsort(-x[support])]
        total = 0.0
        cover = []
        for j in order:
            cover.append(int(j))
            total += row[j]
            if total > b + 1e-9:
                break
        if total <= b + 1e-9:
            continue  # no cover exists along this ordering
        # Minimality: drop members that keep it a cover.
        cover_sorted = sorted(cover, key=lambda j: row[j])
        minimal = list(cover)
        for j in cover_sorted:
            if total - row[j] > b + 1e-9:
                minimal.remove(j)
                total -= row[j]
        if len(minimal) < 2:
            continue
        lhs = float(np.sum(x[minimal]))
        rhs = float(len(minimal) - 1)
        if lhs <= rhs + 1e-6:
            continue  # not violated
        # Map Σ_{j∈C} x_j ≤ |C|−1 into standard-form columns; binary
        # variables have zero shift and no split, so the map is direct.
        std_row = np.zeros(sf.n)
        for j in minimal:
            std_row[sf.pos_col[j]] = 1.0
        cuts.append(
            Cut(row=std_row, rhs=rhs, violation=lhs - rhs, source="cover")
        )
    return cuts
