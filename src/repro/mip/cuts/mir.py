"""Mixed-integer rounding (MIR) cuts from single constraint rows.

The MIR inequality for the mixed set
``{x ≥ 0 : Σ_I a_j x_j + Σ_C g_j x_j ≤ b}`` (I integer, C continuous):
drop continuous terms with g_j > 0 (weakening), fold the negative ones
into a slack ``t = −Σ_{g_j<0} g_j x_j ≥ 0``, and apply basic MIR to
``Σ_I a_j x_j − t ≤ b``:

    Σ_I ( ⌊a_j⌋ + max(f_j − f₀, 0)/(1 − f₀) ) x_j
      + Σ_{g_j<0} g_j/(1 − f₀) x_j  ≤  ⌊b⌋,

with f_j = frac(a_j), f₀ = frac(b) > 0.  Each row is also tried under a
few divisors δ (row/δ before rounding), the cheap end of the
Marchand–Wolsey c-MIR recipe; the most violated version is kept.

Rows are pre-shifted by finite lower bounds so x ≥ 0 holds; rows
touching free continuous variables are skipped (no sign certificate).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.lp.problem import StandardFormLP
from repro.mip.cuts.pool import Cut
from repro.mip.problem import MIPProblem


def _mir_from_row(
    a_row: np.ndarray,
    b_val: float,
    integer_mask: np.ndarray,
    x: np.ndarray,
) -> tuple:
    """MIR coefficients in (shifted) original space, or (None, 0)."""
    f0 = b_val - np.floor(b_val)
    if f0 < 1e-6 or f0 > 1.0 - 1e-6:
        return None, 0.0
    one_minus = 1.0 - f0
    coeff = np.zeros_like(a_row)
    for j in range(a_row.shape[0]):
        aj = a_row[j]
        if abs(aj) < 1e-12:
            continue
        if integer_mask[j]:
            fj = aj - np.floor(aj)
            coeff[j] = np.floor(aj) + max(fj - f0, 0.0) / one_minus
        elif aj < 0:
            coeff[j] = aj / one_minus
        # continuous with positive coefficient: dropped (coefficient 0)
    rhs = float(np.floor(b_val))
    violation = float(coeff @ x) - rhs
    return (coeff, rhs), violation


def mir_cuts(
    problem: MIPProblem,
    sf: StandardFormLP,
    x: np.ndarray,
    max_cuts: int = 8,
    divisors: Sequence[float] = (1.0, 2.0, 3.0),
) -> List[Cut]:
    """Violated single-row MIR cuts in standard-form space.

    ``x`` is the fractional LP solution in original variables.
    """
    if problem.a_ub is None:
        return []
    lb = problem.lb
    finite_lb = np.isfinite(lb)
    free_cont = ~finite_lb & ~problem.integer
    x_shifted = np.where(finite_lb, x - lb, x)

    cuts: List[Cut] = []
    for i in range(problem.a_ub.shape[0]):
        if len(cuts) >= max_cuts:
            break
        row = problem.a_ub[i]
        support = np.abs(row) > 1e-12
        if not support.any() or np.any(support & free_cont):
            continue
        # Shift to x' = x - lb ≥ 0.
        b_shifted = problem.b_ub[i] - float(row[finite_lb] @ lb[finite_lb])

        best = None
        best_violation = 1e-6
        for divisor in divisors:
            candidate, violation = _mir_from_row(
                row / divisor, b_shifted / divisor, problem.integer, x_shifted
            )
            if candidate is not None and violation > best_violation:
                best, best_violation = candidate, violation
        if best is None:
            continue
        coeff, rhs = best

        # Map to standard-form columns; fold the shift back into the rhs.
        std_row = np.zeros(sf.n)
        rhs_std = rhs
        for j in np.nonzero(np.abs(coeff) > 1e-12)[0]:
            std_row[sf.pos_col[j]] = coeff[j]
            # x'_j = x_j − lb_j and the standard column is already the
            # shifted variable (sf.shift == lb for finite-lb vars), so
            # no rhs correction is needed beyond the shift done above.
        cuts.append(
            Cut(row=std_row, rhs=rhs_std, violation=best_violation, source="mir")
        )
    return cuts
