"""Gomory mixed-integer (GMI) cuts from the optimal simplex tableau.

For a basic integer variable with fractional value x̄_B[r] = b̄, the
tableau row is ``x_B[r] + Σ_N ā_j x_j = b̄``.  With f₀ = frac(b̄) and
f_j = frac(ā_j), the GMI inequality

    Σ_{j∈N, int}  min(f_j/f₀, (1−f_j)/(1−f₀)) x_j
  + Σ_{j∈N, cont} (ā_j/f₀ if ā_j>0 else −ā_j/(1−f₀)) x_j  ≥ 1

is valid for every mixed-integer point and cuts off the current LP
optimum by exactly 1 − 0 = 1 unit of the normalized row.

Computing the tableau row needs one btran per cut (ρ = B⁻ᵀ e_r, then
ā = Aᵀρ) — the same resident-basis linear algebra as the simplex itself,
which is why the paper's §5.2 only worries about *cut generation*
happening on the CPU, not about the tableau access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import SingularMatrixError
from repro.la.updates import ProductFormInverse
from repro.lp.problem import StandardFormLP
from repro.mip.cuts.pool import Cut
from repro.mip.problem import MIPProblem


def standard_integer_mask(problem: MIPProblem, sf: StandardFormLP) -> np.ndarray:
    """Which standard-form columns are integer-valued.

    Structural columns of integer variables are integer because the
    bound shift (the variable's lb) is integral by construction
    (:class:`MIPProblem` rounds integer bounds).  Slacks are treated as
    continuous — conservative and always valid.
    """
    mask = np.zeros(sf.n, dtype=bool)
    for i in np.nonzero(problem.integer)[0]:
        if sf.neg_col[i] < 0:  # split (free) vars are never integer-safe
            mask[sf.pos_col[i]] = True
    return mask


def gomory_mixed_integer_cuts(
    problem: MIPProblem,
    sf: StandardFormLP,
    basis: np.ndarray,
    x_standard: np.ndarray,
    max_cuts: int = 8,
    min_fractionality: float = 1e-4,
) -> List[Cut]:
    """Generate GMI cuts for the fractional basic integer variables.

    Returns cuts as ``row · x ≤ rhs`` over standard-form columns (the
    ≥-form above is negated for uniform appending).
    """
    tol = DEFAULT_TOLERANCES
    int_mask = standard_integer_mask(problem, sf)
    m = sf.m

    basis = np.asarray(basis, dtype=np.int64)
    if np.any(basis < 0) or np.any(basis >= sf.n):
        return []  # basis references artificials; skip cut generation
    try:
        pfi = ProductFormInverse(sf.a[:, basis])
    except SingularMatrixError:
        return []

    nonbasic = np.ones(sf.n, dtype=bool)
    nonbasic[basis] = False

    # Rank candidate rows by fractionality of their basic integer value.
    candidates = []
    for r in range(m):
        col = basis[r]
        if not int_mask[col]:
            continue
        value = x_standard[col]
        f0 = value - np.floor(value)
        if min_fractionality < f0 < 1.0 - min_fractionality:
            candidates.append((abs(f0 - 0.5), r, f0))
    candidates.sort()

    cuts: List[Cut] = []
    for _, r, f0 in candidates[:max_cuts]:
        e_r = np.zeros(m)
        e_r[r] = 1.0
        rho = pfi.btran(e_r)
        abar = sf.a.T @ rho  # tableau row over all columns

        coeff = np.zeros(sf.n)
        nb_idx = np.nonzero(nonbasic)[0]
        for j in nb_idx:
            aj = abar[j]
            if abs(aj) <= tol.drop:
                continue
            if int_mask[j]:
                fj = aj - np.floor(aj)
                if fj <= f0:
                    coeff[j] = fj / f0
                else:
                    coeff[j] = (1.0 - fj) / (1.0 - f0)
            else:
                if aj > 0:
                    coeff[j] = aj / f0
                else:
                    coeff[j] = -aj / (1.0 - f0)
        if not np.any(np.abs(coeff) > tol.drop):
            continue
        # GMI: coeff · x ≥ 1  →  append as  -coeff · x ≤ -1.
        row = -coeff
        rhs = -1.0
        violation = float(row @ x_standard) - rhs  # >0 when x* violates ≤
        if violation <= 1e-7:
            continue
        cuts.append(Cut(row=row, rhs=rhs, violation=violation, source="gmi"))
    return cuts
