"""Cutting planes for branch-and-cut (paper §5.2).

Cuts are generated *per node* and "added temporarily to the matrix for a
particular tree node" (paper §5.2) — children warm-start from the
pre-cut parent basis.  Two families:

- :mod:`repro.mip.cuts.gomory` — Gomory mixed-integer (GMI) cuts read
  off the optimal simplex tableau, expressed directly in the node's
  standard form.
- :mod:`repro.mip.cuts.cover` — knapsack cover cuts from binary ≤-rows.
- :mod:`repro.mip.cuts.mir` — single-row mixed-integer rounding cuts
  with divisor trials (c-MIR lite).

:mod:`repro.mip.cuts.pool` deduplicates and ranks candidate cuts.
"""

from repro.mip.cuts.gomory import gomory_mixed_integer_cuts
from repro.mip.cuts.cover import cover_cuts
from repro.mip.cuts.mir import mir_cuts
from repro.mip.cuts.pool import Cut, CutPool

__all__ = ["gomory_mixed_integer_cuts", "cover_cuts", "mir_cuts", "Cut", "CutPool"]
