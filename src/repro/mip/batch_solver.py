"""Batched-node branch-and-bound: §5.5 applied to the search itself.

"For relatively small MIP problem sizes … it is conceivable (and
potentially more efficient) to solve multiple nodes at a time" — this
driver does exactly that: it pops up to ``batch_size`` open nodes per
round, solves all their LP relaxations together, and charges the device
one *batched* kernel sequence per round (the MAGMA-style batch routine
of §4.3) instead of one small kernel stream per node.

Numerics stay exact (each node's LP is solved precisely); only the cost
model reflects the batching.  Search results match the serial solver's
optimum; the explored node count may differ slightly because a whole
round is launched before its results can prune each other — the real
trade-off a batched B&B accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import V100, DeviceSpec
from repro.errors import LPError
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_standard_form
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStats, MIPStatus
from repro.mip.tree import BBTree, BoundChange, NodeTag


@dataclass
class BatchedSolverOptions:
    """Configuration for the batched-node driver."""

    batch_size: int = 16
    node_limit: int = 200_000
    mip_gap: float = 1e-6
    simplex: SimplexOptions = None
    warm_start: bool = True

    def __post_init__(self):
        if self.simplex is None:
            self.simplex = SimplexOptions()


class BatchedNodeSolver:
    """Branch-and-bound evaluating up to K node LPs per device round."""

    def __init__(
        self,
        problem: MIPProblem,
        options: Optional[BatchedSolverOptions] = None,
        spec: DeviceSpec = V100,
        device: Optional[Device] = None,
    ):
        self.problem = problem
        self.options = options or BatchedSolverOptions()
        # Callers (e.g. the serving layer's worker pool) may supply the
        # device so several solves share one clock and metrics stream.
        self.device = device if device is not None else Device(spec)
        self.stats = MIPStats()
        self.rounds = 0
        self._tol = DEFAULT_CONFIG.tolerances

    # -- device accounting ------------------------------------------------------

    def _charge_round(self, k: int, m: int, n: int, iterations: int) -> None:
        """One batched kernel sequence for k node LPs in lockstep."""
        self.device._charge(K.batched_getrf_kernel(k, m), None)
        for _ in range(max(1, iterations)):
            self.device._charge(K.batched_trsv_kernel(k, m), None)
            self.device._charge(K.batched_trsv_kernel(k, m), None)
            self.device._charge(K.batched_gemm_kernel(k, 1, n, m), None)

    # -- search -------------------------------------------------------------------

    def solve(self) -> MIPResult:
        """Run the batched search to completion or the node limit."""
        problem = self.problem
        options = self.options
        tree = BBTree(problem.relaxation())
        sf_root = tree.node_problem(0).to_standard_form()
        if self.device.spec.is_accelerator:
            self.device.upload(sf_root.a)  # resident matrix, once

        incumbent_obj = -np.inf
        incumbent_x: Optional[np.ndarray] = None
        # Open pool: (neg bound, node_id) sorted per round (best-first).
        pool: List[Tuple[float, int]] = [(-np.inf, 0)]

        while pool and self.stats.nodes_processed < options.node_limit:
            pool.sort(key=lambda t: t[0])
            take = min(options.batch_size, len(pool))
            batch, pool = pool[:take], pool[take:]

            # Pre-prune against the current incumbent.
            live: List[int] = []
            for neg_bound, node_id in batch:
                node = tree.node(node_id)
                if self._dominated(-neg_bound, incumbent_obj):
                    node.tag = NodeTag.PRUNED
                    node.lp_bound = -neg_bound
                else:
                    live.append(node_id)
            if not live:
                continue

            results: List[Tuple[int, LPResult, object]] = []
            max_iters = 0
            m = n = 0
            for node_id in live:
                node = tree.node(node_id)
                sf = tree.node_problem(node_id).to_standard_form()
                m, n = sf.m, sf.n
                res = self._solve_node(sf, tree, node)
                max_iters = max(max_iters, res.iterations)
                results.append((node_id, res, sf))
            self._charge_round(len(live), m, n, max_iters)
            self.rounds += 1

            for node_id, res, sf in results:
                node = tree.node(node_id)
                self.stats.nodes_processed += 1
                self.stats.lp_iterations += res.iterations
                if res.status is LPStatus.INFEASIBLE:
                    node.tag = NodeTag.INFEASIBLE
                    continue
                if res.status is not LPStatus.OPTIMAL:
                    node.tag = NodeTag.PRUNED  # conservative close-out
                    continue
                node.lp_bound = res.objective
                node.warm_basis = res.basis
                if self._dominated(res.objective, incumbent_obj):
                    node.tag = NodeTag.PRUNED
                    continue
                x = sf.recover_x(res.x_standard)
                fractional = problem.fractional_integers(x)
                if fractional.size == 0:
                    node.tag = NodeTag.FEASIBLE
                    obj = problem.objective(x)
                    if obj > incumbent_obj:
                        incumbent_obj, incumbent_x = obj, x
                        self.stats.incumbent_history.append(
                            (self.stats.nodes_processed, obj)
                        )
                    continue
                # Branch most-fractional.
                frac_vals = x[fractional] - np.floor(x[fractional])
                var = int(fractional[np.argmin(np.abs(frac_vals - 0.5))])
                value = float(x[var])
                node.tag = NodeTag.BRANCHED
                node.branch_var = var
                down = tree.add_child(
                    node_id,
                    BoundChange(var=var, kind="ub", value=float(np.floor(value)), parent_value=value),
                )
                up = tree.add_child(
                    node_id,
                    BoundChange(var=var, kind="lb", value=float(np.ceil(value)), parent_value=value),
                )
                for child in (down, up):
                    child.inherited_bound = node.lp_bound
                    pool.append((-node.lp_bound, child.node_id))

        self.device.synchronize()

        open_bounds = [-b for b, _ in pool]
        if pool and self.stats.nodes_processed >= options.node_limit:
            status = MIPStatus.NODE_LIMIT
            best_bound = max([incumbent_obj] + open_bounds)
        elif incumbent_x is None:
            status = MIPStatus.INFEASIBLE
            best_bound = -np.inf
        else:
            status = MIPStatus.OPTIMAL
            best_bound = incumbent_obj
        return MIPResult(
            status=status,
            objective=incumbent_obj if incumbent_x is not None else np.nan,
            x=incumbent_x,
            best_bound=best_bound,
            stats=self.stats,
        )

    # -- helpers ---------------------------------------------------------------------

    def _solve_node(self, sf, tree: BBTree, node) -> LPResult:
        warm = None
        if self.options.warm_start and node.parent_id is not None:
            warm = tree.node(node.parent_id).warm_basis
        if warm is not None:
            try:
                res = dual_simplex_resolve(sf, warm, options=self.options.simplex)
                self.stats.warm_starts += 1
                return res
            except LPError:
                pass
        self.stats.cold_starts += 1
        return solve_standard_form(sf, options=self.options.simplex)

    def _dominated(self, bound: float, incumbent: float) -> bool:
        if not np.isfinite(bound):
            return False
        threshold = incumbent + max(
            self._tol.mip_gap_abs, self.options.mip_gap * abs(incumbent)
        )
        return bound <= threshold
