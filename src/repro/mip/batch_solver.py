"""Batched-node branch-and-bound: §5.5 applied to the search itself.

"For relatively small MIP problem sizes … it is conceivable (and
potentially more efficient) to solve multiple nodes at a time" — this
driver does exactly that: it pops up to ``batch_size`` open nodes per
round, solves all their LP relaxations together, and charges the device
one *batched* kernel sequence per round (the MAGMA-style batch routine
of §4.3) instead of one small kernel stream per node.

Numerics stay exact (each node's LP is solved precisely); only the cost
model reflects the batching.  Search results match the serial solver's
optimum; the explored node count may differ slightly because a whole
round is launched before its results can prune each other — the real
trade-off a batched B&B accepts.

With ``lp_engine="pdhg"`` the round instead advances all live node LPs
in one lockstep first-order batch (:mod:`repro.lp.pdhg_batch`) — two
fused GEMMs per sweep for the whole frontier.  Bounds are then
tolerance-padded (:meth:`repro.lp.pdhg.PDHGResult.upper_bound`) so
pruning stays safe, and any member short of eps-KKT OPTIMAL re-solves
through the exact simplex path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import V100, DeviceSpec
from repro.errors import ReproError
from repro.guard import budget as guard_budget
from repro.lp.pdhg import PDHGOptions
from repro.lp.pdhg_batch import batch_compatible, solve_lp_pdhg_batch_on_device
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_standard_form
from repro.lp.warm import (
    WarmStartState,
    WarmStateCache,
    state_from_result,
    warm_resolve,
)
from repro.mip.portfolio import PortfolioOptions, run_portfolio
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStats, MIPStatus
from repro.mip.tree import BBTree, BoundChange, NodeTag


@dataclass
class BatchedSolverOptions:
    """Configuration for the batched-node driver."""

    batch_size: int = 16
    node_limit: int = 200_000
    mip_gap: float = 1e-6
    simplex: SimplexOptions = None
    warm_start: bool = True
    #: Node relaxation engine: "simplex" (exact, batched kernel charge)
    #: or "pdhg" (lockstep batched first-order sweeps — the whole round
    #: is two fused GEMMs per iteration; non-OPTIMAL members fall back
    #: to exact simplex so statuses stay vertex-grade).
    lp_engine: str = "simplex"
    pdhg: PDHGOptions = None
    #: Run the batched primal-heuristic portfolio
    #: (:mod:`repro.mip.portfolio`) on the device before the first
    #: round; its best certified incumbent pre-prunes the frontier.
    portfolio: Optional[PortfolioOptions] = None

    def __post_init__(self):
        if self.simplex is None:
            self.simplex = SimplexOptions()
        if self.pdhg is None:
            self.pdhg = PDHGOptions()
        if self.batch_size < 1:
            raise ReproError(
                f"batch_size must be at least 1, got {self.batch_size!r}"
            )
        if self.node_limit <= 0:
            raise ReproError(
                f"node_limit must be positive, got {self.node_limit!r}"
            )
        if not self.mip_gap >= 0:
            raise ReproError(
                f"mip_gap must be non-negative, got {self.mip_gap!r}"
            )
        if self.lp_engine not in ("simplex", "pdhg"):
            raise ReproError(
                f"lp_engine must be 'simplex' or 'pdhg', got {self.lp_engine!r}"
            )


@dataclass
class _NodeOutcome:
    """One node relaxation, normalized across LP engines.

    ``bound`` is what the search prunes with: the exact LP objective for
    simplex nodes, the tolerance-padded :meth:`PDHGResult.upper_bound`
    for first-order nodes (so an eps-low value can never cut off the
    true optimum).  ``x`` is always in the original variable space.
    """

    status: LPStatus
    bound: float
    x: Optional[np.ndarray]
    iterations: int
    basis: Optional[np.ndarray] = None


class BatchedNodeSolver:
    """Branch-and-bound evaluating up to K node LPs per device round."""

    def __init__(
        self,
        problem: MIPProblem,
        options: Optional[BatchedSolverOptions] = None,
        spec: DeviceSpec = V100,
        device: Optional[Device] = None,
    ):
        self.problem = problem
        self.options = options or BatchedSolverOptions()
        # Callers (e.g. the serving layer's worker pool) may supply the
        # device so several solves share one clock and metrics stream.
        self.device = device if device is not None else Device(spec)
        self.stats = MIPStats()
        self.rounds = 0
        #: Result of the pre-search portfolio phase (None = not run).
        self.portfolio_result = None
        self._tol = DEFAULT_CONFIG.tolerances
        #: Bounded per-node warm states (basis + resident factorization).
        self._warm_states = WarmStateCache(capacity=64)

    # -- device accounting ------------------------------------------------------

    def _charge_round(self, k: int, m: int, n: int, iterations: int) -> None:
        """One batched kernel sequence for k node LPs in lockstep."""
        self.device._charge(K.batched_getrf_kernel(k, m), None)
        for _ in range(max(1, iterations)):
            self.device._charge(K.batched_trsv_kernel(k, m), None)
            self.device._charge(K.batched_trsv_kernel(k, m), None)
            self.device._charge(K.batched_gemm_kernel(k, 1, n, m), None)

    # -- search -------------------------------------------------------------------

    def solve(self) -> MIPResult:
        """Run the batched search to completion or the node limit."""
        problem = self.problem
        options = self.options
        tree = BBTree(problem.relaxation())
        sf_root = tree.node_problem(0).to_standard_form()
        if self.device.spec.is_accelerator:
            self.device.upload(sf_root.a)  # resident matrix, once

        incumbent_obj = -np.inf
        incumbent_x: Optional[np.ndarray] = None

        def note_first_incumbent() -> None:
            if self.stats.first_incumbent_nodes < 0:
                self.stats.first_incumbent_nodes = self.stats.nodes_processed
                self.stats.first_incumbent_seconds = self.device.clock.now

        # Portfolio phase: batched primal heuristics on the same device
        # seed the incumbent before the first frontier round.
        if options.portfolio is not None:
            pr = run_portfolio(problem, options.portfolio, device=self.device)
            self.portfolio_result = pr
            self.stats.portfolio_restarts = pr.stats.get("restarts", 0)
            self.stats.portfolio_sweeps = pr.stats.get("fj_sweeps", 0)
            self.stats.portfolio_incumbents = len(pr.incumbents)
            self.stats.portfolio_seconds = pr.elapsed_seconds
            self.stats.lp_iterations += pr.lp_iterations
            if pr.best is not None:
                incumbent_obj, incumbent_x = pr.best.objective, pr.best.x.copy()
                self.stats.heuristic_solutions += 1
                note_first_incumbent()
                self.stats.incumbent_history.append((0, incumbent_obj))

        # Open pool: (neg bound, node_id) sorted per round (best-first).
        pool: List[Tuple[float, int]] = [(-np.inf, 0)]

        guard_ctx = guard_budget.active()
        stopped: Optional[MIPStatus] = None
        while pool and self.stats.nodes_processed < options.node_limit:
            if guard_ctx is not None and guard_ctx.deadline_hit():
                stopped = MIPStatus.TIME_LIMIT
                break
            pool.sort(key=lambda t: t[0])
            take = min(options.batch_size, len(pool))
            batch, pool = pool[:take], pool[take:]

            # Pre-prune against the current incumbent.
            live: List[int] = []
            for neg_bound, node_id in batch:
                node = tree.node(node_id)
                if self._dominated(-neg_bound, incumbent_obj):
                    node.tag = NodeTag.PRUNED
                    node.lp_bound = -neg_bound
                else:
                    live.append(node_id)
            if not live:
                continue

            outcomes = self._solve_round(live, tree)
            self.rounds += 1

            for node_id, out in zip(live, outcomes):
                node = tree.node(node_id)
                self.stats.nodes_processed += 1
                self.stats.lp_iterations += out.iterations
                if out.status is LPStatus.INFEASIBLE:
                    node.tag = NodeTag.INFEASIBLE
                    continue
                if out.status in (
                    LPStatus.TIME_LIMIT,
                    LPStatus.ITERATION_LIMIT,
                    LPStatus.NUMERICAL,
                ):
                    # Unresolved node: requeue it (keeps the final dual
                    # bound sound) and stop with an anytime status.
                    pool.append((-node.inherited_bound, node_id))
                    stopped = (
                        MIPStatus.TIME_LIMIT
                        if out.status is LPStatus.TIME_LIMIT
                        else MIPStatus.ITERATION_LIMIT
                    )
                    continue
                if out.status is not LPStatus.OPTIMAL:
                    node.tag = NodeTag.PRUNED  # conservative close-out
                    continue
                node.lp_bound = out.bound
                node.warm_basis = out.basis
                if self._dominated(out.bound, incumbent_obj):
                    node.tag = NodeTag.PRUNED
                    continue
                x = out.x
                fractional = problem.fractional_integers(x)
                if fractional.size == 0:
                    node.tag = NodeTag.FEASIBLE
                    obj = problem.objective(x)
                    if obj > incumbent_obj:
                        incumbent_obj, incumbent_x = obj, x
                        note_first_incumbent()
                        self.stats.incumbent_history.append(
                            (self.stats.nodes_processed, obj)
                        )
                    continue
                # Branch most-fractional.
                frac_vals = x[fractional] - np.floor(x[fractional])
                var = int(fractional[np.argmin(np.abs(frac_vals - 0.5))])
                value = float(x[var])
                node.tag = NodeTag.BRANCHED
                node.branch_var = var
                down = tree.add_child(
                    node_id,
                    BoundChange(var=var, kind="ub", value=float(np.floor(value)), parent_value=value),
                )
                up = tree.add_child(
                    node_id,
                    BoundChange(var=var, kind="lb", value=float(np.ceil(value)), parent_value=value),
                )
                for child in (down, up):
                    child.inherited_bound = node.lp_bound
                    pool.append((-node.lp_bound, child.node_id))
            if stopped is not None:
                break

        self.device.synchronize()

        open_bounds = [-b for b, _ in pool]
        if stopped is not None and pool:
            status = stopped
            best_bound = max([incumbent_obj] + open_bounds)
        elif pool and self.stats.nodes_processed >= options.node_limit:
            status = MIPStatus.NODE_LIMIT
            best_bound = max([incumbent_obj] + open_bounds)
        elif incumbent_x is None:
            status = MIPStatus.INFEASIBLE
            best_bound = -np.inf
        else:
            status = MIPStatus.OPTIMAL
            best_bound = incumbent_obj
        return MIPResult(
            status=status,
            objective=incumbent_obj if incumbent_x is not None else np.nan,
            x=incumbent_x,
            best_bound=best_bound,
            stats=self.stats,
        )

    # -- helpers ---------------------------------------------------------------------

    def _solve_round(self, live: List[int], tree: BBTree) -> List[_NodeOutcome]:
        """Solve one round of live nodes with the configured LP engine."""
        if self.options.lp_engine == "pdhg":
            outcomes = self._solve_round_pdhg(live, tree)
            if outcomes is not None:
                return outcomes
        return self._solve_round_simplex(live, tree)

    def _solve_round_simplex(
        self, live: List[int], tree: BBTree
    ) -> List[_NodeOutcome]:
        outcomes: List[_NodeOutcome] = []
        max_iters = 0
        m = n = 0
        for node_id in live:
            node = tree.node(node_id)
            sf = tree.node_problem(node_id).to_standard_form()
            m, n = sf.m, sf.n
            res = self._solve_node(sf, tree, node)
            max_iters = max(max_iters, res.iterations)
            x = (
                sf.recover_x(res.x_standard)
                if res.status is LPStatus.OPTIMAL
                else None
            )
            outcomes.append(
                _NodeOutcome(
                    status=res.status,
                    bound=res.objective,
                    x=x,
                    iterations=res.iterations,
                    basis=res.basis,
                )
            )
        self._charge_round(len(live), m, n, max_iters)
        return outcomes

    def _solve_round_pdhg(
        self, live: List[int], tree: BBTree
    ) -> Optional[List[_NodeOutcome]]:
        """One lockstep batched-PDHG round; None defers to simplex.

        Sibling node LPs differ only in variable bounds, so the batch is
        (in practice always) shape-compatible and shares K — the whole
        round's matvecs fuse into two GEMMs per sweep.  Members that end
        anywhere short of eps-KKT OPTIMAL re-solve through the exact
        simplex path, keeping every status vertex-grade.
        """
        lps = [tree.node_problem(node_id) for node_id in live]
        if not batch_compatible(lps):
            return None
        batch = solve_lp_pdhg_batch_on_device(
            lps, self.device, options=self.options.pdhg
        )
        self.device.metrics.inc("pdhg.batch_rounds")
        outcomes: List[Optional[_NodeOutcome]] = []
        fallback: List[int] = []
        for i, status in enumerate(batch.statuses):
            if status is LPStatus.OPTIMAL:
                self.device.metrics.inc("pdhg.node_solves")
                outcomes.append(
                    _NodeOutcome(
                        status=LPStatus.OPTIMAL,
                        bound=float(batch.bounds[i]),
                        # Box feasibility is only eps-accurate; clamp so
                        # branching on x can't step outside node bounds.
                        x=np.clip(batch.x[i], lps[i].lb, lps[i].ub),
                        iterations=int(batch.member_iterations[i]),
                    )
                )
            else:
                outcomes.append(None)
                fallback.append(i)
        if fallback:
            self.device.metrics.inc("pdhg.fallbacks", len(fallback))
            max_iters = 0
            m = n = 0
            for i in fallback:
                node = tree.node(live[i])
                sf = lps[i].to_standard_form()
                m, n = sf.m, sf.n
                res = self._solve_node(sf, tree, node)
                max_iters = max(max_iters, res.iterations)
                x = (
                    sf.recover_x(res.x_standard)
                    if res.status is LPStatus.OPTIMAL
                    else None
                )
                outcomes[i] = _NodeOutcome(
                    status=res.status,
                    bound=res.objective,
                    x=x,
                    iterations=res.iterations,
                    basis=res.basis,
                )
            self._charge_round(len(fallback), m, n, max_iters)
        return outcomes

    def _solve_node(self, sf, tree: BBTree, node) -> LPResult:
        warm: Optional[WarmStartState] = None
        if self.options.warm_start and node.parent_id is not None:
            warm = self._warm_states.get(node.parent_id)
            if warm is None:
                basis = tree.node(node.parent_id).warm_basis
                if basis is not None:
                    warm = WarmStartState(
                        basis=np.asarray(basis, dtype=np.int64),
                        shape=(sf.m, sf.n),
                        pfi=None,
                    )
        if warm is not None:
            attempt = warm_resolve(sf, warm, options=self.options.simplex)
            if attempt is not None:
                if attempt.audit_failed:
                    self.stats.warm_audit_failures += 1
                else:
                    self.stats.warm_starts += 1
                    self.stats.warm_pivots += attempt.result.iterations
                    if attempt.reused_factors:
                        self.stats.warm_factor_reuses += 1
                    if attempt.state is not None:
                        self._warm_states.put(node.node_id, attempt.state)
                    return attempt.result
        self.stats.cold_starts += 1
        res = solve_standard_form(sf, options=self.options.simplex)
        self.stats.cold_pivots += res.iterations
        if res.status in (LPStatus.ITERATION_LIMIT, LPStatus.NUMERICAL):
            from repro.guard.escalate import escalate_lp

            outcome = escalate_lp(
                sf, options=self.options.simplex, first=res, seed=node.node_id
            )
            if outcome.escalated:
                self.stats.escalations += 1
            res = outcome.result
        if self.options.warm_start:
            state = state_from_result(sf, res)
            if state is not None:
                self._warm_states.put(node.node_id, state)
        return res

    def _dominated(self, bound: float, incumbent: float) -> bool:
        if not np.isfinite(bound):
            return False
        threshold = incumbent + max(
            self._tol.mip_gap_abs, self.options.mip_gap * abs(incumbent)
        )
        return bound <= threshold
