"""E16 — time-to-first-incumbent: the heuristic portfolio vs pure B&B.

The portfolio (:mod:`repro.mip.portfolio`) exists to replace in-tree
primal heuristics with a massively parallel device phase, so the honest
baseline is **pure branch and bound** — ``use_rounding_heuristic=False``,
branching alone, the first incumbent being the first integral leaf the
tree reaches.  Against that baseline the benchmark measures, in
simulated device seconds:

1. **Time to first incumbent.**  The corpus is pinned to the regime
   primal-heuristic portfolios are built for: instances whose pure-B&B
   first incumbent lands hundreds of nodes deep (strong-correlation
   knapsacks and a dense random MIP).  The headline gate is the
   geometric-mean speedup of the portfolio's first certified incumbent
   over the pure-B&B first incumbent (≥ 5x is the repeatable-result
   gate; the pinned corpus lands well above it).

2. **Gap at handover.**  The certified relative gap the portfolio holds
   when ``heuristic_first`` hands its incumbent to branch and bound —
   the quality end of the quality-vs-latency trade.

3. **Robustness rows.**  The MIP members of the pathological corpus run
   through ``heuristic_only``; they must come back as a certified answer
   or a clean ``no_incumbent`` — never a crash.

Every gated number is cross-validated before it is believed: the
portfolio incumbent is re-checked against the exact-rational feasibility
certificate, the ``heuristic_first`` run must seed branch and bound
before node one (``first_incumbent_nodes == 0``), and when both sides
finish exactly their objectives must agree.

The payload follows the :mod:`repro.obs.bench` schema; experiment E16's
artifact is ``BENCH_portfolio.json`` at the repo root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.check import certify_mip_solution
from repro.device.gpu import Device
from repro.device.spec import V100
from repro.errors import ReproError
from repro.mip.portfolio import PortfolioOptions, run_portfolio
from repro.mip.problem import MIPProblem
from repro.mip.solver import SolverOptions
from repro.obs.bench import bench_payload
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip


def default_corpus() -> List[Tuple[MIPProblem, bool]]:
    """The E16 corpus: ``(problem, gated)`` pairs.

    Gated instances are pinned to the late-first-incumbent regime —
    pure B&B needs hundreds of nodes before its first integral leaf,
    which is precisely when a parallel primal phase pays for itself.
    The ungated rows keep the easy regime visible (where branching
    finds an incumbent almost immediately and the portfolio merely has
    to not be embarrassing) without letting it wash out the gate.
    """
    corpus: List[Tuple[MIPProblem, bool]] = []
    for n, seed in ((36, 2), (40, 3), (40, 5)):
        problem = generate_knapsack(n, seed=seed, correlation="strong")
        problem.name = f"knap-strong-{n}-s{seed}"
        corpus.append((problem, True))
    rand = generate_random_mip(16, 10, seed=4, integer_fraction=1.0)
    rand.name = "rand-16x10-s4"
    corpus.append((rand, True))
    easy = generate_knapsack(30, seed=2, correlation="strong")
    easy.name = "knap-strong-30-s2"
    corpus.append((easy, False))
    return corpus


def _pathological_mips() -> List[MIPProblem]:
    """MIP members of the pinned pathological corpus (robustness rows)."""
    from repro.problems.pathological import case_by_name

    problems = []
    for name in ("mip-wide-range", "mip-deadline"):
        problem = case_by_name(name).build()
        problem.name = name
        problems.append(problem)
    return problems


def _first_incumbent_row(
    problem: MIPProblem,
    gated: bool,
    node_limit: int,
    portfolio: PortfolioOptions,
) -> Dict[str, object]:
    """One corpus instance: pure B&B vs portfolio, cross-validated."""
    from repro.api import SolveOptions, solve

    exact = solve(
        problem,
        SolveOptions(
            strategy="hybrid",
            solver=SolverOptions(
                node_limit=node_limit, use_rounding_heuristic=False
            ),
        ),
    )
    stats = exact.result.stats
    exact_first = stats.first_incumbent_seconds

    # The portfolio phase on its own device: same options heuristic_first
    # injects, so the incumbent trail is identical by the determinism
    # contract (tests/mip/test_portfolio.py pins it).
    device = Device(V100)
    phase = run_portfolio(problem, portfolio, device=device)
    if phase.best is not None:
        cert = certify_mip_solution(
            problem, phase.best.x, objective=phase.best.objective
        )
        if not cert.ok:
            raise ReproError(
                f"E16 cross-validation: {problem.name} portfolio incumbent "
                f"failed the exact certificate: {cert.reason}"
            )

    hf = solve(
        problem,
        SolveOptions(
            strategy="portfolio",
            mode="heuristic_first",
            solver=SolverOptions(node_limit=node_limit),
        ),
    )
    if phase.best is not None:
        if hf.result.stats.first_incumbent_nodes != 0:
            raise ReproError(
                f"E16 cross-validation: {problem.name} heuristic_first "
                "did not seed branch and bound before node one"
            )
        if hf.result.stats.portfolio_incumbents < 1:
            raise ReproError(
                f"E16 cross-validation: {problem.name} heuristic_first "
                "reported no portfolio incumbents"
            )
    if exact.status == "optimal" and hf.status == "optimal":
        scale = 1.0 + max(abs(exact.objective), abs(hf.objective))
        if abs(exact.objective - hf.objective) > 1e-6 * scale:
            raise ReproError(
                f"E16 cross-validation: {problem.name} objectives differ "
                f"(exact {exact.objective!r} vs heuristic_first "
                f"{hf.objective!r})"
            )

    portfolio_first = phase.first_incumbent_seconds
    speedup = None
    if np.isfinite(exact_first) and np.isfinite(portfolio_first):
        speedup = round(float(exact_first) / float(portfolio_first), 4)
    finite = lambda v: float(v) if np.isfinite(v) else None
    return {
        "instance": problem.name,
        "variables": problem.n,
        "gated": gated,
        "exact_status": exact.status,
        "exact_nodes": stats.nodes_processed,
        "exact_first_incumbent_node": stats.first_incumbent_nodes,
        "exact_first_incumbent_seconds": finite(exact_first),
        "portfolio_first_incumbent_seconds": finite(portfolio_first),
        "portfolio_incumbents": len(phase.incumbents),
        "portfolio_best_heuristic": (
            None if phase.best is None else phase.best.heuristic
        ),
        "gap_at_handover": finite(phase.gap),
        "heuristic_first_status": hf.status,
        "heuristic_first_nodes": hf.result.stats.nodes_processed,
        "speedup": speedup,
        "certified": phase.best is not None,
    }


def _robustness_row(problem: MIPProblem) -> Dict[str, object]:
    """A pathological MIP through ``heuristic_only``: answer or clean miss."""
    from repro.api import SolveOptions, solve

    report = solve(problem, SolveOptions(mode="heuristic_only"))
    if report.status not in ("heuristic", "no_incumbent", "infeasible"):
        raise ReproError(
            f"E16 robustness: {problem.name} heuristic_only returned "
            f"unexpected status {report.status!r}"
        )
    if report.status == "heuristic":
        cert = certify_mip_solution(problem, report.x, objective=report.objective)
        if not cert.ok:
            raise ReproError(
                f"E16 robustness: {problem.name} heuristic answer failed "
                f"the exact certificate: {cert.reason}"
            )
    finite = lambda v: float(v) if v is not None and np.isfinite(v) else None
    return {
        "instance": problem.name,
        "variables": problem.n,
        "gated": False,
        "robustness": True,
        "heuristic_status": report.status,
        "objective": finite(report.objective),
        "dual_bound": finite(report.best_bound),
        "gap_at_handover": finite(report.gap),
        "certified": report.status == "heuristic",
    }


def portfolio_bench_payload(
    corpus: Optional[Sequence[Tuple[MIPProblem, bool]]] = None,
    node_limit: int = 2000,
    portfolio: Optional[PortfolioOptions] = None,
    include_pathological: bool = True,
) -> Dict[str, object]:
    """Assemble the E16 artifact payload (schema of :mod:`repro.obs.bench`).

    ``rows`` carries one first-incumbent row per corpus instance plus
    one robustness row per pathological MIP; ``summary`` holds the
    headline geometric-mean speedup over the gated instances, the
    worst gated speedup, and the worst certified gap at handover.
    """
    if corpus is None:
        corpus = default_corpus()
    if portfolio is None:
        portfolio = PortfolioOptions()

    rows = [
        _first_incumbent_row(problem, gated, node_limit, portfolio)
        for problem, gated in corpus
    ]
    if include_pathological:
        rows.extend(_robustness_row(p) for p in _pathological_mips())

    gated_speedups = [
        r["speedup"] for r in rows if r.get("gated") and r["speedup"] is not None
    ]
    if not gated_speedups:
        raise ReproError(
            "E16: no gated instance produced a finite first-incumbent "
            "speedup — both sides must find an incumbent"
        )
    geomean = float(np.exp(np.mean(np.log(gated_speedups))))
    gaps = [
        r["gap_at_handover"]
        for r in rows
        if r.get("certified") and r["gap_at_handover"] is not None
    ]
    summary = {
        "instances": len(rows),
        "gated_instances": len(gated_speedups),
        "geomean_speedup": round(geomean, 4),
        "min_gated_speedup": round(min(gated_speedups), 4),
        "max_gap_at_handover": round(max(gaps), 6) if gaps else None,
        "all_certified": all(
            r["certified"] for r in rows if not r.get("robustness")
        ),
    }
    return bench_payload(
        "e16_portfolio",
        rows=rows,
        params={
            "node_limit": node_limit,
            "baseline": "pure branch and bound (use_rounding_heuristic=False)",
            "restarts": portfolio.restarts,
            "n_jobs": portfolio.n_jobs,
            "seed": portfolio.seed,
        },
        summary=summary,
    )
