"""Integer-Vector-Matrix (IVM) branch-and-bound for permutation problems.

Paper §2.3: "Gmys et al. presented a pure GPU implementation of
branch-and-bound … The key principle of their approach is the use of an
Integer Vector Matrix (IVM) representation of the branch-and-bound
problem tree rather than the linked list used in previous
implementations.  The IVM representation is well-suited for the GPU
programming due to its memory structure."

For an N-element permutation tree, IVM is:

- **Integer** — the current depth ``d``;
- **Vector** — position vector ``I`` (which child is selected per row);
- **Matrix** — N×N job matrix ``M`` whose row ``d`` lists the jobs still
  available at depth ``d``.

The whole DFS state is a *flat, constant-size* block of (N² + N + 1)
integers — no pointers, no allocation — which is why it maps onto GPU
memory so well.  Depth-first traversal works like an odometer:
``descend`` expands the selected cell, ``advance`` moves to the next
sibling, carrying upward when a row is exhausted.

Both the IVM engine and a conventional linked-node engine are provided
with identical bounding interfaces, so experiment E11 can verify equal
search results while comparing memory footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MIPError

#: Lower bound for the sub-problem rooted at a prefix (minimization);
#: called as bound_fn(prefix) where prefix is a tuple of selected items.
BoundFn = Callable[[Sequence[int]], float]
#: Exact cost of a complete permutation.
LeafFn = Callable[[Sequence[int]], float]


class IVM:
    """Flat IVM state for an N-element permutation tree."""

    def __init__(self, n: int):
        if n < 1:
            raise MIPError(f"IVM needs n >= 1, got {n}")
        self.n = n
        #: Current depth (the paper's Integer).
        self.depth = 0
        #: Position vector (the paper's Vector).
        self.position = np.zeros(n, dtype=np.int64)
        #: Job matrix (the paper's Matrix); row d has n-d valid entries.
        self.matrix = np.zeros((n, n), dtype=np.int64)
        self.matrix[0] = np.arange(n)
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """True when the DFS has visited every unpruned leaf."""
        return self._exhausted

    def memory_bytes(self) -> int:
        """Footprint of the flat state (the E11 metric)."""
        return self.matrix.nbytes + self.position.nbytes + 8

    def row_length(self, depth: int) -> int:
        """Valid entries in the matrix row at ``depth``."""
        return self.n - depth

    def current_item(self) -> int:
        """Item selected at the current depth."""
        return int(self.matrix[self.depth, self.position[self.depth]])

    def prefix(self) -> Tuple[int, ...]:
        """Selected items along the current path, including this depth."""
        return tuple(
            int(self.matrix[d, self.position[d]]) for d in range(self.depth + 1)
        )

    @property
    def at_leaf_row(self) -> bool:
        """True when the current row is the last (a full permutation)."""
        return self.depth == self.n - 1

    def descend(self) -> None:
        """Expand the selected cell: build the next row minus that item."""
        if self.at_leaf_row:
            raise MIPError("descend called on a leaf row")
        d = self.depth
        selected = self.position[d]
        row = self.matrix[d, : self.n - d]
        nxt = np.concatenate([row[:selected], row[selected + 1 :]])
        self.matrix[d + 1, : nxt.size] = nxt
        self.depth = d + 1
        self.position[d + 1] = 0

    def advance(self) -> None:
        """Move to the next sibling, carrying up when rows exhaust."""
        while True:
            self.position[self.depth] += 1
            if self.position[self.depth] < self.row_length(self.depth):
                return
            if self.depth == 0:
                self._exhausted = True
                return
            self.depth -= 1


@dataclass
class PermutationBBResult:
    """Outcome of a permutation branch-and-bound (minimization)."""

    best_cost: float
    best_permutation: Optional[Tuple[int, ...]]
    nodes_explored: int
    leaves_evaluated: int
    pruned: int
    #: Peak bytes used by the tree representation.
    tree_memory_bytes: int


def ivm_branch_and_bound(
    n: int,
    bound_fn: BoundFn,
    leaf_fn: LeafFn,
    initial_best: float = np.inf,
    node_limit: int = 50_000_000,
) -> PermutationBBResult:
    """Depth-first permutation B&B over the flat IVM state."""
    ivm = IVM(n)
    best_cost = float(initial_best)
    best_perm: Optional[Tuple[int, ...]] = None
    nodes = leaves = pruned = 0

    while not ivm.exhausted and nodes < node_limit:
        nodes += 1
        prefix = ivm.prefix()
        if ivm.at_leaf_row:
            leaves += 1
            cost = leaf_fn(prefix)
            if cost < best_cost:
                best_cost = cost
                best_perm = prefix
            ivm.advance()
            continue
        if bound_fn(prefix) >= best_cost:
            pruned += 1
            ivm.advance()
            continue
        ivm.descend()

    return PermutationBBResult(
        best_cost=best_cost,
        best_permutation=best_perm,
        nodes_explored=nodes,
        leaves_evaluated=leaves,
        pruned=pruned,
        tree_memory_bytes=ivm.memory_bytes(),
    )


@dataclass
class _LinkedNode:
    """Conventional pointer-based tree node (the IVM comparison point)."""

    prefix: Tuple[int, ...]
    remaining: Tuple[int, ...]

    def nbytes(self) -> int:
        # Object header + two tuples of ints: the pointer-chasing layout
        # whose footprint and irregularity IVM eliminates.
        return 56 + 8 * (len(self.prefix) + len(self.remaining)) + 112


def linked_list_branch_and_bound(
    n: int,
    bound_fn: BoundFn,
    leaf_fn: LeafFn,
    initial_best: float = np.inf,
    node_limit: int = 50_000_000,
) -> PermutationBBResult:
    """The same DFS with an explicit linked-node stack."""
    root = _LinkedNode(prefix=(), remaining=tuple(range(n)))
    stack: List[_LinkedNode] = [
        _LinkedNode(prefix=(item,), remaining=tuple(x for x in root.remaining if x != item))
        for item in reversed(root.remaining)
    ]
    best_cost = float(initial_best)
    best_perm: Optional[Tuple[int, ...]] = None
    nodes = leaves = pruned = 0
    peak_bytes = sum(node.nbytes() for node in stack)

    while stack and nodes < node_limit:
        node = stack.pop()
        nodes += 1
        if not node.remaining:
            leaves += 1
            cost = leaf_fn(node.prefix)
            if cost < best_cost:
                best_cost = cost
                best_perm = node.prefix
            continue
        if bound_fn(node.prefix) >= best_cost:
            pruned += 1
            continue
        for item in reversed(node.remaining):
            stack.append(
                _LinkedNode(
                    prefix=node.prefix + (item,),
                    remaining=tuple(x for x in node.remaining if x != item),
                )
            )
        peak_bytes = max(peak_bytes, sum(nd.nbytes() for nd in stack))

    return PermutationBBResult(
        best_cost=best_cost,
        best_permutation=best_perm,
        nodes_explored=nodes,
        leaves_evaluated=leaves,
        pruned=pruned,
        tree_memory_bytes=peak_bytes,
    )
