"""The branch-and-cut driver.

:class:`BranchAndBoundSolver` runs the search loop of paper §2.1 over the
:class:`repro.mip.tree.BBTree`, with every linear-algebra-heavy step
routed through an :class:`ExecutionEngine`:

- ``solve_relaxation`` — the node LP (warm dual-simplex restart from the
  parent basis when possible, else cold two-phase primal);
- ``resolve_after_cuts`` — re-optimization after appending cut rows;
- ``begin_node`` — called with the tree distance from the previously
  evaluated node, so device-backed engines can charge matrix re-uploads
  when the search jumps subtrees (paper §5.3).

The default engine computes everything host-side with no cost model;
:mod:`repro.strategies` subclasses it to realize the paper's four
parallel execution strategies with full device/transfer accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.config import DEFAULT_CONFIG, Config
from repro.errors import (
    LPError,
    MIPError,
    NumericalInstabilityError,
    ReproError,
    SolverCrashError,
)
from repro.faults.injector import active as fault_active
from repro.guard import budget as guard_budget
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.pdhg import NULL_PDHG_HOOK, PDHGCostHook, PDHGOptions, solve_standard_form_pdhg
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import NULL_HOOK, CostHook, SimplexOptions, solve_standard_form
from repro.lp.warm import WarmStartState, WarmStateCache, state_from_result, warm_resolve
from repro.mip.branching import BranchingRule, make_branching
from repro.mip.cuts.cover import cover_cuts
from repro.mip.cuts.gomory import gomory_mixed_integer_cuts
from repro.mip.cuts.mir import mir_cuts
from repro.mip.cuts.pool import CutPool
from repro.mip.node_selection import make_selector
from repro.mip.portfolio import (
    PortfolioOptions,
    PortfolioResult,
    round_to_feasible,
    run_portfolio,
)
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStats, MIPStatus
from repro.mip.tree import BBTree, BoundChange, NodeTag
from repro import obs


class ExecutionEngine:
    """LP backend + cost metering for the branch-and-cut loop.

    The default implementation is exact and free (no simulated costs);
    device-backed engines override the hooks to charge kernels and
    transfers.
    """

    #: Bound on the first-order warm-iterate cache: one (x, y) pair per
    #: standard-form shape, LRU-evicted so deep trees with many shapes
    #: (appended cut rows, flipped bound patterns) cannot grow it
    #: without limit.
    PDHG_WARM_CAPACITY = 32

    def __init__(
        self,
        simplex_options: Optional[SimplexOptions] = None,
        node_lp: str = "simplex",
        pdhg_options: Optional[PDHGOptions] = None,
    ):
        self.simplex_options = simplex_options or SimplexOptions()
        #: Node-relaxation engine: "simplex" (exact vertex solves) or
        #: "pdhg" (restarted first-order solves with tolerance-padded
        #: bounds; non-optimal PDHG outcomes fall back to simplex so
        #: INFEASIBLE/UNBOUNDED statuses stay exact).
        self.node_lp = node_lp
        self.pdhg_options = pdhg_options or PDHGOptions()
        #: (m, n) → (x, y) iterates for first-order warm starts (LRU).
        self._pdhg_warm: "OrderedDict" = OrderedDict()
        #: First-order work counters (exposed in engine reports).
        self.pdhg_stats = {"solves": 0, "fallbacks": 0, "iterations": 0, "restarts": 0}
        #: Telemetry of the most recent non-probe relaxation solve.
        self.last_warm_info = {
            "used": False,
            "reused_factors": False,
            "audit_failed": False,
        }
        self._last_warm_state: Optional[WarmStartState] = None

    def take_warm_state(self) -> Optional[WarmStartState]:
        """Pop the warm state left by the last OPTIMAL warm re-solve."""
        state, self._last_warm_state = self._last_warm_state, None
        return state

    # -- lifecycle hooks ------------------------------------------------------

    def begin_search(self, problem: MIPProblem, sf_root: StandardFormLP) -> None:
        """Called once before the first node."""

    def begin_node(self, node_id: int, tree_distance: Optional[int], matrix_bytes: int) -> None:
        """Called before each node; distance is from the previous node."""

    def end_search(self) -> None:
        """Called when the search loop exits."""

    # -- LP services ----------------------------------------------------------

    def solve_relaxation(
        self,
        sf: StandardFormLP,
        warm_basis: Optional[np.ndarray] = None,
        probe: bool = False,
    ) -> LPResult:
        """Solve a node relaxation, warm when a parent basis is usable."""
        if self.node_lp == "pdhg" and not probe:
            res = self._pdhg_relaxation(sf)
            if res is not None:
                return res
        return self._warm_or_cold(sf, warm_basis, probe)

    def _warm_or_cold(
        self,
        sf: StandardFormLP,
        warm_basis,
        probe: bool,
        hook: CostHook = NULL_HOOK,
    ) -> LPResult:
        """The shared warm-attempt / cold-fallback relaxation path.

        ``warm_basis`` may be a bare basis array (legacy) or a
        :class:`~repro.lp.warm.WarmStartState` carrying the parent's
        resident factorization.  Non-probe calls record telemetry in
        ``last_warm_info`` and leave the post-solve state for
        ``take_warm_state``; probe solves never touch either (a strong-
        branching probe must not leak its state into the node's).
        """
        info = {"used": False, "reused_factors": False, "audit_failed": False}
        if not probe:
            self.last_warm_info = info
            self._last_warm_state = None
        if warm_basis is not None:
            if isinstance(warm_basis, WarmStartState):
                warm = warm_basis
            else:
                warm = WarmStartState(
                    basis=np.asarray(warm_basis, dtype=np.int64),
                    shape=(sf.m, sf.n),
                    pfi=None,
                )
            outcome = warm_resolve(
                sf,
                warm,
                options=self.simplex_options,
                hook=hook,
                audit=not probe,
            )
            if outcome is not None:
                if outcome.audit_failed:
                    info["audit_failed"] = True
                else:
                    if not probe:
                        info["used"] = True
                        info["reused_factors"] = outcome.reused_factors
                        self._last_warm_state = outcome.state
                    return outcome.result
        options = self.simplex_options
        if probe:
            options = SimplexOptions(
                pricing=options.pricing,
                refactor_interval=options.refactor_interval,
                max_iterations=200,
                config=options.config,
            )
        return solve_standard_form(sf, options=options, hook=hook)

    def _pdhg_relaxation(
        self, sf: StandardFormLP, hook: PDHGCostHook = NULL_PDHG_HOOK
    ) -> Optional[LPResult]:
        """One first-order node solve; None tells the caller to use simplex.

        Policy (see ``docs/first_order_lp.md``): only an eps-KKT OPTIMAL
        outcome is trusted.  Its reported ``objective`` is replaced by the
        tolerance-padded upper bound (``PDHGResult.upper_bound`` plus the
        standard-form offset) so pruning against an incumbent can never
        cut off the true optimum; INFEASIBLE/UNBOUNDED/ITERATION_LIMIT
        outcomes are re-derived by the exact simplex fallback, keeping
        those statuses vertex-grade.  Warm starts reuse the last optimal
        (x, y) pair of the same standard-form shape — sibling nodes differ
        only in bounds, so the parent's saddle point is a good start.
        """
        key = (sf.m, sf.n)
        self.last_warm_info = {
            "used": False,
            "reused_factors": False,
            "audit_failed": False,
        }
        self._last_warm_state = None
        initial = self._pdhg_warm.get(key)
        if initial is not None:
            self._pdhg_warm.move_to_end(key)
        res = solve_standard_form_pdhg(sf, self.pdhg_options, hook=hook, initial=initial)
        stats = self.pdhg_stats
        stats["solves"] += 1
        stats["iterations"] += res.iterations
        if res.first_order is not None:
            stats["restarts"] += res.first_order.stats.restarts
        if res.status is not LPStatus.OPTIMAL:
            stats["fallbacks"] += 1
            return None
        self._pdhg_warm[key] = (
            res.x_standard.copy(),
            (-res.duals).copy(),
        )
        self._pdhg_warm.move_to_end(key)
        while len(self._pdhg_warm) > self.PDHG_WARM_CAPACITY:
            self._pdhg_warm.popitem(last=False)
        res.objective = res.first_order.upper_bound() + sf.offset
        return res

    def resolve_after_cuts(
        self,
        sf_grown: StandardFormLP,
        basis_extended: np.ndarray,
        num_cuts: int,
        cut_bytes: int,
    ) -> LPResult:
        """Re-optimize after cut rows were appended (dual simplex)."""
        try:
            return dual_simplex_resolve(
                sf_grown, basis_extended, options=self.simplex_options
            )
        except LPError:
            return solve_standard_form(sf_grown, options=self.simplex_options)

    # -- reporting -------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        """Simulated seconds consumed (0 for the free default engine)."""
        return 0.0


@dataclass
class SolverOptions:
    """Branch-and-cut configuration."""

    branching: str = "pseudocost"
    node_selection: str = "best_first"
    #: Cut-generation rounds per node (0 disables branch-and-cut).
    cut_rounds: int = 0
    cuts_per_round: int = 8
    #: Only generate cuts at nodes this shallow (root = 0).
    cut_depth_limit: int = 4
    use_rounding_heuristic: bool = True
    node_limit: int = 200_000
    #: Relative optimality gap for early stop.
    mip_gap: float = 1e-6
    keep_tree: bool = False
    simplex: SimplexOptions = field(default_factory=SimplexOptions)
    #: Node-relaxation engine for the default host engine: "simplex"
    #: or "pdhg" (engines passed explicitly keep their own setting).
    node_lp: str = "simplex"
    #: First-order options when ``node_lp == "pdhg"``.
    pdhg: PDHGOptions = field(default_factory=PDHGOptions)
    config: Config = field(default_factory=lambda: DEFAULT_CONFIG)
    #: Warm-start children from the parent basis (§5.3 reuse).
    warm_start: bool = True
    #: Probe binary variables at the root (§3.3) before searching.
    probe_root: bool = False
    #: Emit a progress line every N processed nodes (0 = silent).
    log_every: int = 0
    #: Sink for progress lines (defaults to print).
    log_fn: Optional[Callable[[str], None]] = None
    #: Keep up to this many distinct improving solutions (solution pool).
    solution_pool_size: int = 1
    #: Capture a consistent snapshot every N processed nodes
    #: (0 disables; requires ``checkpoint_fn``).
    checkpoint_every: int = 0
    #: Sink for captured :class:`repro.mip.snapshot.SearchSnapshot`\ s;
    #: a crash-recovery driver resumes from the latest one delivered.
    checkpoint_fn: Optional[Callable] = None
    #: Run the batched primal-heuristic portfolio
    #: (:mod:`repro.mip.portfolio`) before the tree search; its best
    #: certified incumbent seeds the pruning bound (None disables).
    portfolio: Optional[PortfolioOptions] = None

    def __post_init__(self):
        if self.node_limit <= 0:
            raise ReproError(
                f"node_limit must be positive, got {self.node_limit!r}"
            )
        if not self.mip_gap >= 0:
            raise ReproError(
                f"mip_gap must be non-negative, got {self.mip_gap!r}"
            )
        if self.cut_rounds < 0:
            raise ReproError(
                f"cut_rounds must be non-negative, got {self.cut_rounds!r}"
            )
        if self.solution_pool_size < 1:
            raise ReproError(
                "solution_pool_size must be at least 1, "
                f"got {self.solution_pool_size!r}"
            )
        if self.checkpoint_every < 0:
            raise ReproError(
                f"checkpoint_every must be non-negative, got {self.checkpoint_every!r}"
            )


class BranchAndBoundSolver:
    """Branch-and-cut for :class:`MIPProblem` (maximization)."""

    def __init__(
        self,
        problem: MIPProblem,
        options: Optional[SolverOptions] = None,
        engine: Optional[ExecutionEngine] = None,
    ):
        self.problem = problem
        self.options = options or SolverOptions()
        self.engine = engine or ExecutionEngine(
            self.options.simplex,
            node_lp=self.options.node_lp,
            pdhg_options=self.options.pdhg,
        )
        self.stats = MIPStats()
        self._tol = self.options.config.tolerances
        #: Bounded per-node warm states (basis + resident factorization);
        #: an evicted entry falls back to the node's bare ``warm_basis``.
        self._warm_states = WarmStateCache(capacity=64)
        #: Result of the pre-search portfolio phase (None = not run).
        self.portfolio_result: Optional[PortfolioResult] = None

    def solve(self) -> MIPResult:
        """Run the search to optimality, infeasibility, or the node limit."""
        with obs.span(
            "mip.solve", category="mip",
            n=self.problem.n, integers=self.problem.num_integer,
        ) as sp:
            result = self._solve()
            sp.set(status=result.status.value, nodes=result.stats.nodes_processed)
            return result

    def _solve(self) -> MIPResult:
        problem = self.problem
        options = self.options

        if options.probe_root:
            from repro.mip.probing import apply_probing, probe

            probed = probe(problem)
            if not probed.feasible:
                return MIPResult(status=MIPStatus.INFEASIBLE, stats=self.stats)
            if probed.num_fixed or not (
                np.array_equal(probed.lb, problem.lb)
                and np.array_equal(probed.ub, problem.ub)
            ):
                problem = apply_probing(problem, probed)
                self.problem = problem

        tree = BBTree(problem.relaxation())
        selector = make_selector(options.node_selection, tree)
        branching: BranchingRule = make_branching(options.branching)

        incumbent_obj = -np.inf
        incumbent_x: Optional[np.ndarray] = None
        solution_pool: list = []
        last_node: Optional[int] = None

        def record_solution(obj: float, x: np.ndarray) -> None:
            solution_pool.append((obj, x.copy()))
            solution_pool.sort(key=lambda t: -t[0])
            del solution_pool[options.solution_pool_size :]

        sf_root = tree.node_problem(0).to_standard_form()
        self.engine.begin_search(problem, sf_root)
        matrix_bytes = sf_root.a.size * 8

        # Portfolio phase: batched primal heuristics seed the incumbent
        # (and therefore the pruning bound) before the first node.
        if options.portfolio is not None:
            pr = run_portfolio(
                problem,
                options.portfolio,
                device=getattr(self.engine, "device", None),
            )
            self.portfolio_result = pr
            self.stats.portfolio_restarts = pr.stats.get("restarts", 0)
            self.stats.portfolio_sweeps = pr.stats.get("fj_sweeps", 0)
            self.stats.portfolio_incumbents = len(pr.incumbents)
            self.stats.portfolio_seconds = pr.elapsed_seconds
            self.stats.lp_iterations += pr.lp_iterations
            if pr.best is not None:
                incumbent_obj, incumbent_x = pr.best.objective, pr.best.x.copy()
                record_solution(incumbent_obj, incumbent_x)
                self.stats.heuristic_solutions += 1
                self._note_first_incumbent()
                self.stats.incumbent_history.append((0, incumbent_obj))
                obs.event(
                    "mip.incumbent", category="mip",
                    objective=incumbent_obj, heuristic=True,
                    source="portfolio",
                )

        tree.root.inherited_bound = np.inf
        selector.push(0, np.inf)

        status = None

        def process_node(node_id: int, node_span) -> Optional[str]:
            """One node's lifecycle; returns "break" to stop the search."""
            nonlocal incumbent_obj, incumbent_x, last_node, status
            node = tree.node(node_id)
            node_span.set(depth=node.depth)

            # Prune on the inherited (parent) bound without touching the LP.
            if self._dominated(node.inherited_bound, incumbent_obj):
                node.tag = NodeTag.PRUNED
                node.lp_bound = node.inherited_bound
                return None

            distance = None if last_node is None else tree.tree_distance(last_node, node_id)
            self.engine.begin_node(node_id, distance, matrix_bytes)
            if distance is not None:
                self.stats.reuse_distance += distance
                if distance > 1:
                    self.stats.matrix_switches += 1
            last_node = node_id

            node_lp = tree.node_problem(node_id)
            sf = node_lp.to_standard_form()
            warm = None
            if options.warm_start and node.parent_id is not None:
                warm = self._warm_states.get(node.parent_id)
                if warm is None:
                    warm = tree.node(node.parent_id).warm_basis
            res = self.engine.solve_relaxation(sf, warm_basis=warm)
            self.stats.nodes_processed += 1
            self.stats.lp_iterations += res.iterations
            if options.log_every and self.stats.nodes_processed % options.log_every == 0:
                self._log(options, incumbent_obj, node.inherited_bound, len(selector))
            warm_info = getattr(self.engine, "last_warm_info", None) or {}
            if warm is not None and warm_info.get("used"):
                self.stats.warm_starts += 1
                self.stats.warm_pivots += res.iterations
                if warm_info.get("reused_factors"):
                    self.stats.warm_factor_reuses += 1
            else:
                self.stats.cold_starts += 1
                self.stats.cold_pivots += res.iterations
                if warm_info.get("audit_failed"):
                    self.stats.warm_audit_failures += 1

            if res.status is LPStatus.INFEASIBLE:
                node.tag = NodeTag.INFEASIBLE
                return None
            if res.status is LPStatus.UNBOUNDED:
                if node_id == 0:
                    status = MIPStatus.UNBOUNDED
                    return "break"
                raise MIPError("non-root node relaxation unbounded")
            if res.status in (LPStatus.ITERATION_LIMIT, LPStatus.NUMERICAL):
                res = self._escalate_node(sf, res, node_id)
                if res.status is LPStatus.INFEASIBLE:
                    node.tag = NodeTag.INFEASIBLE
                    return None
            if res.status is LPStatus.TIME_LIMIT:
                # Anytime stop: leave the node OPEN so active_leaves()
                # keeps its inherited bound in the final dual bound.
                status = MIPStatus.TIME_LIMIT
                return "break"
            if res.status is not LPStatus.OPTIMAL:
                if (
                    res.status is LPStatus.NUMERICAL
                    and incumbent_x is None
                ):
                    # Ladder exhausted and nothing anytime-worthy to
                    # return — let repro.api walk the strategy
                    # degradation chain (a different engine may be
                    # numerically healthier on this instance).
                    raise NumericalInstabilityError(
                        engine=type(self.engine).__name__,
                        signal="numerical",
                        detail=f"node {node_id} LP unrecoverable "
                        "after escalation",
                    )
                # Escalation ladder exhausted; stop with a structured
                # anytime result instead of raising mid-search.
                obs.event(
                    "guard.mip_stop", category="guard",
                    node=node_id, lp_status=res.status.value,
                )
                status = MIPStatus.ITERATION_LIMIT
                return "break"

            node.lp_bound = res.objective
            node.warm_basis = res.basis
            if options.warm_start:
                state = self.engine.take_warm_state() if hasattr(
                    self.engine, "take_warm_state"
                ) else None
                if state is None:
                    state = state_from_result(sf, res)
                if state is not None:
                    self._warm_states.put(node_id, state)
            node_span.set(bound=res.objective)
            self._record_pseudocost(branching, tree, node, res.objective)

            if self._dominated(res.objective, incumbent_obj):
                node.tag = NodeTag.PRUNED
                return None

            # First-order node solves are box-feasible only to eps; clamp
            # into the node's bounds so branching can never create a
            # child with ceil(value) above the variable's upper bound.
            x = np.clip(sf.recover_x(res.x_standard), node_lp.lb, node_lp.ub)
            fractional = problem.fractional_integers(x)

            # Cut rounds (branch-and-cut, §5.2) at shallow nodes.
            if (
                options.cut_rounds > 0
                and fractional.size > 0
                and node.depth <= options.cut_depth_limit
            ):
                sf_cut, res_cut = self._run_cut_rounds(sf, res, x)
                if res_cut is not None:
                    res = res_cut
                    node.lp_bound = min(node.lp_bound, res.objective)
                    x = np.clip(
                        sf_cut.recover_x(res.x_standard), node_lp.lb, node_lp.ub
                    )
                    fractional = problem.fractional_integers(x)
                    if self._dominated(node.lp_bound, incumbent_obj):
                        node.tag = NodeTag.PRUNED
                        return None

            if fractional.size == 0:
                node.tag = NodeTag.FEASIBLE
                obj = problem.objective(x)
                record_solution(obj, x)
                if obj > incumbent_obj:
                    incumbent_obj, incumbent_x = obj, x
                    self._note_first_incumbent()
                    obs.event("mip.incumbent", category="mip", objective=obj)
                    self.stats.incumbent_history.append(
                        (self.stats.nodes_processed, obj)
                    )
                return None

            # Primal heuristic: try rounding the fractional point.
            if options.use_rounding_heuristic:
                candidate = round_to_feasible(problem, x)
                if candidate is not None:
                    obj = problem.objective(candidate)
                    record_solution(obj, candidate)
                    if obj > incumbent_obj:
                        incumbent_obj, incumbent_x = obj, candidate
                        self._note_first_incumbent()
                        self.stats.heuristic_solutions += 1
                        obs.event(
                            "mip.incumbent", category="mip",
                            objective=obj, heuristic=True,
                        )
                        self.stats.incumbent_history.append(
                            (self.stats.nodes_processed, obj)
                        )

            # Branch.
            probe = self._make_probe(tree, node_id, node.warm_basis)
            var = branching.select(fractional, x, node.lp_bound, probe=probe)
            value = x[var]
            node.tag = NodeTag.BRANCHED
            node.branch_var = var
            down = tree.add_child(
                node_id,
                BoundChange(var=var, kind="ub", value=float(np.floor(value)), parent_value=float(value)),
            )
            up = tree.add_child(
                node_id,
                BoundChange(var=var, kind="lb", value=float(np.ceil(value)), parent_value=float(value)),
            )
            for child in (down, up):
                child.inherited_bound = node.lp_bound
                selector.push(child.node_id, node.lp_bound)
            return None

        injector = fault_active()
        guard_ctx = guard_budget.active()
        last_checkpoint = -1
        while selector and self.stats.nodes_processed < options.node_limit:
            if guard_ctx is not None and guard_ctx.deadline_hit():
                status = MIPStatus.TIME_LIMIT
                break
            node_id = selector.pop()
            with obs.span("mip.node", category="mip", node=node_id) as node_span:
                flow = process_node(node_id, node_span)
                node_span.set(tag=tree.node(node_id).tag.value)
            if flow == "break":
                break
            if (
                options.checkpoint_every
                and options.checkpoint_fn is not None
                and self.stats.nodes_processed % options.checkpoint_every == 0
                and self.stats.nodes_processed != last_checkpoint
            ):
                last_checkpoint = self.stats.nodes_processed
                from repro.mip.snapshot import capture_snapshot

                options.checkpoint_fn(
                    capture_snapshot(tree, incumbent_obj, incumbent_x)
                )
            # Checkpoint before the kill draw: a crash at node k can
            # always resume from a snapshot taken at or before k.
            if injector is not None and injector.node_kill():
                raise SolverCrashError(node_id)

        self.engine.end_search()

        # Derive the final status and bound.
        open_bounds = [n.inherited_bound for n in tree.active_leaves()]
        if status is MIPStatus.UNBOUNDED:
            result_status = status
            best_bound = np.inf
        elif status is not None and status.anytime:
            result_status = status
            best_bound = max([incumbent_obj] + open_bounds)
        elif selector and self.stats.nodes_processed >= options.node_limit:
            result_status = MIPStatus.NODE_LIMIT
            best_bound = max([incumbent_obj] + open_bounds)
        elif incumbent_x is None:
            result_status = MIPStatus.INFEASIBLE
            best_bound = -np.inf
        else:
            result_status = MIPStatus.OPTIMAL
            best_bound = incumbent_obj

        return MIPResult(
            status=result_status,
            objective=incumbent_obj if incumbent_x is not None else np.nan,
            x=incumbent_x,
            best_bound=best_bound,
            stats=self.stats,
            tree=tree if options.keep_tree else None,
            solution_pool=solution_pool,
        )

    # -- helpers ---------------------------------------------------------------

    def _log(
        self, options: SolverOptions, incumbent: float, bound: float, open_nodes: int
    ) -> None:
        gap = "inf"
        if np.isfinite(incumbent) and np.isfinite(bound) and abs(incumbent) > 1e-12:
            gap = f"{abs(bound - incumbent) / abs(incumbent) * 100:.2f}%"
        line = (
            f"nodes={self.stats.nodes_processed:>6}  open={open_nodes:>5}  "
            f"incumbent={incumbent:.6g}  bound={bound:.6g}  gap={gap}  "
            f"cuts={self.stats.cuts_added}"
        )
        (options.log_fn or print)(line)

    def _escalate_node(self, sf, first, node_id: int):
        """Climb the guard ladder for a node LP that came back unusable.

        Driver-level on purpose: strategy engines override
        ``solve_relaxation``, so recovery here covers every engine.
        """
        from repro.guard.escalate import escalate_lp

        outcome = escalate_lp(
            sf,
            options=self.options.simplex,
            first=first,
            seed=node_id,
        )
        if outcome.escalated:
            self.stats.escalations += 1
            self.stats.lp_iterations += outcome.result.iterations
        return outcome.result

    def _note_first_incumbent(self) -> None:
        """Stamp node/engine-time coordinates of the first incumbent."""
        if self.stats.first_incumbent_nodes < 0:
            self.stats.first_incumbent_nodes = self.stats.nodes_processed
            self.stats.first_incumbent_seconds = self.engine.elapsed_seconds

    def _dominated(self, bound: float, incumbent: float) -> bool:
        """True when a node bound cannot beat the incumbent."""
        if not np.isfinite(bound):
            return False
        threshold = incumbent + max(
            self._tol.mip_gap_abs, self.options.mip_gap * abs(incumbent)
        )
        return bound <= threshold

    def _record_pseudocost(
        self, branching: BranchingRule, tree: BBTree, node, child_bound: float
    ) -> None:
        if node.parent_id is None or node.change is None:
            return
        parent = tree.node(node.parent_id)
        if not np.isfinite(parent.lp_bound):
            return
        change: BoundChange = node.change
        degradation = parent.lp_bound - child_bound
        f = change.parent_value - np.floor(change.parent_value)
        if change.kind == "lb":  # rounded up
            branching.record(change.var, "up", 1.0 - f, degradation)
        else:
            branching.record(change.var, "down", f, degradation)

    def _make_probe(
        self, tree: BBTree, node_id: int, warm_basis: Optional[np.ndarray]
    ) -> Callable[[int, Optional[float], Optional[float]], float]:
        """Child-LP prober for strong branching."""

        def probe(var: int, new_lb: Optional[float], new_ub: Optional[float]) -> float:
            child_lp = tree.node_problem(node_id).with_bounds(var, lb=new_lb, ub=new_ub)
            sf = child_lp.to_standard_form()
            res = self.engine.solve_relaxation(sf, warm_basis=warm_basis, probe=True)
            if res.status is LPStatus.OPTIMAL:
                return res.objective
            if res.status is LPStatus.INFEASIBLE:
                return -np.inf
            return -np.inf

        return probe

    def _run_cut_rounds(self, sf: StandardFormLP, res: LPResult, x: np.ndarray):
        """Generate and apply cut rounds; returns (sf_final, res_final)."""
        with obs.span("mip.cuts", category="mip") as sp:
            sf_out, res_out = self._cut_rounds_inner(sf, res, x)
            sp.set(applied=res_out is not None)
            return sf_out, res_out

    def _cut_rounds_inner(self, sf: StandardFormLP, res: LPResult, x: np.ndarray):
        options = self.options
        sf_work, res_work, x_work = sf, res, x
        applied_any = False
        for _ in range(options.cut_rounds):
            if res_work.basis is None or res_work.x_standard is None:
                break
            pool = CutPool()
            for cut in gomory_mixed_integer_cuts(
                self.problem, sf_work, res_work.basis, res_work.x_standard
            ):
                pool.add(cut)
            for cut in cover_cuts(self.problem, sf_work, x_work):
                pool.add(cut)
            for cut in mir_cuts(self.problem, sf_work, x_work):
                pool.add(cut)
            selected = pool.select(options.cuts_per_round)
            if not selected:
                break
            rows = np.vstack([c.row for c in selected])
            rhs = np.array([c.rhs for c in selected])
            sf_next = sf_work.with_appended_rows(rows, rhs)
            basis_ext = np.concatenate(
                [res_work.basis, np.arange(sf_work.n, sf_next.n, dtype=np.int64)]
            )
            res_next = self.engine.resolve_after_cuts(
                sf_next, basis_ext, len(selected), rows.size * 8 + rhs.size * 8
            )
            self.stats.cut_rounds += 1
            if res_next.status is not LPStatus.OPTIMAL:
                # A valid cut cannot make the MIP infeasible; numerical
                # failure → discard this round and stop cutting.
                break
            self.stats.cuts_added += len(selected)
            sf_work, res_work = sf_next, res_next
            x_work = sf_work.recover_x(res_work.x_standard)
            applied_any = True
            if self.problem.fractional_integers(x_work).size == 0:
                break
        if not applied_any:
            return sf, None
        return sf_work, res_work
