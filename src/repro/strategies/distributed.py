"""Distributed branch-and-bound over the supervisor–worker engine.

The ParaSCIP/UG layout of §2.3 combined with strategy 2: rank 0
supervises the node pool (ramp-up, dynamic load balancing,
checkpointing); each worker owns a GPU and evaluates one
branch-and-bound node per task — LP relaxation on its device, children
shipped back as new tasks.  Per-node compute time comes from a real
metered LP solve, so the scaling curves of experiment E8 reflect actual
LP costs, not synthetic task lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.comm.network import SUMMIT_FAT_TREE, NetworkSpec
from repro.comm.supervisor import (
    Snapshot,
    SupervisorConfig,
    SupervisorResult,
    Task,
    TaskResult,
    run_supervisor_worker,
)
from repro.device.gpu import Device
from repro.device.spec import V100, DeviceSpec
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_standard_form
from repro.mip.problem import MIPProblem
from repro.strategies.engine import DeviceCostHook

#: A distributable node: its bound box (lb, ub) and depth.
NodePayload = Tuple[np.ndarray, np.ndarray, int]


@dataclass
class DistributedSearchResult:
    """Outcome of a distributed branch-and-bound run."""

    objective: float
    makespan_seconds: float
    nodes_evaluated: int
    per_worker: List[int]
    snapshots: List[Snapshot]
    messages: int
    comm_bytes: int


def _node_lp(problem: MIPProblem, lb: np.ndarray, ub: np.ndarray) -> LinearProgram:
    return LinearProgram(
        c=problem.c,
        a_ub=problem.a_ub,
        b_ub=problem.b_ub,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lb=lb,
        ub=ub,
    )


def _make_evaluate(problem: MIPProblem, spec: DeviceSpec, options: SimplexOptions):
    """Node evaluator: one LP relaxation on a fresh per-call device meter.

    The device clock delta becomes the task's compute time; a fresh
    device per call keeps the meter independent of scheduling order (the
    upload of the resident matrix is excluded — it happens once per
    worker at ramp-up in the real system).
    """

    node_bytes = 2 * problem.n * 8 + 256

    def evaluate(payload: NodePayload, incumbent: Optional[float]) -> TaskResult:
        lb, ub, depth = payload
        device = Device(spec)
        hook = DeviceCostHook(device, mode="dense")
        lp = _node_lp(problem, lb, ub)
        sf = lp.to_standard_form()
        res = solve_standard_form(sf, options=options, hook=hook)
        cost = device.clock.now

        if res.status is not LPStatus.OPTIMAL:
            return TaskResult(compute_seconds=cost)
        bound = res.objective
        if incumbent is not None and bound <= incumbent + 1e-9:
            return TaskResult(compute_seconds=cost)

        x = sf.recover_x(res.x_standard)
        fractional = problem.fractional_integers(x)
        if fractional.size == 0:
            return TaskResult(compute_seconds=cost, incumbent=bound)

        frac_vals = x[fractional] - np.floor(x[fractional])
        var = int(fractional[np.argmin(np.abs(frac_vals - 0.5))])
        value = x[var]
        lb_up = lb.copy()
        lb_up[var] = np.ceil(value)
        ub_down = ub.copy()
        ub_down[var] = np.floor(value)
        children = (
            Task(payload=(lb, ub_down, depth + 1), priority=-bound, nbytes=node_bytes),
            Task(payload=(lb_up, ub, depth + 1), priority=-bound, nbytes=node_bytes),
        )
        return TaskResult(children=children, compute_seconds=cost)

    return evaluate


def solve_distributed(
    problem: MIPProblem,
    num_workers: int,
    spec: DeviceSpec = V100,
    network: NetworkSpec = SUMMIT_FAT_TREE,
    ramp_up: bool = True,
    dynamic_load_balancing: bool = True,
    checkpoint_every: int = 0,
    simplex_options: Optional[SimplexOptions] = None,
    max_evaluations: int = 200_000,
) -> DistributedSearchResult:
    """Solve a MIP with a supervisor and ``num_workers`` GPU workers.

    ``num_workers == 0`` runs the sequential baseline (same evaluator,
    no communication) for speedup normalization.
    """
    options = simplex_options or SimplexOptions()
    evaluate = _make_evaluate(problem, spec, options)
    root = Task(
        payload=(problem.lb.copy(), problem.ub.copy(), 0),
        priority=0.0,
        nbytes=2 * problem.n * 8 + 256,
    )
    config = SupervisorConfig(
        num_workers=num_workers,
        ramp_up=ramp_up,
        dynamic_load_balancing=dynamic_load_balancing,
        checkpoint_every=checkpoint_every,
        max_evaluations=max_evaluations,
    )
    run: SupervisorResult = run_supervisor_worker(
        [root], evaluate, config, network=network
    )
    return DistributedSearchResult(
        objective=run.incumbent if run.incumbent is not None else np.nan,
        makespan_seconds=run.makespan,
        nodes_evaluated=run.evaluations,
        per_worker=run.per_worker,
        snapshots=run.snapshots,
        messages=run.metrics.count("comm.messages"),
        comm_bytes=run.metrics.count("comm.bytes"),
    )
