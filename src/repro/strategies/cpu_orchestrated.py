"""Strategy 2: CPU-orchestration of GPU execution (§3.2).

"The branch-and-cut tree is stored in the CPU main memory, while the
GPU is used only as an accelerator for the computation of each
branch-and-cut node."  The tree lives in host memory (no device charge),
the constraint matrix is uploaded once and stays resident, each node
ships only its bound delta, and every LP kernel runs on the GPU.

This is the design the paper identifies as the least complex of the two
winning strategies; :class:`CpuOrchestratedEngine` is therefore just the
base :class:`repro.strategies.engine.MeteredEngine` with a GPU spec.
"""

from __future__ import annotations

from typing import Optional

from repro.device.spec import V100, DeviceSpec
from repro.lp.simplex import SimplexOptions
from repro.strategies.engine import MeteredEngine


class CpuOrchestratedEngine(MeteredEngine):
    """Tree on host, LP relaxations on one resident-matrix GPU."""

    name = "cpu_orchestrated"

    def __init__(
        self,
        spec: DeviceSpec = V100,
        simplex_options: Optional[SimplexOptions] = None,
        cut_generation: str = "cpu",
    ):
        super().__init__(spec, simplex_options, cut_generation)
