"""Strategy 1: entirely GPU-based execution (§3.1).

"The branch-and-cut tree is entirely stored and manipulated on the
GPUs."  Besides the LP kernels, this engine therefore also charges the
device for tree management — node pushes/pops are pointer-chasing,
SIMD-hostile work (priced with the sparse efficiency) — and every open
node's state occupies device memory, so deep searches hit the memory
wall the paper warns about ("the difficulty of storing and manipulating
very large trees … within the limited confines of GPU memory").

On device OOM the engine *spills* the node store to the host, paying a
full transfer — the failure mode that makes strategy 1 uncompetitive.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.device import kernels as K
from repro.device.spec import V100, DeviceSpec
from repro.errors import DeviceMemoryError
from repro.lp.problem import StandardFormLP
from repro.lp.simplex import SimplexOptions
from repro.mip.problem import MIPProblem
from repro.strategies.engine import MeteredEngine


class GpuOnlyEngine(MeteredEngine):
    """Tree and LP both resident on the GPU."""

    name = "gpu_only"

    #: Device bytes held per open tree node (bounds + basis + metadata).
    def __init__(
        self,
        spec: DeviceSpec = V100,
        simplex_options: Optional[SimplexOptions] = None,
        cut_generation: str = "cpu",
    ):
        super().__init__(spec, simplex_options, cut_generation)
        self._node_arrays: Dict[int, object] = {}
        self._node_bytes = 0
        self.spills = 0

    def begin_search(self, problem: MIPProblem, sf_root: StandardFormLP) -> None:
        super().begin_search(problem, sf_root)
        # Per-node state: lb/ub vectors + warm basis + tags.
        self._node_bytes = 2 * problem.n * 8 + sf_root.m * 8 + 64

    def begin_node(self, node_id: int, tree_distance: Optional[int], matrix_bytes: int) -> None:
        # Tree manipulation happens *on the GPU*: a pop + two child
        # pushes of irregular pointer work per node, at sparse efficiency
        # and with kernel-launch latency each time.
        for _ in range(3):
            self.device._charge(K.spmv_kernel(64, 256), None)
        # Node state is allocated in device memory; on OOM, spill the
        # oldest half of the store back to the host.
        try:
            self._node_arrays[node_id] = self.device.alloc(
                b"", nbytes=self._node_bytes
            )
        except DeviceMemoryError:
            self._spill()
            self._node_arrays[node_id] = self.device.alloc(
                b"", nbytes=self._node_bytes
            )
        except TypeError:  # pragma: no cover - payload sizing guard
            pass

    def _spill(self) -> None:
        """Move half the node store to the host (expensive, counted)."""
        self.spills += 1
        victims = list(self._node_arrays)[: max(1, len(self._node_arrays) // 2)]
        freed = 0
        for nid in victims:
            arr = self._node_arrays.pop(nid)
            freed += arr.nbytes
            self.device.free(arr)
        self.device.transfers.device_to_host(freed)
