"""Runtime dense/sparse path choice — the §5.4 "super-MIP" decision.

"The code must handle user-provided inputs differently, based on whether
the input matrix happens to be dense or sparse; this decision needs to
be made at runtime."  The chooser prices one representative
factorize+solve iteration on each candidate path with the device cost
model and picks the cheapest — no hand-tuned density threshold, the
crossover falls out of the same model the engines charge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.device import kernels as K
from repro.device.spec import CPU_HOST, V100, DeviceSpec


class PathChoice(enum.Enum):
    """Which device + kernel family solves this problem's LPs."""

    DENSE_GPU = "dense_gpu"
    SPARSE_GPU = "sparse_gpu"
    SPARSE_CPU = "sparse_cpu"
    DENSE_CPU = "dense_cpu"


@dataclass
class PathEstimate:
    """Priced options behind a choice (for reports)."""

    choice: PathChoice
    dense_gpu_seconds: float
    sparse_gpu_seconds: float
    sparse_cpu_seconds: float
    dense_cpu_seconds: float


def _iteration_cost(
    spec: DeviceSpec, m: int, n: int, density: float, sparse: bool, levels: int
) -> float:
    """One representative simplex iteration + amortized factorization."""
    nnz = max(m, int(density * m * m))
    if sparse:
        factor = K.sparse_getrf_kernel(m, 3 * nnz, levels).duration(spec)
        solves = 4 * K.sparse_trsv_kernel(m, 3 * nnz // 2, levels).duration(spec)
        pricing = K.spmv_kernel(n, max(n, int(density * m * n))).duration(spec)
    else:
        factor = K.getrf_kernel(m).duration(spec)
        solves = 4 * K.trsv_kernel(m).duration(spec)
        pricing = K.gemv_kernel(n, m).duration(spec)
    # Factorization amortized over a refactor interval of ~64 iterations.
    return factor / 64.0 + solves + pricing


def estimate_paths(
    m: int,
    n: int,
    density: float,
    gpu: DeviceSpec = V100,
    cpu: DeviceSpec = CPU_HOST,
    levels: int = 0,
) -> PathEstimate:
    """Price all three paths and return the full estimate."""
    levels = levels or max(1, int(m ** 0.5))
    dense_gpu = _iteration_cost(gpu, m, n, density, sparse=False, levels=levels)
    sparse_gpu = _iteration_cost(gpu, m, n, density, sparse=True, levels=levels)
    sparse_cpu = _iteration_cost(cpu, m, n, density, sparse=True, levels=levels)
    dense_cpu = _iteration_cost(cpu, m, n, density, sparse=False, levels=levels)
    best = min(
        (dense_gpu, PathChoice.DENSE_GPU),
        (sparse_gpu, PathChoice.SPARSE_GPU),
        (sparse_cpu, PathChoice.SPARSE_CPU),
        (dense_cpu, PathChoice.DENSE_CPU),
    )
    return PathEstimate(
        choice=best[1],
        dense_gpu_seconds=dense_gpu,
        sparse_gpu_seconds=sparse_gpu,
        sparse_cpu_seconds=sparse_cpu,
        dense_cpu_seconds=dense_cpu,
    )


def choose_path(
    m: int,
    n: int,
    density: float,
    gpu: DeviceSpec = V100,
    cpu: DeviceSpec = CPU_HOST,
    levels: int = 0,
) -> PathChoice:
    """The §5.4 runtime decision for a problem of this shape."""
    return estimate_paths(m, n, density, gpu=gpu, cpu=cpu, levels=levels).choice
