"""Strategy 3: hybrid CPU and GPU execution (§3.3).

"Both the CPU and GPU architectures are employed … the ease of
implementing advanced heuristics such as probing, cut generation, column
generation, etc. while also exploiting the concurrency offered by the
many-core CPU architectures as well as the immense linear algebra
efficiencies offered by the multi-GPU architectures."

Concretely:

- the LP path is chosen at runtime per §5.4 (dense → GPU; sparse →
  whichever of GPU/CPU the cost model prefers, usually the CPU);
- the constraint matrix is mirrored on host *and* device, so CPU-side
  cut generation never needs the §5.2 device→host matrix round trip —
  only the new cut rows cross the link;
- probe LPs (strong branching) run on the host cores, leaving the GPU
  to the production relaxations.

The makespan is the max of the two devices' clocks (they genuinely
overlap in this design).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.device.gpu import Device
from repro.device.spec import CPU_HOST, V100, DeviceSpec
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult
from repro.lp.simplex import SimplexOptions
from repro.mip.problem import MIPProblem
from repro.strategies.chooser import PathChoice, choose_path
from repro.strategies.engine import DeviceCostHook, MeteredEngine


class HybridEngine(MeteredEngine):
    """Runtime-routed LPs over one GPU plus the many-core host."""

    name = "hybrid"

    def __init__(
        self,
        gpu_spec: DeviceSpec = V100,
        cpu_spec: DeviceSpec = CPU_HOST,
        simplex_options: Optional[SimplexOptions] = None,
    ):
        super().__init__(gpu_spec, simplex_options, cut_generation="cpu")
        self.cpu = Device(cpu_spec)
        self.path: Optional[PathChoice] = None
        self._cpu_hook = DeviceCostHook(self.cpu, mode="sparse")

    def begin_search(self, problem: MIPProblem, sf_root: StandardFormLP) -> None:
        super().begin_search(problem, sf_root)
        density = float(np.count_nonzero(sf_root.a)) / max(1, sf_root.a.size)
        self.path = choose_path(
            sf_root.m, sf_root.n, density, gpu=self.device.spec, cpu=self.cpu.spec
        )
        if self.path is PathChoice.DENSE_GPU:
            self._hook = DeviceCostHook(self.device, mode="dense", density=density)
        elif self.path is PathChoice.SPARSE_GPU:
            self._hook = DeviceCostHook(self.device, mode="sparse", density=density)
        elif self.path is PathChoice.DENSE_CPU:
            self._hook = DeviceCostHook(self.cpu, mode="dense", density=density)
        else:
            self._hook = DeviceCostHook(self.cpu, mode="sparse", density=density)
        self._cpu_hook = DeviceCostHook(self.cpu, mode="sparse", density=density)

    def solve_relaxation(self, sf, warm_basis=None, probe=False) -> LPResult:
        if probe:
            # Strong-branching probes run on the host cores, overlapped
            # with the GPU's production LPs.
            saved, self._hook = self._hook, self._cpu_hook
            try:
                return self._solve_with_hook(sf, warm_basis, probe)
            finally:
                self._hook = saved
        return self._solve_with_hook(sf, warm_basis, probe)

    def resolve_after_cuts(self, sf_grown, basis_extended, num_cuts, cut_bytes) -> LPResult:
        # The matrix is mirrored host-side, so only the cut rows move.
        gpu_paths = (PathChoice.DENSE_GPU, PathChoice.SPARSE_GPU)
        if self.device.spec.is_accelerator and self.path in gpu_paths:
            self.device.transfers.host_to_device(cut_bytes)
        return self._resolve_cuts_no_transfer(sf_grown, basis_extended)

    def _resolve_cuts_no_transfer(self, sf_grown, basis_extended) -> LPResult:
        from repro.errors import LPError
        from repro.lp.dual_simplex import dual_simplex_resolve
        from repro.lp.simplex import solve_standard_form

        try:
            return dual_simplex_resolve(
                sf_grown, basis_extended, options=self.simplex_options, hook=self._hook
            )
        except LPError:
            return solve_standard_form(
                sf_grown, options=self.simplex_options, hook=self._hook
            )

    def end_search(self) -> None:
        super().end_search()
        self.cpu.synchronize()

    @property
    def elapsed_seconds(self) -> float:
        # The two devices work concurrently; makespan is the slower one.
        return max(self.device.clock.now, self.cpu.clock.now)

    def report(self, result, strategy=None):
        rep = super().report(result, strategy)
        rep.makespan_seconds = self.elapsed_seconds
        rep.kernels += self.cpu.metrics.count("kernels.total")
        rep.energy_joules += self.cpu.energy_joules
        rep.notes = f"path={self.path.value if self.path else '?'}"
        return rep
