"""The paper's four parallel execution strategies (§3), realized.

Each strategy is an :class:`repro.mip.solver.ExecutionEngine` that runs
the *same* branch-and-cut search while charging a simulated platform for
every kernel, transfer, and (for the distributed strategies) message:

1. :mod:`repro.strategies.gpu_only` — tree + node solving entirely on
   the GPU; pays SIMD-hostile tree management and risks device OOM.
2. :mod:`repro.strategies.cpu_orchestrated` — tree in host memory, GPU
   as the LP accelerator (the paper's recommended design).
3. :mod:`repro.strategies.hybrid` — runtime dense/sparse path choice
   between GPU and the many-core host (§5.4's "super-MIP"), CPU-side
   cut generation without matrix round-trips.
4. :mod:`repro.strategies.big_mip` — the LP matrix itself is sharded
   across many devices; every solver operation becomes a distributed
   kernel + allreduce.

:mod:`repro.strategies.engine` holds the shared device-metering
machinery; :mod:`repro.strategies.chooser` the §5.4 path chooser;
:mod:`repro.strategies.distributed` the supervisor–worker parallel
search used for scaling experiments.
"""

from repro.strategies import registry
from repro.strategies.engine import DeviceCostHook, MeteredEngine, StrategyReport
from repro.strategies.gpu_only import GpuOnlyEngine
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine
from repro.strategies.hybrid import HybridEngine
from repro.strategies.big_mip import BigMipEngine
from repro.strategies.chooser import PathChoice, choose_path
from repro.strategies.distributed import DistributedSearchResult, solve_distributed
from repro.strategies.runner import STRATEGIES, run_strategy

__all__ = [
    "registry",
    "DeviceCostHook",
    "MeteredEngine",
    "StrategyReport",
    "GpuOnlyEngine",
    "CpuOrchestratedEngine",
    "HybridEngine",
    "BigMipEngine",
    "PathChoice",
    "choose_path",
    "solve_distributed",
    "DistributedSearchResult",
    "STRATEGIES",
    "run_strategy",
]
