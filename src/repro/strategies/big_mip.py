"""Strategy 4: Big-MIP execution (§3.4).

"The matrix sizes can be so large that it is not possible to store the
entire matrix on a single node … each LP relaxation itself operates as a
parallel matrix operation that spans multiple nodes in a distributed
manner.  One processor acts as the orchestrator of the serial
branch-and-cut algorithm, but each linear program relaxation is executed
as a parallel job."

The engine shards the constraint matrix column-wise across ``k``
devices.  Every simplex operation becomes: the sharded kernel on each
device (they advance in lockstep; the slowest shard gates) plus an
allreduce across the group (2·log₂k messages) — the communication tax
that makes Big-MIP worthwhile *only* when the matrix genuinely exceeds a
single device's memory.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.comm.network import SUMMIT_FAT_TREE, NetworkSpec
from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import NVLINK, V100, DeviceSpec, LinkSpec
from repro.errors import DeviceError
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult
from repro.lp.simplex import CostHook, SimplexOptions
from repro.mip.problem import MIPProblem
from repro.strategies.engine import MeteredEngine


class _ShardedHook(CostHook):
    """Charge each simplex op as sharded kernels + group allreduce.

    ``peer_link`` switches the reduction from inter-node MPI messages to
    an intra-node NVLink ring (direct GPU↔GPU, §3.1's fast path).
    """

    def __init__(
        self,
        devices: List[Device],
        network: NetworkSpec,
        peer_link: "LinkSpec" = None,
    ):
        self.devices = devices
        self.network = network
        self.peer_link = peer_link
        self.k = len(devices)
        self._depth = max(1, math.ceil(math.log2(max(2, self.k))))

    def _allreduce(self, nbytes: int) -> None:
        if self.k == 1:
            return
        if self.peer_link is not None:
            from repro.device.group import allreduce_seconds

            seconds = allreduce_seconds(self.peer_link, self.k, nbytes)
        else:
            seconds = 2 * self._depth * self.network.message_time(nbytes)
        for device in self.devices:
            device.clock.advance(seconds)
            device.metrics.inc("comm.allreduce")
            device.metrics.add_time("time.allreduce", seconds)

    def _charge_all(self, cost: K.KernelCost) -> None:
        for device in self.devices:
            device._charge(cost, None)

    def on_factorize(self, m: int) -> None:
        # Distributed dense LU: each device owns m/k columns; per-step
        # pivot exchange adds an allreduce on every elimination panel.
        shard = max(1, m // self.k)
        self._charge_all(K.getrf_kernel(shard) if shard < m else K.getrf_kernel(m))
        self._charge_all(K.gemm_kernel(m, shard, shard))
        self._allreduce(8 * m)

    def on_ftran(self, m: int, num_etas: int) -> None:
        shard = max(1, m // self.k)
        self._charge_all(K.trsv_kernel(shard))
        self._charge_all(K.trsv_kernel(shard))
        if num_etas:
            self._charge_all(K.eta_chain_kernel(shard, num_etas))
        self._allreduce(8 * m)

    def on_btran(self, m: int, num_etas: int) -> None:
        self.on_ftran(m, num_etas)

    def on_pricing(self, m: int, n: int) -> None:
        shard_cols = max(1, n // self.k)
        self._charge_all(K.gemv_kernel(shard_cols, m))
        self._allreduce(8 * 16)  # argmax reduction of candidate scores

    def on_update(self, m: int) -> None:
        self._charge_all(K.axpy_kernel(max(1, m // self.k)))

    def on_ratio_test(self, m: int) -> None:
        self._charge_all(K.axpy_kernel(max(1, m // self.k)))
        self._allreduce(8 * 16)


class BigMipEngine(MeteredEngine):
    """Serial branch-and-cut over a matrix sharded across k devices."""

    name = "big_mip"

    def __init__(
        self,
        num_devices: int,
        spec: DeviceSpec = V100,
        network: NetworkSpec = SUMMIT_FAT_TREE,
        simplex_options: Optional[SimplexOptions] = None,
        intra_node: bool = False,
    ):
        if num_devices < 1:
            raise DeviceError(f"Big-MIP needs >= 1 device, got {num_devices}")
        super().__init__(spec, simplex_options, cut_generation="cpu")
        self.devices = [Device(spec) for _ in range(num_devices)]
        self.network = network
        self.num_devices = num_devices
        #: True: devices share a node and reduce over NVLink (§3.1's
        #: "direct GPU to GPU communication"); False: MPI messages.
        self.intra_node = intra_node

    def begin_search(self, problem: MIPProblem, sf_root: StandardFormLP) -> None:
        # Shard the matrix column-wise; each device holds its slice.
        self._matrix_bytes = sf_root.a.size * 8
        shard_bytes = max(8, self._matrix_bytes // self.num_devices)
        for device in self.devices:
            # Account the shard's footprint and its one-time upload
            # without materializing huge host arrays.
            device.alloc(b"", nbytes=shard_bytes)
            device.transfers.host_to_device(shard_bytes)
        self._hook = _ShardedHook(
            self.devices,
            self.network,
            peer_link=NVLINK if self.intra_node else None,
        )

    def begin_node(self, node_id, tree_distance, matrix_bytes) -> None:
        for device in self.devices:
            device.transfers.host_to_device(256)

    def resolve_after_cuts(self, sf_grown, basis_extended, num_cuts, cut_bytes) -> LPResult:
        # Cut rows are broadcast to every shard owner.
        for device in self.devices:
            device.transfers.host_to_device(cut_bytes)
        from repro.errors import LPError
        from repro.lp.dual_simplex import dual_simplex_resolve
        from repro.lp.simplex import solve_standard_form

        try:
            return dual_simplex_resolve(
                sf_grown, basis_extended, options=self.simplex_options, hook=self._hook
            )
        except LPError:
            return solve_standard_form(
                sf_grown, options=self.simplex_options, hook=self._hook
            )

    def end_search(self) -> None:
        for device in self.devices:
            device.synchronize()

    @property
    def elapsed_seconds(self) -> float:
        # Lockstep shards: the slowest device gates every step.
        return max(device.clock.now for device in self.devices)

    def report(self, result, strategy=None):
        rep = super().report(result, strategy)
        rep.makespan_seconds = self.elapsed_seconds
        rep.h2d_transfers = sum(d.metrics.count("transfers.h2d") for d in self.devices)
        rep.d2h_transfers = sum(d.metrics.count("transfers.d2h") for d in self.devices)
        rep.bytes_moved = sum(d.transfers.total_bytes for d in self.devices)
        rep.kernels = sum(d.metrics.count("kernels.total") for d in self.devices)
        rep.mem_peak_bytes = max(d.memory.peak for d in self.devices)
        rep.energy_joules = sum(d.energy_joules for d in self.devices)
        return rep

