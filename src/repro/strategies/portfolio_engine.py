"""Strategy: hybrid execution fronted by the primal-heuristic portfolio.

The paper's §3.3 hybrid design assigns "advanced heuristics" to the
host cores while the GPU carries the linear algebra.  This strategy
takes that assignment to its batched conclusion: before branch and
bound opens the tree, the massively parallel portfolio
(:mod:`repro.mip.portfolio` — seeded feasibility-jump restarts in
lockstep, batched fix-and-propagate, LNS re-solves) sweeps for
certified incumbents on the metered device, and the best one enters the
search as a pruning bound.

The engine itself is the hybrid CPU+GPU engine; the portfolio phase is
injected by :func:`repro.api.solve` whenever ``wants_portfolio`` is
set and the caller didn't pin a :class:`repro.mip.portfolio.PortfolioOptions`
of their own.  Degradation chains to ``"hybrid"`` (same LP routing,
no heuristic phase).
"""

from __future__ import annotations

from repro.strategies.hybrid import HybridEngine


class PortfolioEngine(HybridEngine):
    """Hybrid CPU+GPU engine that requests the portfolio phase."""

    name = "portfolio"
    #: Honored by :func:`repro.api._run_mip_engine`: inject default
    #: portfolio options when the caller didn't configure the phase.
    wants_portfolio = True
