"""Shared device-metering machinery for the strategy engines.

:class:`DeviceCostHook` translates the revised simplex's linear-algebra
callbacks (:class:`repro.lp.simplex.CostHook`) into kernel charges on a
simulated :class:`repro.device.Device` — the exact kernel stream a
cuBLAS/cuSOLVER-backed solver would launch for the same pivots.

:class:`MeteredEngine` is the base engine: it owns the compute device,
keeps the constraint matrix resident (uploaded once, §5.3), ships only
per-node deltas, and implements the two §5.2 cut-incorporation modes
(CPU-side generation with a device→host→device round trip, or
hypothetical GPU-resident generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import DeviceSpec
from repro.lp.problem import StandardFormLP
from repro.lp.result import LPResult
from repro.lp.simplex import CostHook, SimplexOptions
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult
from repro.mip.solver import ExecutionEngine


class DeviceCostHook(CostHook):
    """Charge simplex linear algebra to a device.

    ``mode`` selects the §5.4 code path: "dense" uses the dense kernels
    (getrf/trsv/gemv); "sparse" prices the same operations with the
    sparse kernels at the problem's nonzero density and a level schedule
    measured once from a real symbolic factorization.
    """

    def __init__(
        self,
        device: Device,
        mode: str = "dense",
        density: float = 1.0,
        num_levels: Optional[int] = None,
    ):
        self.device = device
        self.mode = mode
        self.density = density
        self.num_levels = num_levels

    def _nnz(self, m: int) -> int:
        return max(m, int(self.density * m * m))

    def _levels(self, m: int) -> int:
        if self.num_levels is not None:
            return self.num_levels
        return max(1, int(np.sqrt(m)))

    def on_factorize(self, m: int) -> None:
        if self.mode == "dense":
            self.device._charge(K.getrf_kernel(m), None)
        else:
            # Fill-in roughly triples the basis nnz for these densities.
            self.device._charge(
                K.sparse_getrf_kernel(m, 3 * self._nnz(m), self._levels(m)), None
            )

    def _triangular_pair(self, m: int) -> None:
        if self.mode == "dense":
            self.device._charge(K.trsv_kernel(m), None)
            self.device._charge(K.trsv_kernel(m), None)
        else:
            nnz = 3 * self._nnz(m) // 2
            levels = self._levels(m)
            self.device._charge(K.sparse_trsv_kernel(m, nnz, levels), None)
            self.device._charge(K.sparse_trsv_kernel(m, nnz, levels), None)

    def on_ftran(self, m: int, num_etas: int) -> None:
        self._triangular_pair(m)
        if num_etas:
            self.device._charge(K.eta_chain_kernel(m, num_etas), None)

    def on_btran(self, m: int, num_etas: int) -> None:
        self._triangular_pair(m)
        if num_etas:
            self.device._charge(K.eta_chain_kernel(m, num_etas), None)

    def on_pricing(self, m: int, n: int) -> None:
        if self.mode == "dense":
            self.device._charge(K.gemv_kernel(n, m), None)
        else:
            self.device._charge(K.spmv_kernel(n, int(self.density * m * n)), None)

    def on_update(self, m: int) -> None:
        self.device._charge(K.axpy_kernel(m), None)

    def on_ratio_test(self, m: int) -> None:
        self.device._charge(K.axpy_kernel(m), None)


@dataclass
class StrategyReport:
    """One strategy's outcome on one problem."""

    strategy: str
    result: MIPResult
    #: Simulated wall-clock of the whole search.
    makespan_seconds: float
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    bytes_moved: int = 0
    kernels: int = 0
    mem_peak_bytes: int = 0
    #: Busy-time energy across all compute devices (paper §2.2).
    energy_joules: float = 0.0
    notes: str = ""
    #: Trace id of the obs tracer active during the run ("" untraced).
    trace_id: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly summary (:func:`repro.reporting.report_dict` shape)."""
        from repro.reporting import report_dict

        result = self.result
        return report_dict(
            status=result.status.value,
            objective=result.objective,
            strategy=self.strategy,
            trace_id=self.trace_id,
            best_bound=result.best_bound,
            gap=result.gap,
            nodes=result.stats.nodes_processed,
            lp_iterations=result.stats.lp_iterations,
            makespan_seconds=self.makespan_seconds,
            metrics={
                "kernels": self.kernels,
                "h2d_transfers": self.h2d_transfers,
                "d2h_transfers": self.d2h_transfers,
                "bytes_moved": self.bytes_moved,
                "mem_peak_bytes": self.mem_peak_bytes,
                "energy_joules": self.energy_joules,
            },
        )


class MeteredEngine(ExecutionEngine):
    """Base engine: resident matrix on one compute device.

    Subclasses set ``tree_on_device`` / ``cut_generation`` / the hook
    mode to realize the individual strategies.
    """

    name = "metered"

    def __init__(
        self,
        spec: DeviceSpec,
        simplex_options: Optional[SimplexOptions] = None,
        cut_generation: str = "cpu",  # "cpu" (paper: no GPU generators) | "gpu"
    ):
        super().__init__(simplex_options)
        self.device = Device(spec)
        self.cut_generation = cut_generation
        self._matrix_array = None
        self._matrix_bytes = 0
        self._hook: CostHook = DeviceCostHook(self.device, mode="dense")

    # -- hooks ------------------------------------------------------------------

    def begin_search(self, problem: MIPProblem, sf_root: StandardFormLP) -> None:
        # Upload the constraint matrix once; it stays resident (§5.3).
        self._matrix_bytes = sf_root.a.size * 8
        self._matrix_array = self.device.upload(sf_root.a)
        density = float(np.count_nonzero(sf_root.a)) / max(1, sf_root.a.size)
        self._hook = self._make_hook(density, sf_root)

    def _make_hook(self, density: float, sf_root: StandardFormLP) -> CostHook:
        return DeviceCostHook(self.device, mode="dense", density=density)

    def begin_node(self, node_id: int, tree_distance: Optional[int], matrix_bytes: int) -> None:
        # Shipping a node to the device = new bound RHS entries + the
        # basis column list: a small vector, not the matrix.
        if self.device.spec.is_accelerator:
            self.device.transfers.host_to_device(256)

    def solve_relaxation(self, sf, warm_basis=None, probe=False) -> LPResult:
        return self._solve_with_hook(sf, warm_basis, probe)

    def _solve_with_hook(self, sf, warm_basis, probe) -> LPResult:
        # The shared warm-attempt/cold-fallback path, metered through
        # whichever device hook is currently active (hybrid swaps it).
        return self._warm_or_cold(sf, warm_basis, probe, hook=self._hook)

    def resolve_after_cuts(self, sf_grown, basis_extended, num_cuts, cut_bytes) -> LPResult:
        from repro.lp.dual_simplex import dual_simplex_resolve
        from repro.lp.simplex import solve_standard_form
        from repro.errors import LPError

        if self.device.spec.is_accelerator:
            if self.cut_generation == "cpu":
                # §5.2: the CPU generator "will require the latest copy of
                # the matrix … to be copied from the device to the host",
                # then the cuts move back and are incorporated.
                self.device.transfers.device_to_host(self._matrix_bytes)
                self.device.transfers.host_to_device(cut_bytes)
            else:
                # Hypothetical GPU-resident generator: rows appended in place.
                pass
        try:
            return dual_simplex_resolve(
                sf_grown, basis_extended, options=self.simplex_options, hook=self._hook
            )
        except LPError:
            return solve_standard_form(
                sf_grown, options=self.simplex_options, hook=self._hook
            )

    def end_search(self) -> None:
        self.device.synchronize()

    @property
    def elapsed_seconds(self) -> float:
        return self.device.clock.now

    def report(self, result: MIPResult, strategy: Optional[str] = None) -> StrategyReport:
        """Summarize a finished search."""
        summary = self.device.summary()
        return StrategyReport(
            strategy=strategy or self.name,
            result=result,
            makespan_seconds=self.elapsed_seconds,
            h2d_transfers=int(summary["h2d"]),
            d2h_transfers=int(summary["d2h"]),
            bytes_moved=int(summary["bytes_moved"]),
            kernels=int(summary["kernels"]),
            mem_peak_bytes=int(summary["mem_peak_bytes"]),
            energy_joules=float(summary["energy_joules"]),
        )
