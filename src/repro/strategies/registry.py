"""Named strategy/engine registry behind :func:`repro.api.solve`.

Every way this repo can execute a branch-and-cut search — the free
host-side engine, the paper's four metered single-node strategies, and
any engine an experiment registers at runtime — lives here under a
string name.  :func:`repro.api.solve` resolves ``options.strategy``
through this registry, so the CLI, the serving layer, and the
benchmarks all construct engines the same way.

Names registered by default:

- ``"direct"`` — exact host-side :class:`~repro.mip.solver.ExecutionEngine`
  with no simulated device costs;
- ``"gpu_only"``, ``"cpu_orchestrated"``, ``"hybrid"``, ``"big_mip_4"``
  — the paper's §5 strategies (metered devices);
- ``"pdhg"``, ``"pdhg_gpu"`` — restarted first-order node LPs
  (:mod:`repro.strategies.pdhg_engine`), degrading
  pdhg_gpu → pdhg → direct so the chain passes through a CPU host;
- ``"portfolio"`` — the hybrid engine fronted by the batched
  primal-heuristic portfolio (:mod:`repro.mip.portfolio`), degrading
  portfolio → hybrid so a faulted device drops the heuristic phase.

``register_strategy`` lets experiments add their own factories;
re-registering an existing name requires ``overwrite=True`` so typos
don't silently shadow a built-in.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.lp.simplex import SimplexOptions
from repro.mip.solver import ExecutionEngine

#: An engine factory: simplex options -> fresh engine instance.
EngineFactory = Callable[[Optional[SimplexOptions]], ExecutionEngine]

_REGISTRY: Dict[str, EngineFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}
_FALLBACKS: Dict[str, Optional[str]] = {}


def register_strategy(
    name: str,
    factory: EngineFactory,
    description: str = "",
    overwrite: bool = False,
    fallback: Optional[str] = None,
) -> None:
    """Register an engine factory under ``name``.

    ``fallback`` names the strategy to degrade to when this one dies on
    an unrecoverable injected fault (see :mod:`repro.faults`); chains
    end at a strategy with no fallback (``"direct"`` touches no
    simulated device, so no device fault can reach it).
    """
    if name in _REGISTRY and not overwrite:
        raise ReproError(
            f"strategy {name!r} is already registered; pass overwrite=True"
        )
    _REGISTRY[name] = factory
    _DESCRIPTIONS[name] = description
    _FALLBACKS[name] = fallback


def fallback_for(name: str) -> Optional[str]:
    """The degradation target registered for ``name`` (None = end of chain)."""
    return _FALLBACKS.get(name)


def strategy_factory(name: str) -> EngineFactory:
    """The factory registered under ``name`` (raises on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown strategy {name!r}; choose from {available_strategies()}"
        ) from None


def engine_for(
    name: str, simplex_options: Optional[SimplexOptions] = None
) -> ExecutionEngine:
    """Construct a fresh engine for the named strategy."""
    return strategy_factory(name)(simplex_options)


def available_strategies() -> List[str]:
    """Sorted registered strategy names."""
    return sorted(_REGISTRY)


def describe_strategies() -> Dict[str, str]:
    """name -> one-line description for every registered strategy."""
    return {name: _DESCRIPTIONS.get(name, "") for name in available_strategies()}


def _register_builtins() -> None:
    # Imported lazily so the registry module stays import-light.
    from repro.device.spec import CPU_HOST, V100
    from repro.strategies.big_mip import BigMipEngine
    from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine
    from repro.strategies.gpu_only import GpuOnlyEngine
    from repro.strategies.hybrid import HybridEngine
    from repro.strategies.pdhg_engine import PdhgEngine
    from repro.strategies.portfolio_engine import PortfolioEngine

    register_strategy(
        "direct",
        lambda opts: ExecutionEngine(simplex_options=opts),
        "exact host-side engine, no simulated device costs",
    )
    register_strategy(
        "gpu_only",
        lambda opts: GpuOnlyEngine(simplex_options=opts),
        "everything on one GPU (paper §5, strategy 1)",
        fallback="cpu_orchestrated",
    )
    register_strategy(
        "cpu_orchestrated",
        lambda opts: CpuOrchestratedEngine(simplex_options=opts),
        "CPU drives the tree, GPU does LP linear algebra (strategy 2)",
        fallback="direct",
    )
    register_strategy(
        "hybrid",
        lambda opts: HybridEngine(simplex_options=opts),
        "small LPs stay on the CPU, large go to the GPU (strategy 3)",
        fallback="cpu_orchestrated",
    )
    register_strategy(
        "big_mip_4",
        lambda opts: BigMipEngine(num_devices=4, simplex_options=opts),
        "one big MIP spread across 4 devices (strategy 4)",
        fallback="hybrid",
    )
    register_strategy(
        "portfolio",
        lambda opts: PortfolioEngine(simplex_options=opts),
        "hybrid engine with a batched primal-heuristic portfolio phase",
        fallback="hybrid",
    )
    register_strategy(
        "pdhg",
        lambda opts: PdhgEngine(spec=CPU_HOST, simplex_options=opts),
        "restarted first-order (PDHG) node LPs priced on the host CPU",
        fallback="direct",
    )
    register_strategy(
        "pdhg_gpu",
        lambda opts: PdhgEngine(spec=V100, simplex_options=opts),
        "restarted first-order (PDHG) node LPs as fused matvec kernels on a V100",
        fallback="pdhg",
    )


_register_builtins()
