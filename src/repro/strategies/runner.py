"""One-call strategy runner (deprecated shim over :mod:`repro.api`).

``run_strategy`` predates the unified :func:`repro.api.solve` entry
point and is kept for the examples and benchmarks that still call it;
new code should go through :func:`repro.api.solve` with
``SolveOptions(strategy=...)``.  The :data:`STRATEGIES` dict is now a
read-only view of :mod:`repro.strategies.registry` (minus the host-only
``"direct"`` engine, which the old dict never contained).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.lp.simplex import SimplexOptions
from repro.mip.problem import MIPProblem
from repro.mip.solver import SolverOptions
from repro.strategies import registry
from repro.strategies.engine import MeteredEngine, StrategyReport

#: name -> engine factory(simplex_options); a registry view kept for
#: back-compat with pre-registry callers.
STRATEGIES: Dict[str, Callable[[Optional[SimplexOptions]], MeteredEngine]] = {
    name: registry.strategy_factory(name)
    for name in registry.available_strategies()
    if name != "direct"
}


def run_strategy(
    problem: MIPProblem,
    strategy: str,
    solver_options: Optional[SolverOptions] = None,
    engine: Optional[MeteredEngine] = None,
) -> StrategyReport:
    """Run one strategy on one problem; returns the metered report.

    Deprecated: route new code through :func:`repro.api.solve`.
    """
    from repro.api import SolveOptions, solve

    report = solve(
        problem,
        SolveOptions(
            strategy=strategy,
            solver=solver_options or SolverOptions(),
            engine=engine,
        ),
    )
    if report.strategy_report is None:
        raise TypeError(
            f"engine {type(engine).__name__} does not produce a StrategyReport"
        )
    return report.strategy_report
