"""One-call strategy runner used by examples and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ReproError
from repro.lp.simplex import SimplexOptions
from repro.mip.problem import MIPProblem
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.strategies.big_mip import BigMipEngine
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine
from repro.strategies.engine import MeteredEngine, StrategyReport
from repro.strategies.gpu_only import GpuOnlyEngine
from repro.strategies.hybrid import HybridEngine

#: name -> engine factory(simplex_options) for the single-node strategies.
STRATEGIES: Dict[str, Callable[[Optional[SimplexOptions]], MeteredEngine]] = {
    "gpu_only": lambda opts: GpuOnlyEngine(simplex_options=opts),
    "cpu_orchestrated": lambda opts: CpuOrchestratedEngine(simplex_options=opts),
    "hybrid": lambda opts: HybridEngine(simplex_options=opts),
    "big_mip_4": lambda opts: BigMipEngine(num_devices=4, simplex_options=opts),
}


def run_strategy(
    problem: MIPProblem,
    strategy: str,
    solver_options: Optional[SolverOptions] = None,
    engine: Optional[MeteredEngine] = None,
) -> StrategyReport:
    """Run one strategy on one problem; returns the metered report."""
    if engine is None:
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            raise ReproError(
                f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
            ) from None
        options = solver_options or SolverOptions()
        engine = factory(options.simplex)
    options = solver_options or SolverOptions()
    solver = BranchAndBoundSolver(problem, options, engine=engine)
    result = solver.solve()
    return engine.report(result, strategy=strategy)
