"""Metered strategy engines running PDHG node relaxations.

The §5 strategies all drive the *simplex* kernel stream — factorization,
triangular solves, pricing — whose serial depth is what makes small node
LPs latency-bound on a GPU.  :class:`PdhgEngine` swaps the node LP for
the restarted first-order engine (:mod:`repro.lp.pdhg`): per iteration
it launches exactly two matvec kernels plus elementwise updates, the
stream the GPU-LP literature builds PDLP from.

Two registry entries use it (see :mod:`repro.strategies.registry`):

- ``"pdhg_gpu"`` — node LPs as PDHG kernel streams on the simulated
  V100;
- ``"pdhg"`` — the same algorithm priced on the host CPU, which is also
  the degradation target of ``"pdhg_gpu"``, giving the required chain
  pdhg_gpu → pdhg → direct with a CPU fallback in the middle.

Correctness policy is inherited from
:meth:`repro.mip.solver.ExecutionEngine._pdhg_relaxation`: only eps-KKT
OPTIMAL outcomes are used (with tolerance-padded bounds); anything else
re-solves through the engine's metered simplex, so statuses stay exact.
"""

from __future__ import annotations

from typing import Optional

from repro.device import kernels as K
from repro.device.gpu import Device
from repro.device.spec import CPU_HOST, DeviceSpec
from repro.lp.pdhg import PDHGCostHook, PDHGOptions
from repro.lp.result import LPResult
from repro.lp.simplex import SimplexOptions
from repro.strategies.engine import MeteredEngine


class PdhgDeviceHook(PDHGCostHook):
    """Charge the PDHG kernel stream of one node LP to a device.

    One iteration = the ``Kᵀy`` / ``Kx̄`` matvec pair plus the two
    elementwise updates; a KKT check adds a matvec pair and a reduction.
    No factorizations, no triangular solves — no ``serial_depth=m``
    kernels at all, which is the whole point.
    """

    def __init__(self, device: Device):
        self.device = device

    def _matvec_pair(self, k: int, m: int, n: int) -> None:
        self.device._charge(K.gemv_kernel(n, m), None)
        self.device._charge(K.gemv_kernel(m, n), None)

    def on_setup(self, k: int, m: int, n: int) -> None:
        self._matvec_pair(k, m, n)

    def on_iteration(self, k: int, m: int, n: int) -> None:
        self._matvec_pair(k, m, n)
        self.device._charge(K.axpy_kernel(n), None)
        self.device._charge(K.axpy_kernel(m), None)

    def on_check(self, k: int, m: int, n: int) -> None:
        self._matvec_pair(k, m, n)
        self.device._charge(K.dot_kernel(max(m, n)), None)


class PdhgEngine(MeteredEngine):
    """Metered engine whose node LPs run restarted PDHG."""

    name = "pdhg"

    def __init__(
        self,
        spec: DeviceSpec = CPU_HOST,
        simplex_options: Optional[SimplexOptions] = None,
        pdhg_options: Optional[PDHGOptions] = None,
        cut_generation: str = "cpu",
    ):
        super().__init__(spec, simplex_options, cut_generation)
        self.node_lp = "pdhg"
        self.pdhg_options = pdhg_options or PDHGOptions()
        self._pdhg_hook = PdhgDeviceHook(self.device)

    def solve_relaxation(self, sf, warm_basis=None, probe=False) -> LPResult:
        # Probes (strong branching) want cheap truncated exact solves;
        # everything else tries the first-order engine first.
        if not probe:
            res = self._pdhg_relaxation(sf, hook=self._pdhg_hook)
            if res is not None:
                return res
            self.device.metrics.inc("pdhg.fallbacks")
        return super().solve_relaxation(sf, warm_basis=warm_basis, probe=probe)

    def end_search(self) -> None:
        # Surface the first-order work counters next to the kernel counts.
        for key, value in self.pdhg_stats.items():
            self.device.metrics.counters[f"pdhg.{key}"] = value
        super().end_search()
