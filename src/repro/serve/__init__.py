"""repro.serve — a batching solve service for the §5.5 traffic regime.

The paper argues the GPU's winning regime is *many small concurrent
problems*; this subsystem is the serving layer that exploits it: request
queueing, dynamic (size- and deadline-triggered) batching by shape
compatibility, an LRU result cache keyed by canonical problem
fingerprints, admission control with typed rejections, and per-stage
metrics.

Typical use::

    from repro.serve import BatchingPolicy, SolveService

    service = SolveService(policy=BatchingPolicy(max_batch_size=32))
    rid = service.submit(problem, at=0.0)
    responses = service.close()
"""

from repro.serve.batching import BatchingPolicy, BatchQueue, bucket_key
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.parametric import (
    ParametricAnswer,
    ParametricCache,
    ParametricEntry,
    structure_fingerprint,
)
from repro.serve.request import (
    Outcome,
    SolveRequest,
    SolveResponse,
    fingerprint,
)
from repro.serve.scheduler import WorkerPool
from repro.serve.service import SolveService
from repro.serve.workload import (
    lp_pool,
    mip_pool,
    replay,
    run_load,
    synthetic_stream,
)

__all__ = [
    "BatchingPolicy",
    "BatchQueue",
    "bucket_key",
    "CacheEntry",
    "ResultCache",
    "ParametricAnswer",
    "ParametricCache",
    "ParametricEntry",
    "structure_fingerprint",
    "Outcome",
    "SolveRequest",
    "SolveResponse",
    "fingerprint",
    "WorkerPool",
    "SolveService",
    "lp_pool",
    "mip_pool",
    "replay",
    "run_load",
    "synthetic_stream",
]
