"""Synthetic request streams and load-sweep helpers for the service.

The serving benchmarks (S1), the ``repro serve-bench`` CLI subcommand,
and the ``serve_traffic`` example all drive the service through these
helpers: seeded problem pools, deterministic (optionally bursty)
arrival processes, a replay loop that respects admission rejections,
and a one-call :func:`run_load` that returns the per-stage summary a
throughput table needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.spec import DeviceSpec, V100
from repro.errors import ServiceSaturated
from repro.problems.knapsack import generate_knapsack
from repro.serve.batching import BatchingPolicy
from repro.serve.request import Problem, SolveResponse
from repro.serve.service import SolveService

#: One stream element: (arrival time, problem).
StreamItem = Tuple[float, Problem]


def lp_pool(num_distinct: int, num_items: int = 12, seed: int = 0) -> List[Problem]:
    """Distinct small-LP pool: knapsack relaxations (the §5.5 workload)."""
    return [
        generate_knapsack(num_items, seed=seed * 1000 + i).relaxation()
        for i in range(num_distinct)
    ]


def mip_pool(num_distinct: int, num_items: int = 10, seed: int = 0) -> List[Problem]:
    """Distinct small-MIP pool: 0/1 knapsacks."""
    return [
        generate_knapsack(num_items, seed=seed * 1000 + i)
        for i in range(num_distinct)
    ]


def synthetic_stream(
    problems: Sequence[Problem],
    num_requests: int,
    mean_interarrival: float,
    seed: int = 0,
    burst_length: int = 1,
    burst_gap: float = 0.0,
) -> List[StreamItem]:
    """Deterministic arrival stream drawing problems uniformly from a pool.

    Interarrivals are exponential with the given mean; with
    ``burst_length > 1`` every ``burst_length``-th request is preceded by
    an extra ``burst_gap`` idle period, which produces the on/off bursty
    shape real traffic has.  Duplicate pressure comes from the pool
    size: ``num_requests >> len(problems)`` makes a duplicate-heavy
    stream for cache experiments.
    """
    rng = np.random.default_rng(seed)
    t = 0.0
    out: List[StreamItem] = []
    for i in range(num_requests):
        t += float(rng.exponential(mean_interarrival))
        if burst_length > 1 and i and i % burst_length == 0:
            t += burst_gap
        problem = problems[int(rng.integers(len(problems)))]
        out.append((t, problem))
    return out


def replay(
    service: SolveService,
    stream: Sequence[StreamItem],
    timeout: Optional[float] = None,
) -> Tuple[List[SolveResponse], int]:
    """Submit a stream in arrival order and drain the service.

    Saturation rejections are counted, not raised.  Returns
    ``(responses, num_rejected)``.
    """
    rejected = 0
    for at, problem in stream:
        try:
            service.submit(problem, at=at, timeout=timeout)
        except ServiceSaturated:
            rejected += 1
    responses = service.drain()
    return responses, rejected


def run_load(
    stream: Sequence[StreamItem],
    policy: Optional[BatchingPolicy] = None,
    num_workers: int = 2,
    spec: DeviceSpec = V100,
    cache_capacity: int = 1024,
    timeout: Optional[float] = None,
) -> Dict:
    """Replay a stream through a fresh service; return the summary row.

    The summary carries throughput (completed requests per simulated
    second of makespan) plus the per-stage means the S1 tables report,
    and the service itself for deeper inspection.
    """
    service = SolveService(
        policy=policy,
        num_workers=num_workers,
        spec=spec,
        cache_capacity=cache_capacity,
    )
    responses, rejected = replay(service, stream, timeout=timeout)
    completed = [r for r in responses if r.ok]
    makespan = service.makespan
    n_done = len(completed)

    def mean(values: List[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    return {
        "offered": len(stream),
        "completed": n_done,
        "rejected": rejected,
        "timeouts": service.metrics.count("serve.timeouts"),
        "cache_hits": service.metrics.count("serve.cache.hits"),
        "coalesced": service.metrics.count("serve.coalesced"),
        "batches": service.metrics.count("serve.batches"),
        "makespan": makespan,
        "throughput": n_done / makespan if makespan > 0 else 0.0,
        "mean_queue_wait": mean([r.queue_wait for r in completed]),
        "mean_assembly": mean([r.assembly_wait for r in completed]),
        "mean_device": mean([r.device_time for r in completed if not r.cached]),
        "mean_latency": mean([r.latency for r in completed]),
        "p50_latency": service.metrics.percentile("serve.latency", 50.0),
        "p95_latency": service.metrics.percentile("serve.latency", 95.0),
        "p99_latency": service.metrics.percentile("serve.latency", 99.0),
        "dedup_rate": service.stats()["derived"]["dedup_rate"],
        "service": service,
    }
