"""LRU result cache keyed by canonical problem fingerprints.

Duplicate solve requests are the cheapest traffic a service can carry:
the §5.5 regime (huge numbers of small independent problems) is exactly
where request streams repeat themselves.  The cache stores the solver
outcome of every completed *primary* solve; a later identical request is
answered from the cache without ever reaching the batching queue or the
device.

Entries carry the simulated time their producing solve completed
(``ready_time``): a duplicate arriving *before* its twin's batch has
finished must wait for that result, so a cache hit's completion time is
``max(arrival, ready_time) + lookup cost`` — no time travel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ServiceError
from repro.serve.request import Outcome

#: Simulated cost of one fingerprint lookup (hash + host map probe).
CACHE_LOOKUP_SECONDS = 1e-6


@dataclass
class CacheEntry:
    """Stored outcome of one completed solve."""

    outcome: Outcome
    solver_status: str
    objective: float
    x: Optional[np.ndarray]
    #: Simulated time the producing solve completed.
    ready_time: float
    #: Certified dual bound (heuristic answers replay their gap).
    best_bound: float = float("inf")
    #: Relative optimality gap at completion.
    gap: float = float("inf")
    #: Solve mode that produced this entry (see :mod:`repro.api`).
    mode: str = "exact"


class ResultCache:
    """Bounded LRU map ``fingerprint → CacheEntry``."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ServiceError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # Pure membership probe: does not count as a hit or refresh LRU.
        return key in self._entries

    def get(self, key: str) -> Optional[CacheEntry]:
        """Look up a fingerprint; counts the hit/miss and refreshes LRU."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        """Insert or refresh an entry, evicting the LRU tail if needed."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
