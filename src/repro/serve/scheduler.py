"""Worker pool: dispatches assembled batches onto a simulated device group.

Each worker is one member of a :class:`repro.device.group.DeviceGroup`.
Batches go to the least-loaded device (the one whose clock is furthest
behind), which keeps every device busy under load — the serving analogue
of keeping multiple streams occupied (§5.5).

Two execution paths, chosen by the batch's compatibility class:

- **lockstep** — same-shape inequality LPs run as one MAGMA-style
  batched kernel sequence via
  :func:`repro.lp.batch_simplex.solve_lp_batch_on_device`;
- **concurrent** — MIPs (each itself a batched-node B&B via
  :class:`repro.mip.batch_solver.BatchedNodeSolver`) and non-lockstep
  LPs run as concurrent per-member kernel streams; the batch completes
  at ``max(span, total work / max_concurrent_kernels)``, the same
  work-and-span occupancy model :meth:`Device.synchronize` uses.

Numerics are exact on both paths; only the cost accounting differs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.device.group import DeviceGroup
from repro.device.gpu import Device
from repro.device.spec import DeviceSpec, V100
from repro.errors import SolverError
from repro.lp.batch_simplex import solve_lp_batch_on_device
from repro.lp.result import LPStatus
from repro.metrics import Metrics
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.serve.request import Outcome, SolveRequest, SolveResponse

#: Solver statuses that count as a terminal serving answer.
_TERMINAL_LP = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)
_TERMINAL_MIP = (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED)


class WorkerPool:
    """``num_workers`` devices executing batches for the solve service."""

    def __init__(
        self,
        num_workers: int = 2,
        spec: DeviceSpec = V100,
        metrics: Optional[Metrics] = None,
        mip_node_batch: int = 16,
    ):
        self.metrics = metrics if metrics is not None else Metrics()
        self.group = DeviceGroup(num_workers, spec=spec, metrics=self.metrics)
        self.spec = spec
        #: Node-level batch size for MIP members (BatchedNodeSolver).
        self.mip_node_batch = mip_node_batch
        for rank in range(self.group.size):
            self.group.device(rank).obs_track = f"worker{rank}"

    @property
    def size(self) -> int:
        """Number of workers."""
        return self.group.size

    @property
    def makespan(self) -> float:
        """Slowest worker's simulated clock."""
        return self.group.makespan

    def dispatch(self, batch: List[SolveRequest], when: float) -> List[SolveResponse]:
        """Execute one compatibility-bucket batch; returns member responses."""
        rank = self.group.least_loaded()
        device = self.group.device(rank)
        start = max(when, device.clock.now)
        device.clock.advance_to(start)

        lockstep = batch[0].kind == "lp" and all(
            req.kind == "lp" for req in batch
        ) and self._lockstep_capable(batch)
        if lockstep:
            outcomes = self._run_lockstep(device, batch)
            self.metrics.inc("serve.dispatch.lockstep")
        else:
            outcomes = self._run_concurrent(device, batch)
            self.metrics.inc("serve.dispatch.concurrent")
        completion = device.clock.now

        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                "serve.batch", start, completion - start,
                device.obs_track, category="serve",
                batch_size=len(batch), worker=rank,
                path="lockstep" if lockstep else "concurrent",
            )

        self.metrics.inc("serve.batches")
        self.metrics.inc("serve.batch_members", len(batch))
        self.metrics.inc(f"serve.worker{rank}.batches")
        self.metrics.add_time("time.serve.device", completion - start)

        responses = []
        for req, (outcome, status, objective, x) in zip(batch, outcomes):
            responses.append(
                SolveResponse(
                    request_id=req.request_id,
                    fingerprint=req.fingerprint,
                    outcome=outcome,
                    solver_status=status,
                    objective=objective,
                    x=x,
                    arrival_time=req.arrival_time,
                    dispatch_time=when,
                    start_time=start,
                    completion_time=completion,
                    batch_size=len(batch),
                    worker=rank,
                    trace_id=req.trace_id,
                )
            )
        return responses

    # -- execution paths ------------------------------------------------------

    @staticmethod
    def _lockstep_capable(batch: List[SolveRequest]) -> bool:
        # The bucketing layer routes non-lockstep LPs to "lp-solo"
        # buckets; this re-check keeps the scheduler safe standalone.
        from repro.lp.batch_simplex import lockstep_compatible

        return all(lockstep_compatible(req.problem) for req in batch)

    def _run_lockstep(
        self, device: Device, batch: List[SolveRequest]
    ) -> List[Tuple[Outcome, str, float, Optional[np.ndarray]]]:
        res = solve_lp_batch_on_device([req.problem for req in batch], device)
        out = []
        for t in range(len(batch)):
            status = res.statuses[t]
            outcome = Outcome.OK if status in _TERMINAL_LP else Outcome.FAILED
            x = res.x[t] if status is LPStatus.OPTIMAL else None
            objective = float(res.objectives[t])
            out.append((outcome, status.value, objective, x))
        return out

    def _run_concurrent(
        self, device: Device, batch: List[SolveRequest]
    ) -> List[Tuple[Outcome, str, float, Optional[np.ndarray]]]:
        """Members as concurrent streams: work-and-span completion model."""
        out = []
        busy_times = []
        tracer = obs.active()
        base = device.clock.now
        for req in batch:
            scratch = Device(self.spec)
            if tracer is not None:
                # Align the scratch timeline with the batch start so the
                # member's kernel spans land at their real positions, and
                # attribute them to the executing worker's track.
                scratch.clock.advance_to(base)
                scratch.obs_track = device.obs_track
            member_start = scratch.clock.now
            try:
                if isinstance(req.problem, MIPProblem):
                    result = self._solve_mip(req.problem, scratch)
                else:
                    result = self._solve_solo_lp(req.problem, scratch)
            except SolverError as exc:
                result = (Outcome.FAILED, type(exc).__name__, float("nan"), None)
            busy_times.append(scratch.clock.now - member_start)
            device.metrics.merge(scratch.metrics)
            out.append(result)
        span = max(busy_times) if busy_times else 0.0
        work = sum(busy_times)
        elapsed = max(span, work / self.spec.max_concurrent_kernels)
        device.clock.advance(elapsed)
        return out

    def _solve_mip(self, problem: MIPProblem, scratch: Device):
        from repro.api import SolveOptions, solve

        report = solve(
            problem,
            SolveOptions(device=scratch, mip_node_batch=self.mip_node_batch),
        )
        terminal = report.result is not None and report.result.status in _TERMINAL_MIP
        outcome = Outcome.OK if terminal else Outcome.FAILED
        return (outcome, report.status, report.objective, report.x)

    def _solve_solo_lp(self, problem, scratch: Device):
        from repro.api import SolveOptions, solve

        report = solve(problem, SolveOptions(device=scratch))
        terminal = (
            report.lp_result is not None and report.lp_result.status in _TERMINAL_LP
        )
        outcome = Outcome.OK if terminal else Outcome.FAILED
        return (outcome, report.status, report.objective, report.x)
