"""Worker pool: dispatches assembled batches onto a simulated device group.

Each worker is one member of a :class:`repro.device.group.DeviceGroup`.
Batches go to the least-loaded device (the one whose clock is furthest
behind), which keeps every device busy under load — the serving analogue
of keeping multiple streams occupied (§5.5).

Two execution paths, chosen by the batch's compatibility class:

- **lockstep** — same-shape inequality LPs run as one MAGMA-style
  batched kernel sequence via
  :func:`repro.lp.batch_simplex.solve_lp_batch_on_device`;
- **concurrent** — MIPs (each itself a batched-node B&B via
  :class:`repro.mip.batch_solver.BatchedNodeSolver`) and non-lockstep
  LPs run as concurrent per-member kernel streams; the batch completes
  at ``max(span, total work / max_concurrent_kernels)``, the same
  work-and-span occupancy model :meth:`Device.synchronize` uses.

Numerics are exact on both paths; only the cost accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.device.group import DeviceGroup
from repro.device.gpu import Device
from repro.device.spec import DeviceSpec, V100
from repro.errors import FaultError, SolverError
from repro.faults.injector import active as fault_active
from repro.guard.budget import DeadlineBudget, GuardContext, guarding
from repro.lp.batch_simplex import solve_lp_batch_on_device
from repro.lp.result import LPResult, LPStatus
from repro.metrics import Metrics
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.serve.request import Outcome, SolveRequest, SolveResponse

#: Solver statuses that count as a terminal serving answer.
_TERMINAL_LP = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)
_TERMINAL_MIP = (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED)
#: LP statuses that still carry a usable anytime answer.
_ANYTIME_LP = (LPStatus.ITERATION_LIMIT, LPStatus.TIME_LIMIT)


@dataclass
class DispatchOutcome:
    """What one dispatch round produced (and what it lost).

    ``completed``/``responses`` are the members that got an answer,
    aligned pairwise.  ``requeue`` are the members in flight when the
    worker crashed (or whose solve died on an unrecoverable injected
    fault) — the service re-dispatches exactly these, hedging away from
    ``worker``.  ``pending_faults`` counts injected faults not yet
    resolved; the service resolves them recovered (requeue drained) or
    escaped (retry budget exhausted).
    """

    completed: List[SolveRequest] = field(default_factory=list)
    responses: List[SolveResponse] = field(default_factory=list)
    requeue: List[SolveRequest] = field(default_factory=list)
    worker: int = -1
    completion: float = 0.0
    pending_faults: int = 0


class WorkerPool:
    """``num_workers`` devices executing batches for the solve service."""

    def __init__(
        self,
        num_workers: int = 2,
        spec: DeviceSpec = V100,
        metrics: Optional[Metrics] = None,
        mip_node_batch: int = 16,
    ):
        self.metrics = metrics if metrics is not None else Metrics()
        self.group = DeviceGroup(num_workers, spec=spec, metrics=self.metrics)
        self.spec = spec
        #: Node-level batch size for MIP members (BatchedNodeSolver).
        self.mip_node_batch = mip_node_batch
        for rank in range(self.group.size):
            self.group.device(rank).obs_track = f"worker{rank}"

    @property
    def size(self) -> int:
        """Number of workers."""
        return self.group.size

    @property
    def makespan(self) -> float:
        """Slowest worker's simulated clock."""
        return self.group.makespan

    def dispatch(
        self,
        batch: List[SolveRequest],
        when: float,
        avoid: Optional[int] = None,
    ) -> DispatchOutcome:
        """Execute one compatibility-bucket batch on the best worker.

        ``avoid`` excludes one rank from selection — the service's
        hedged re-dispatch after a crash sends the retry to a different
        worker when the pool has one.
        """
        rank = self._pick_worker(avoid)
        device = self.group.device(rank)
        start = max(when, device.clock.now)
        device.clock.advance_to(start)

        # Deadline-carrying members need their own guard context, so
        # they take the concurrent per-member path, never the fused one.
        lockstep = batch[0].kind == "lp" and all(
            req.kind == "lp" and req.solve_deadline is None for req in batch
        ) and self._lockstep_capable(batch)

        injector = fault_active()
        crash_at: Optional[int] = None
        if injector is not None:
            crash_at = injector.worker_crash(len(batch), lockstep)
            if crash_at is not None:
                self.metrics.inc("serve.worker_crashes")
                obs.event(
                    "fault.worker_crash", category="fault",
                    worker=rank, batch_size=len(batch), lost_from=crash_at,
                )

        pending_faults = 1 if crash_at is not None else 0
        if lockstep:
            completed = list(batch)
            requeue: List[SolveRequest] = []
            try:
                outcomes = self._run_lockstep(device, batch)
            except FaultError as exc:
                # The fused kernel sequence died: every member is lost.
                pending_faults += exc.fault_count
                completed, outcomes, requeue = [], [], list(batch)
            else:
                if crash_at is not None:
                    # The worker died after the run: answers are lost,
                    # the simulated time it burned is not.
                    completed, outcomes, requeue = [], [], list(batch)
            self.metrics.inc("serve.dispatch.lockstep")
        else:
            completed, outcomes, requeue, member_faults = self._run_concurrent(
                device, batch, crash_at
            )
            pending_faults += member_faults
            self.metrics.inc("serve.dispatch.concurrent")
        completion = device.clock.now

        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                "serve.batch", start, completion - start,
                device.obs_track, category="serve",
                batch_size=len(batch), worker=rank,
                path="lockstep" if lockstep else "concurrent",
                lost=len(requeue),
            )

        self.metrics.inc("serve.batches")
        self.metrics.inc("serve.batch_members", len(batch))
        self.metrics.inc(f"serve.worker{rank}.batches")
        self.metrics.add_time("time.serve.device", completion - start)

        responses = []
        for req, (outcome, status, objective, x, bound, gap, lp_result) in zip(
            completed, outcomes
        ):
            responses.append(
                SolveResponse(
                    request_id=req.request_id,
                    fingerprint=req.fingerprint,
                    outcome=outcome,
                    solver_status=status,
                    objective=objective,
                    x=x,
                    best_bound=bound,
                    gap=gap,
                    mode=req.mode,
                    lp_result=lp_result,
                    arrival_time=req.arrival_time,
                    dispatch_time=when,
                    start_time=start,
                    completion_time=completion,
                    batch_size=len(batch),
                    worker=rank,
                    trace_id=req.trace_id,
                )
            )
        return DispatchOutcome(
            completed=completed,
            responses=responses,
            requeue=requeue,
            worker=rank,
            completion=completion,
            pending_faults=pending_faults,
        )

    def _pick_worker(self, avoid: Optional[int] = None) -> int:
        """Least-loaded rank, excluding ``avoid`` when another exists."""
        ranks = list(range(self.group.size))
        candidates = [r for r in ranks if r != avoid] or ranks
        return min(candidates, key=lambda r: (self.group.device(r).clock.now, r))

    # -- execution paths ------------------------------------------------------

    @staticmethod
    def _lockstep_capable(batch: List[SolveRequest]) -> bool:
        # The bucketing layer routes non-lockstep LPs to "lp-solo"
        # buckets; this re-check keeps the scheduler safe standalone.
        from repro.lp.batch_simplex import lockstep_compatible

        return all(lockstep_compatible(req.problem) for req in batch)

    def _run_lockstep(
        self, device: Device, batch: List[SolveRequest]
    ) -> List[Tuple[Outcome, str, float, Optional[np.ndarray], float, float, object]]:
        res = solve_lp_batch_on_device([req.problem for req in batch], device)
        out = []
        for t in range(len(batch)):
            status = res.statuses[t]
            outcome = Outcome.OK if status in _TERMINAL_LP else Outcome.FAILED
            x = res.x[t] if status is LPStatus.OPTIMAL else None
            objective = float(res.objectives[t])
            bound = objective if status is LPStatus.OPTIMAL else float("inf")
            gap = 0.0 if status is LPStatus.OPTIMAL else float("inf")
            lp_result = None
            if status is LPStatus.OPTIMAL and res.bases is not None:
                # The lockstep tableau form coincides with the member's
                # own standard form, so this result seeds the parametric
                # re-solve cache (the seeder re-audits before trusting it).
                lp_result = LPResult(
                    status=status,
                    objective=objective,
                    x=x,
                    duals=res.duals[t],
                    iterations=res.iterations,
                    basis=res.bases[t].copy(),
                    x_standard=res.x_standard[t],
                )
            out.append(
                (outcome, status.value, objective, x, bound, gap, lp_result)
            )
        return out

    def _run_concurrent(
        self,
        device: Device,
        batch: List[SolveRequest],
        crash_at: Optional[int] = None,
    ) -> Tuple[
        List[SolveRequest],
        List[tuple],
        List[SolveRequest],
        int,
    ]:
        """Members as concurrent streams: work-and-span completion model.

        ``crash_at`` marks the first member lost to a worker crash —
        members from that index on are requeued untouched.  A member
        whose own solve dies on an unrecoverable injected fault is also
        requeued (its wasted kernel time still charges the device).
        Returns ``(completed, outcomes, requeue, pending_faults)``.
        """
        completed: List[SolveRequest] = []
        out: List[tuple] = []
        requeue: List[SolveRequest] = []
        pending_faults = 0
        busy_times = []
        tracer = obs.active()
        base = device.clock.now
        limit = len(batch) if crash_at is None else crash_at
        for i, req in enumerate(batch):
            if i >= limit:
                requeue.append(req)
                continue
            scratch = Device(self.spec)
            if tracer is not None:
                # Align the scratch timeline with the batch start so the
                # member's kernel spans land at their real positions, and
                # attribute them to the executing worker's track.
                scratch.clock.advance_to(base)
                scratch.obs_track = device.obs_track
            member_start = scratch.clock.now
            try:
                result = self._solve_member(req, scratch)
            except FaultError as exc:
                pending_faults += exc.fault_count
                busy_times.append(scratch.clock.now - member_start)
                device.metrics.merge(scratch.metrics)
                requeue.append(req)
                continue
            except SolverError as exc:
                result = (
                    Outcome.FAILED, type(exc).__name__, float("nan"), None,
                    float("inf"), float("inf"), None,
                )
            busy_times.append(scratch.clock.now - member_start)
            device.metrics.merge(scratch.metrics)
            completed.append(req)
            out.append(result)
        span = max(busy_times) if busy_times else 0.0
        work = sum(busy_times)
        elapsed = max(span, work / self.spec.max_concurrent_kernels)
        device.clock.advance(elapsed)
        return completed, out, requeue, pending_faults

    def _solve_member(self, req: SolveRequest, scratch: Device):
        """One member solve, under its deadline budget when it has one.

        The budget's clock is the scratch device's *simulated* clock, so
        expiry tracks metered kernel time, not host wall time — the
        member stops mid-search with an anytime answer once its charged
        device seconds exceed ``solve_deadline``.
        """
        if isinstance(req.problem, MIPProblem):
            run = lambda: self._solve_mip(
                req.problem, scratch, mode=req.mode, gap_target=req.gap_target
            )
        else:
            run = lambda: self._solve_solo_lp(req.problem, scratch)
        if req.solve_deadline is None:
            return run()
        ctx = GuardContext(
            budgets=[
                DeadlineBudget(
                    req.solve_deadline,
                    clock=lambda: scratch.clock.now,
                    label="serve-sim",
                )
            ]
        )
        with guarding(ctx):
            result = run()
        if ctx.deadline_hit():
            self.metrics.inc("serve.deadline_hits")
        return result

    def _solve_mip(
        self,
        problem: MIPProblem,
        scratch: Device,
        mode: str = "exact",
        gap_target: Optional[float] = None,
    ):
        from repro.api import SolveOptions, solve

        report = solve(
            problem,
            SolveOptions(
                device=scratch,
                mip_node_batch=self.mip_node_batch,
                mode=mode,
                gap_target=gap_target,
            ),
        )
        if report.result is None:
            # heuristic_only: no tree search ran.  A certified incumbent
            # (or a root-relaxation infeasibility proof) is the answer
            # the client asked for; an empty portfolio is a failure.
            outcome = (
                Outcome.OK
                if report.status in ("heuristic", "infeasible")
                else Outcome.FAILED
            )
        else:
            status = report.result.status
            if status in _TERMINAL_MIP:
                outcome = Outcome.OK
            elif status.anytime:
                outcome = Outcome.PARTIAL
            else:
                outcome = Outcome.FAILED
        return (
            outcome, report.status, report.objective, report.x,
            report.best_bound, report.gap, None,
        )

    def _solve_solo_lp(self, problem, scratch: Device):
        from repro.api import SolveOptions, solve

        report = solve(problem, SolveOptions(device=scratch))
        status = report.lp_result.status if report.lp_result is not None else None
        if status in _TERMINAL_LP:
            outcome = Outcome.OK
        elif status in _ANYTIME_LP:
            outcome = Outcome.PARTIAL
        else:
            outcome = Outcome.FAILED
        bound = report.objective if status is LPStatus.OPTIMAL else float("inf")
        gap = 0.0 if status is LPStatus.OPTIMAL else float("inf")
        return (
            outcome, report.status, report.objective, report.x, bound, gap,
            report.lp_result,
        )
