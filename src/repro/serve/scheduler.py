"""Worker pool: dispatches assembled batches onto a simulated device group.

Each worker is one member of a :class:`repro.device.group.DeviceGroup`.
Batches go to the least-loaded device (the one whose clock is furthest
behind), which keeps every device busy under load — the serving analogue
of keeping multiple streams occupied (§5.5).

Two execution paths, chosen by the batch's compatibility class:

- **lockstep** — same-shape inequality LPs run as one MAGMA-style
  batched kernel sequence via
  :func:`repro.lp.batch_simplex.solve_lp_batch_on_device`;
- **concurrent** — MIPs (each itself a batched-node B&B via
  :class:`repro.mip.batch_solver.BatchedNodeSolver`) and non-lockstep
  LPs run as concurrent per-member kernel streams; the batch completes
  at ``max(span, total work / max_concurrent_kernels)``, the same
  work-and-span occupancy model :meth:`Device.synchronize` uses.

Numerics are exact on both paths; only the cost accounting differs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.device.group import DeviceGroup
from repro.device.gpu import Device
from repro.device import kernels as K
from repro.device.spec import DeviceSpec, V100
from repro.errors import SolverError
from repro.lp.batch_simplex import solve_lp_batch_on_device
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_standard_form
from repro.metrics import Metrics
from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.serve.request import Outcome, SolveRequest, SolveResponse

#: Solver statuses that count as a terminal serving answer.
_TERMINAL_LP = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)
_TERMINAL_MIP = (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE, MIPStatus.UNBOUNDED)


class WorkerPool:
    """``num_workers`` devices executing batches for the solve service."""

    def __init__(
        self,
        num_workers: int = 2,
        spec: DeviceSpec = V100,
        metrics: Optional[Metrics] = None,
        mip_node_batch: int = 16,
    ):
        self.metrics = metrics if metrics is not None else Metrics()
        self.group = DeviceGroup(num_workers, spec=spec, metrics=self.metrics)
        self.spec = spec
        #: Node-level batch size for MIP members (BatchedNodeSolver).
        self.mip_node_batch = mip_node_batch

    @property
    def size(self) -> int:
        """Number of workers."""
        return self.group.size

    @property
    def makespan(self) -> float:
        """Slowest worker's simulated clock."""
        return self.group.makespan

    def dispatch(self, batch: List[SolveRequest], when: float) -> List[SolveResponse]:
        """Execute one compatibility-bucket batch; returns member responses."""
        rank = self.group.least_loaded()
        device = self.group.device(rank)
        start = max(when, device.clock.now)
        device.clock.advance_to(start)

        lockstep = batch[0].kind == "lp" and all(
            req.kind == "lp" for req in batch
        ) and self._lockstep_capable(batch)
        if lockstep:
            outcomes = self._run_lockstep(device, batch)
            self.metrics.inc("serve.dispatch.lockstep")
        else:
            outcomes = self._run_concurrent(device, batch)
            self.metrics.inc("serve.dispatch.concurrent")
        completion = device.clock.now

        self.metrics.inc("serve.batches")
        self.metrics.inc("serve.batch_members", len(batch))
        self.metrics.inc(f"serve.worker{rank}.batches")
        self.metrics.add_time("time.serve.device", completion - start)

        responses = []
        for req, (outcome, status, objective, x) in zip(batch, outcomes):
            responses.append(
                SolveResponse(
                    request_id=req.request_id,
                    fingerprint=req.fingerprint,
                    outcome=outcome,
                    solver_status=status,
                    objective=objective,
                    x=x,
                    arrival_time=req.arrival_time,
                    dispatch_time=when,
                    start_time=start,
                    completion_time=completion,
                    batch_size=len(batch),
                    worker=rank,
                )
            )
        return responses

    # -- execution paths ------------------------------------------------------

    @staticmethod
    def _lockstep_capable(batch: List[SolveRequest]) -> bool:
        # The bucketing layer routes non-lockstep LPs to "lp-solo"
        # buckets; this re-check keeps the scheduler safe standalone.
        from repro.lp.batch_simplex import lockstep_compatible

        return all(lockstep_compatible(req.problem) for req in batch)

    def _run_lockstep(
        self, device: Device, batch: List[SolveRequest]
    ) -> List[Tuple[Outcome, str, float, Optional[np.ndarray]]]:
        res = solve_lp_batch_on_device([req.problem for req in batch], device)
        out = []
        for t in range(len(batch)):
            status = res.statuses[t]
            outcome = Outcome.OK if status in _TERMINAL_LP else Outcome.FAILED
            x = res.x[t] if status is LPStatus.OPTIMAL else None
            objective = float(res.objectives[t])
            out.append((outcome, status.value, objective, x))
        return out

    def _run_concurrent(
        self, device: Device, batch: List[SolveRequest]
    ) -> List[Tuple[Outcome, str, float, Optional[np.ndarray]]]:
        """Members as concurrent streams: work-and-span completion model."""
        out = []
        busy_times = []
        for req in batch:
            scratch = Device(self.spec)
            try:
                if isinstance(req.problem, MIPProblem):
                    result = self._solve_mip(req.problem, scratch)
                else:
                    result = self._solve_solo_lp(req.problem, scratch)
            except SolverError as exc:
                result = (Outcome.FAILED, type(exc).__name__, float("nan"), None)
            busy_times.append(scratch.clock.now)
            device.metrics.merge(scratch.metrics)
            out.append(result)
        span = max(busy_times) if busy_times else 0.0
        work = sum(busy_times)
        elapsed = max(span, work / self.spec.max_concurrent_kernels)
        device.clock.advance(elapsed)
        return out

    def _solve_mip(self, problem: MIPProblem, scratch: Device):
        solver = BatchedNodeSolver(
            problem,
            options=BatchedSolverOptions(batch_size=self.mip_node_batch),
            device=scratch,
        )
        result = solver.solve()
        outcome = Outcome.OK if result.status in _TERMINAL_MIP else Outcome.FAILED
        return (outcome, result.status.value, float(result.objective), result.x)

    def _solve_solo_lp(self, problem, scratch: Device):
        sf = problem.to_standard_form()
        result = solve_standard_form(sf)
        # One small-LP kernel stream (factor + per-iteration solves),
        # the serial shape E7 measures.
        scratch._charge(K.getrf_kernel(sf.m), None)
        for _ in range(max(1, result.iterations)):
            scratch._charge(K.trsv_kernel(sf.m), None)
            scratch._charge(K.trsv_kernel(sf.m), None)
            scratch._charge(K.gemv_kernel(sf.n, sf.m), None)
        outcome = Outcome.OK if result.status in _TERMINAL_LP else Outcome.FAILED
        x = None
        if result.status is LPStatus.OPTIMAL and result.x_standard is not None:
            x = sf.recover_x(result.x_standard)
        return (outcome, result.status.value, float(result.objective), x)
