"""The batching MIP/LP solve service.

:class:`SolveService` is the subsystem that turns the repo's batch
solvers into a *system* for the paper's §5.5 winning regime — a heavy
stream of small independent problems.  It accepts time-ordered solve
requests, answers duplicates from an LRU result cache (or coalesces them
onto an identical queued request), groups the rest into
shape-compatibility buckets, flushes size- or deadline-triggered batches
onto a worker pool of simulated devices, and applies admission control
when the queue is full.

Everything runs in *simulated* time, driven by request arrival times:
``submit(problem, at=t)`` first processes every deadline flush and
request timeout due before ``t``, then admits (or rejects) the new
request.  ``drain()`` / ``close()`` flush all partial batches.  The
whole pipeline is deterministic — the same request stream produces the
same responses and the same simulated-time totals.

Per-stage observability lands in one :class:`repro.metrics.Metrics`
instance: queue wait, batch assembly, device time, cache hits/misses,
coalesced duplicates, rejections, timeouts, and per-worker batch counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import obs
from repro.device.spec import DeviceSpec, V100
from repro.errors import ServiceClosed, ServiceError, ServiceSaturated
from repro.faults.injector import active as fault_active
from repro.faults.plan import SITE_WORKER
from repro.metrics import Metrics
from repro.serve.batching import BatchingPolicy, BatchQueue, BucketKey
from repro.lp.problem import LinearProgram
from repro.serve.cache import CACHE_LOOKUP_SECONDS, CacheEntry, ResultCache
from repro.serve.parametric import ParametricCache
from repro.serve.request import (
    VALID_MODES,
    Outcome,
    Problem,
    SolveRequest,
    SolveResponse,
    fingerprint,
)
from repro.serve.scheduler import WorkerPool


class SolveService:
    """Queueing + dynamic batching + caching front-end over a device group."""

    def __init__(
        self,
        policy: Optional[BatchingPolicy] = None,
        num_workers: int = 2,
        spec: DeviceSpec = V100,
        cache_capacity: int = 1024,
        metrics: Optional[Metrics] = None,
        parametric_capacity: int = 128,
    ):
        self.policy = policy if policy is not None else BatchingPolicy()
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = WorkerPool(num_workers, spec=spec, metrics=self.metrics)
        self.cache = ResultCache(cache_capacity)
        #: Heuristic-mode answers live in their own cache: a certified
        #: incumbent with a gap must never be replayed as an exact
        #: optimum (and vice versa the exact cache stays heuristic-free).
        self.heuristic_cache = ResultCache(cache_capacity)
        #: Near-duplicate LP answering (0 capacity disables it).
        self.parametric = ParametricCache(parametric_capacity)
        self.queue = BatchQueue(self.policy)
        #: Service-side simulated clock (max processed event time).
        self.now = 0.0
        self.closed = False
        self._next_id = 0
        self._responses: Dict[int, SolveResponse] = {}
        #: cache key (fingerprint + mode channel) → queued primary
        #: request (coalescing target).
        self._primaries: Dict[str, SolveRequest] = {}
        #: primary request id → coalesced follower requests.
        self._followers: Dict[int, List[SolveRequest]] = {}

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        problem: Problem,
        at: Optional[float] = None,
        timeout: Optional[float] = None,
        solve_deadline: Optional[float] = None,
        mode: str = "exact",
        gap_target: Optional[float] = None,
    ) -> int:
        """Admit one request arriving at simulated time ``at``.

        ``mode`` selects the quality-vs-latency contract (a
        :class:`repro.api.SolveMode` or its string value; non-exact
        modes are MIP-only).  ``gap_target`` is the relative-gap goal
        threaded into non-exact solves.

        Returns the assigned request id.  Raises
        :class:`repro.errors.ServiceClosed` after :meth:`close` and
        :class:`repro.errors.ServiceSaturated` when admission control
        rejects the request.  Arrivals must be non-decreasing in time.
        """
        if self.closed:
            raise ServiceClosed("submit() on a closed service")
        mode = getattr(mode, "value", mode)
        if mode not in VALID_MODES:
            raise ServiceError(
                f"unknown solve mode {mode!r}; valid modes are "
                + ", ".join(repr(m) for m in VALID_MODES)
            )
        if mode != "exact" and isinstance(problem, LinearProgram):
            raise ServiceError(
                f"mode={mode!r} applies to MIPs only; LPs always solve exactly"
            )
        at = self.now if at is None else float(at)
        if at < self.now:
            raise ServiceError(
                f"arrivals must be non-decreasing: got {at:.6g} after {self.now:.6g}"
            )
        self._pump(at)
        self.now = at

        rid = self._next_id
        self._next_id += 1
        fp = fingerprint(problem)
        request = SolveRequest(
            problem=problem,
            arrival_time=at,
            timeout=timeout,
            solve_deadline=solve_deadline,
            mode=mode,
            gap_target=gap_target,
            request_id=rid,
            fingerprint=fp,
            trace_id=f"req-{rid:06d}",
        )
        self.metrics.inc("serve.requests")

        # 1. Coalesce onto an identical queued request — same problem
        # *and* same mode channel only (an exact request must not ride
        # on a heuristic primary or vice versa).
        primary = self._primaries.get(request.cache_key)
        if primary is not None:
            self._followers[primary.request_id].append(request)
            self.metrics.inc("serve.coalesced")
            return rid

        # 2. Result cache.  Non-exact requests resolve on the heuristic
        # channel; heuristic_first may also settle for an exact answer
        # (strictly better than what it asked for), but heuristic_only
        # traffic never reads the exact cache and never writes it.
        entry = None
        if mode == "exact":
            entry = self.cache.get(fp)
            if entry is not None:
                self.metrics.inc("serve.cache.hits")
        else:
            if mode == "heuristic_first":
                entry = self.cache.get(fp)
                if entry is not None:
                    self.metrics.inc("serve.cache.hits")
            if entry is None:
                entry = self.heuristic_cache.get(request.cache_key)
                if entry is not None:
                    self.metrics.inc("serve.heuristic_hit")
        if entry is not None:
            done = max(at, entry.ready_time) + CACHE_LOOKUP_SECONDS
            self._record(
                SolveResponse(
                    request_id=rid,
                    fingerprint=fp,
                    outcome=entry.outcome,
                    solver_status=entry.solver_status,
                    objective=entry.objective,
                    x=entry.x,
                    best_bound=entry.best_bound,
                    gap=entry.gap,
                    mode=entry.mode,
                    arrival_time=at,
                    dispatch_time=at,
                    start_time=at,
                    completion_time=done,
                    cached=True,
                )
            )
            return rid
        self.metrics.inc("serve.cache.misses")

        # 2b. Parametric near-duplicate: same constraint structure with
        # perturbed rhs/objective/bounds, answered from the stored basis
        # via a sensitivity range check or a warm dual-simplex re-solve
        # (both certificate-audited; see repro.serve.parametric).
        if isinstance(problem, LinearProgram) and request.solve_deadline is None:
            answer = self.parametric.try_answer(problem)
            if answer is not None:
                self.metrics.inc(
                    "serve.range_hit" if answer.mode == "range" else "serve.warm_hit"
                )
                done = max(at, answer.ready_time) + answer.sim_seconds
                response = SolveResponse(
                    request_id=rid,
                    fingerprint=fp,
                    outcome=Outcome.OK,
                    solver_status=answer.result.status.value,
                    objective=answer.result.objective,
                    x=answer.x,
                    best_bound=answer.result.objective,
                    gap=0.0,
                    arrival_time=at,
                    dispatch_time=at,
                    start_time=at,
                    completion_time=done,
                    warm=answer.mode,
                )
                # The perturbed problem's exact fingerprint now resolves
                # from the plain result cache too.
                self.cache.put(
                    fp,
                    CacheEntry(
                        outcome=Outcome.OK,
                        solver_status=response.solver_status,
                        objective=response.objective,
                        x=response.x,
                        ready_time=done,
                    ),
                )
                self._record(response)
                return rid

        # 3. Admission control.
        if self.queue.depth >= self.policy.max_queue_depth:
            self.metrics.inc("serve.rejected")
            raise ServiceSaturated(self.queue.depth, self.policy.max_queue_depth)

        # 4. Enqueue; flush immediately if the bucket filled up.
        key = self.queue.push(request)
        self._primaries[request.cache_key] = request
        self._followers[rid] = []
        self.metrics.inc("serve.admitted")
        if self.queue.bucket_len(key) >= self.policy.max_batch_size:
            self._flush(key, self.now, trigger="size")
        return rid

    def advance_to(self, at: float) -> None:
        """Advance the service clock to ``at`` without submitting.

        Processes every deadline flush and request timeout due by
        ``at``, exactly as a ``submit(..., at=at)`` would, so an
        external driver (the cluster front door) can move all groups to
        a common point in simulated time — e.g. before a group kill or
        an autoscale decision.  Arrivals stay non-decreasing: ``at``
        earlier than the service clock is a no-op.
        """
        at = float(at)
        if at <= self.now:
            return
        self._pump(at)
        self.now = max(self.now, at)

    # -- lifecycle -------------------------------------------------------------

    def drain(self) -> List[SolveResponse]:
        """Dispatch every queued request now (partial batches included).

        Graceful drain: deadline timers are not awaited; anything still
        queued is flushed at the current simulated time.  Returns all
        responses so far, ordered by request id.
        """
        self._pump(self.now)
        for key in self.queue.nonempty_keys():
            while self.queue.bucket_len(key):
                self._flush(key, self.now, trigger="drain")
        return self.results()

    def close(self) -> List[SolveResponse]:
        """Stop admitting, drain the queue, and return all responses."""
        if not self.closed:
            self.closed = True
            self.metrics.inc("serve.closed")
            return self.drain()
        return self.results()

    # -- results & introspection -----------------------------------------------

    def result(self, request_id: int) -> Optional[SolveResponse]:
        """Response for one request id (None while still queued)."""
        return self._responses.get(request_id)

    def results(self) -> List[SolveResponse]:
        """All responses recorded so far, ordered by request id."""
        return [self._responses[rid] for rid in sorted(self._responses)]

    @property
    def makespan(self) -> float:
        """Simulated end-to-end time (slowest worker vs service clock)."""
        return max(self.now, self.pool.makespan)

    def stats(self) -> Dict:
        """Structured per-stage breakdown (counters, times, cache rates)."""
        out = self.metrics.to_dict()
        requests = self.metrics.count("serve.requests")
        deduped = self.metrics.count("serve.cache.hits") + self.metrics.count(
            "serve.coalesced"
        )
        out["derived"] = {
            "cache_hit_rate": self.cache.hit_rate,
            "heuristic_hit_rate": self.heuristic_cache.hit_rate,
            "dedup_rate": deduped / requests if requests else 0.0,
            "makespan": self.makespan,
            "parametric": {
                "range_hits": self.parametric.range_hits,
                "warm_hits": self.parametric.warm_hits,
                "misses": self.parametric.misses,
                "audit_failures": self.parametric.audit_failures,
            },
        }
        return out

    # -- event processing --------------------------------------------------------

    def _pump(self, until: float) -> None:
        """Process every deadline flush / request timeout due by ``until``.

        Deterministic ordering: earliest event first; on ties, request
        timeouts fire before batch flushes (the request gives up just
        before its batch forms).
        """
        while True:
            timeout_ev = self.queue.next_timeout()
            flush_ev = self.queue.next_deadline()
            t_timeout = timeout_ev[0] if timeout_ev else float("inf")
            t_flush = flush_ev[0] if flush_ev else float("inf")
            when = min(t_timeout, t_flush)
            if when > until:
                break
            if t_timeout <= t_flush:
                self.now = max(self.now, t_timeout)
                self._expire(timeout_ev[1], t_timeout)
            else:
                self.now = max(self.now, t_flush)
                self._flush(flush_ev[1], t_flush, trigger="deadline")
        self.now = max(self.now, until)

    def _expire(self, request: SolveRequest, when: float) -> None:
        """Time out one queued request (followers share its fate)."""
        self.queue.remove(request)
        followers = self._followers.pop(request.request_id, [])
        self._primaries.pop(request.cache_key, None)
        for req in [request] + followers:
            self.metrics.inc("serve.timeouts")
            self._record(
                SolveResponse(
                    request_id=req.request_id,
                    fingerprint=req.fingerprint,
                    outcome=Outcome.TIMEOUT,
                    arrival_time=req.arrival_time,
                    dispatch_time=when,
                    start_time=when,
                    completion_time=when,
                    coalesced=req is not request,
                )
            )

    def _flush(self, key: BucketKey, when: float, trigger: str) -> None:
        """Pop one batch from ``key`` and execute it on the worker pool.

        Under fault injection a dispatch round can lose members (worker
        crash, unrecoverable member fault); this loop re-dispatches
        exactly the lost members — hedged onto a different worker, after
        the plan's jittered backoff — until they complete or the retry
        budget is exhausted, at which point the stragglers fail and
        their injected faults are accounted as escaped.
        """
        batch = self.queue.pop_batch(key)
        if not batch:
            return
        self.metrics.inc(f"serve.flush.{trigger}")
        injector = fault_active()
        max_attempts = (
            injector.plan.retry.max_attempts if injector is not None else 1
        )
        pending = batch
        attempt = 1
        t = when
        avoid: Optional[int] = None
        unresolved = 0
        while True:
            out = self.pool.dispatch(pending, t, avoid=avoid)
            unresolved += out.pending_faults
            for request, response in zip(out.completed, out.responses):
                response.retries = attempt - 1
                self._finish(request, response)
            if not out.requeue:
                break
            self.metrics.inc("serve.requeued", len(out.requeue))
            if attempt >= max_attempts:
                for request in out.requeue:
                    self._finish(
                        request,
                        SolveResponse(
                            request_id=request.request_id,
                            fingerprint=request.fingerprint,
                            outcome=Outcome.FAILED,
                            solver_status="worker_crash",
                            arrival_time=request.arrival_time,
                            dispatch_time=when,
                            start_time=out.completion,
                            completion_time=out.completion,
                            worker=out.worker,
                            trace_id=request.trace_id,
                            retries=attempt - 1,
                        ),
                    )
                if injector is not None:
                    injector.resolve_escaped(unresolved, site=SITE_WORKER)
                return
            delay = injector.backoff(attempt) if injector is not None else 0.0
            t = max(t, out.completion) + delay
            # The hedge: retry on any worker but the one that just died.
            avoid = out.worker if self.pool.size > 1 else None
            attempt += 1
            pending = out.requeue
        if unresolved and injector is not None:
            injector.resolve_recovered(unresolved, site=SITE_WORKER)

    def _finish(self, request: SolveRequest, response: SolveResponse) -> None:
        """Record one dispatched member's response (and its followers')."""
        self._primaries.pop(request.cache_key, None)
        if response.ok:
            entry = CacheEntry(
                outcome=response.outcome,
                solver_status=response.solver_status,
                objective=response.objective,
                x=response.x,
                ready_time=response.completion_time,
                best_bound=response.best_bound,
                gap=response.gap,
                mode=response.mode,
            )
            if request.mode == "exact":
                self.cache.put(request.fingerprint, entry)
            else:
                # Heuristic answers replay only on their own channel:
                # the exact result cache never sees them.
                self.heuristic_cache.put(request.cache_key, entry)
            if response.lp_result is not None and isinstance(
                request.problem, LinearProgram
            ):
                if self.parametric.seed(
                    request.problem, response.lp_result, response.completion_time
                ):
                    self.metrics.inc("serve.parametric.seeded")
        self._record(response)
        for follower in self._followers.pop(request.request_id, []):
            twin = SolveResponse(
                request_id=follower.request_id,
                fingerprint=follower.fingerprint,
                outcome=response.outcome,
                solver_status=response.solver_status,
                objective=response.objective,
                x=response.x,
                best_bound=response.best_bound,
                gap=response.gap,
                mode=response.mode,
                arrival_time=follower.arrival_time,
                dispatch_time=response.dispatch_time,
                start_time=response.start_time,
                completion_time=response.completion_time,
                coalesced=True,
                warm=response.warm,
                batch_size=response.batch_size,
                worker=response.worker,
                retries=response.retries,
            )
            self._record(twin)

    def _record(self, response: SolveResponse) -> None:
        if not response.trace_id:
            response.trace_id = f"req-{response.request_id:06d}"
        self._responses[response.request_id] = response
        if response.outcome is Outcome.OK:
            self.metrics.inc("serve.completed")
        elif response.outcome is Outcome.PARTIAL:
            self.metrics.inc("serve.partial")
        elif response.outcome is Outcome.FAILED:
            self.metrics.inc("serve.failed")
        self.metrics.add_time("time.serve.queue_wait", max(0.0, response.queue_wait))
        self.metrics.add_time("time.serve.assembly", max(0.0, response.assembly_wait))
        self.metrics.add_time("time.serve.latency", max(0.0, response.latency))
        self.metrics.observe("serve.latency", max(0.0, response.latency))
        self.metrics.observe("serve.queue_wait", max(0.0, response.queue_wait))
        if response.ok and not response.cached and not response.warm:
            self.metrics.observe("serve.device_time", max(0.0, response.device_time))
        if response.warm:
            self.metrics.observe("serve.warm_latency", max(0.0, response.latency))
        tracer = obs.active()
        if tracer is not None:
            self._trace_request(tracer, response)

    def _trace_request(self, tracer, response: SolveResponse) -> None:
        """Emit the per-request stage breakdown onto the unified timeline."""
        track = response.trace_id
        parent = tracer.sim_span(
            "request",
            response.arrival_time,
            max(0.0, response.latency),
            track,
            category="serve",
            outcome=response.outcome.value,
            cached=response.cached,
            coalesced=response.coalesced,
            warm=response.warm,
            batch_size=response.batch_size,
            worker=response.worker,
            trace_id=response.trace_id,
        )
        pid = parent.span_id
        if response.cached:
            tracer.sim_span(
                "cache", response.start_time,
                max(0.0, response.completion_time - response.start_time),
                track, category="serve", parent_id=pid,
            )
            return
        if response.warm:
            tracer.sim_span(
                "parametric", response.start_time,
                max(0.0, response.completion_time - response.start_time),
                track, category="serve", parent_id=pid,
                mode=response.warm,
            )
            return
        tracer.sim_span(
            "queue", response.arrival_time, max(0.0, response.queue_wait),
            track, category="serve", parent_id=pid,
        )
        if response.outcome is Outcome.TIMEOUT:
            return
        tracer.sim_span(
            "batch", response.dispatch_time, max(0.0, response.assembly_wait),
            track, category="serve", parent_id=pid,
        )
        tracer.sim_span(
            "solve", response.start_time, max(0.0, response.device_time),
            track, category="serve", parent_id=pid,
            worker=response.worker,
        )
