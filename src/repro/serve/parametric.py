"""Parametric re-solve: answering near-duplicate LP requests warm.

The exact-fingerprint :mod:`repro.serve.cache` only dedups *identical*
requests.  Real request streams also repeat themselves approximately —
the same model resubmitted with a perturbed right-hand side, objective,
or variable bounds (a re-priced portfolio, an updated demand forecast).
Those share the constraint-matrix *structure*, which is exactly the
regime the dual-simplex machinery amortizes:

- **range hit** — the perturbation stays inside the optimal basis's
  :mod:`repro.lp.sensitivity` ranges: the basis is still optimal and
  the answer is a couple of ftrans, zero pivots;
- **warm hit** — out of range: a warm-started dual-simplex re-solve
  from the stored basis + resident factorization repairs optimality in
  a few pivots instead of a cold solve;
- **miss** — the state cannot answer (infeasible warm start, audit
  failure): the request falls through to the normal batch/dispatch
  path, and its cold result re-seeds the cache.

Every parametric answer is audited before it is served: a float KKT
check against the actual perturbed problem, then the *exact*
Fraction-arithmetic certificate (:func:`repro.check.certify_lp_result`)
— speed never silently costs correctness.

The structural key is :func:`structure_fingerprint`: the constraint
coefficients plus the bound *finiteness pattern*.  Two problems with
the same key convert to standard forms with the identical matrix ``A``
(values of ``b``/``c``/bounds only move the rhs, objective, and
offset), which is what makes basis/factorization reuse sound.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES
from repro.errors import LPError
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.sensitivity import SensitivityReport, analyze
from repro.lp.warm import WarmStartState, audit_warm_lp, warm_resolve

#: Simulated cost of the structural-fingerprint map probe.
STRUCTURE_LOOKUP_SECONDS = 1e-6
#: Simulated cost of the sensitivity range comparison (vector compares).
RANGE_CHECK_SECONDS = 5e-6
#: Simulated cost per dual-simplex pivot of a warm re-solve (ftran +
#: btran + pricing on the resident factors).
WARM_PIVOT_SECONDS = 2e-6
#: Simulated cost of refactorizing when the resident eta chain was
#: unusable (or absent) for the warm re-solve.
REFACTOR_SECONDS = 2e-5


def structure_fingerprint(problem: LinearProgram) -> str:
    """Hash of the parts that fix the standard-form matrix ``A``.

    Constraint coefficients exactly; bounds only by their finiteness
    pattern (a finite lower bound shifts ``b``, a finite upper bound
    adds a row whose *coefficients* don't depend on its value).  ``c``,
    ``b_ub``/``b_eq``, and bound values are deliberately excluded —
    they are the parametric degrees of freedom.
    """
    digest = hashlib.sha256()
    digest.update(b"lp-structure")
    for tag, arr in (("a_ub", problem.a_ub), ("a_eq", problem.a_eq)):
        if arr is None:
            digest.update(f"{tag}:none;".encode())
        else:
            a = np.ascontiguousarray(arr)
            digest.update(f"{tag}:{a.dtype.str}:{a.shape};".encode())
            digest.update(a.tobytes())
    for tag, arr in (("lb", problem.lb), ("ub", problem.ub)):
        pattern = np.isfinite(np.asarray(arr, dtype=np.float64))
        digest.update(f"{tag}:{pattern.shape};".encode())
        digest.update(np.packbits(pattern).tobytes())
    return digest.hexdigest()


@dataclass
class ParametricEntry:
    """Stored re-solve state for one constraint-matrix structure."""

    sf: StandardFormLP
    result: LPResult
    state: WarmStartState
    #: Simulated time the producing solve completed.
    ready_time: float
    #: Lazily computed sensitivity ranges at ``result``'s basis.
    report: Optional[SensitivityReport] = None


@dataclass
class ParametricAnswer:
    """One parametric answer, ready to serve."""

    #: "range" (basis provably still optimal) or "resolve" (warm pivots).
    mode: str
    result: LPResult
    #: Primal solution in the original variable space.
    x: np.ndarray
    #: Simulated seconds the answer cost (lookup + check + pivots).
    sim_seconds: float
    pivots: int = 0
    #: ``ready_time`` of the entry that answered (no time travel: the
    #: answer exists only after its producing solve completed).
    ready_time: float = 0.0


class ParametricCache:
    """Bounded LRU ``structure_fingerprint → ParametricEntry``."""

    def __init__(self, capacity: int = 128, tol=DEFAULT_TOLERANCES):
        self.capacity = capacity
        self.tol = tol
        self._entries: "OrderedDict[str, ParametricEntry]" = OrderedDict()
        self.range_hits = 0
        self.warm_hits = 0
        self.misses = 0
        self.audit_failures = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- seeding ----------------------------------------------------------------

    def seed(
        self, problem: LinearProgram, result: LPResult, ready_time: float
    ) -> bool:
        """Store a completed cold solve's basis as re-solve state.

        Silently refuses anything not warm-startable: non-optimal
        results, missing basis/duals, or a basis that doesn't match the
        problem's own standard form (e.g. a presolved solve).
        """
        if self.capacity == 0:
            return False
        if result.status is not LPStatus.OPTIMAL or result.basis is None:
            return False
        if result.x_standard is None or result.duals is None:
            return False
        sf = problem.to_standard_form()
        basis = np.asarray(result.basis, dtype=np.int64)
        if basis.shape != (sf.m,) or result.x_standard.shape != (sf.n,):
            return False
        if not audit_warm_lp(sf, result, self.tol):
            return False
        key = structure_fingerprint(problem)
        self._entries[key] = ParametricEntry(
            sf=sf,
            result=result,
            state=WarmStartState(basis=basis.copy(), shape=(sf.m, sf.n)),
            ready_time=ready_time,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return True

    # -- answering --------------------------------------------------------------

    def lookup(self, problem: LinearProgram) -> Optional[ParametricEntry]:
        """The entry matching ``problem``'s structure, if any (LRU touch)."""
        if self.capacity == 0:
            return None
        key = structure_fingerprint(problem)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def try_answer(self, problem: LinearProgram) -> Optional[ParametricAnswer]:
        """Answer a near-duplicate from stored state, or None to go cold.

        Every returned answer has passed both the float KKT audit and
        the exact Fraction certificate against the *perturbed* problem.
        """
        entry = self.lookup(problem)
        if entry is None:
            self.misses += 1
            return None
        sf2 = problem.to_standard_form()
        if (sf2.m, sf2.n) != (entry.sf.m, entry.sf.n):
            self.misses += 1
            return None

        answer = self._range_answer(entry, problem, sf2)
        if answer is None:
            answer = self._resolve_answer(entry, problem, sf2)
        if answer is None:
            self.misses += 1
        else:
            answer.ready_time = entry.ready_time
        return answer

    def _certified(self, problem: LinearProgram, result: LPResult) -> bool:
        """Float KKT audit + exact Fraction certificate, both must pass."""
        sf = problem.to_standard_form()
        if not audit_warm_lp(sf, result, self.tol):
            return False
        from repro.check.certificates import certify_lp_result

        report = certify_lp_result(problem, result)
        return report.ok

    def _range_answer(
        self, entry: ParametricEntry, problem: LinearProgram, sf2: StandardFormLP
    ) -> Optional[ParametricAnswer]:
        """Zero-pivot answer when the perturbation is in-range."""
        base = entry.sf
        delta_b = sf2.b - base.b
        delta_c = sf2.c - base.c
        state = entry.state
        basis = state.basis

        if np.any(delta_c != 0.0):
            # Pure objective perturbation on nonbasic columns, small
            # enough that every reduced cost stays ≤ 0: the vertex is
            # still optimal and even the primal point is unchanged.
            if np.any(delta_b != 0.0) or np.any(delta_c[basis] != 0.0):
                return None
            if entry.report is None:
                entry.report = analyze(base, entry.result)
            reduced_new = entry.report.reduced_costs + delta_c
            if np.any(reduced_new > self.tol.optimality):
                return None
            x_std = entry.result.x_standard
            objective = float(sf2.c @ x_std) + sf2.offset
            result = LPResult(
                status=LPStatus.OPTIMAL,
                objective=objective,
                duals=entry.result.duals,
                iterations=0,
                basis=basis.copy(),
                x_standard=x_std,
            )
        else:
            # rhs/bound perturbation (a zero move — e.g. only the name
            # differs — is trivially in-range and also lands here).
            if entry.report is None:
                entry.report = analyze(base, entry.result)
            for i, (lo, hi) in enumerate(entry.report.rhs_ranges):
                if not (lo - 1e-12 <= delta_b[i] <= hi + 1e-12):
                    return None
            # Basis unchanged: x_B = B⁻¹ b_new via the resident factors.
            pfi = self._factors(entry)
            if pfi is None:
                return None
            x_basic = pfi.ftran(sf2.b)
            if np.any(x_basic < -self.tol.feasibility * 10):
                return None  # ranging said yes but numerics disagree
            x_std = np.zeros(sf2.n)
            x_std[basis] = np.maximum(x_basic, 0.0)
            objective = float(sf2.c @ x_std) + sf2.offset
            result = LPResult(
                status=LPStatus.OPTIMAL,
                objective=objective,
                duals=entry.result.duals,
                iterations=0,
                basis=basis.copy(),
                x_standard=x_std,
            )
        result.x = sf2.recover_x(result.x_standard)
        if not self._certified(problem, result):
            self.audit_failures += 1
            return None
        self.range_hits += 1
        return ParametricAnswer(
            mode="range",
            result=result,
            x=result.x,
            sim_seconds=STRUCTURE_LOOKUP_SECONDS + RANGE_CHECK_SECONDS,
            pivots=0,
        )

    def _resolve_answer(
        self, entry: ParametricEntry, problem: LinearProgram, sf2: StandardFormLP
    ) -> Optional[ParametricAnswer]:
        """Warm dual-simplex re-solve from the stored basis/factors."""
        # Materialize the factorization once per entry so consecutive
        # perturbations of the same structure pivot on resident factors.
        self._factors(entry)
        outcome = warm_resolve(sf2, entry.state, tol=self.tol)
        if outcome is None or outcome.audit_failed:
            if outcome is not None and outcome.audit_failed:
                self.audit_failures += 1
            return None
        result = outcome.result
        if result.status is not LPStatus.OPTIMAL:
            return None
        result.x = sf2.recover_x(result.x_standard)
        if not self._certified(problem, result):
            self.audit_failures += 1
            return None
        # Re-seed: the perturbed optimum is the new base for the next
        # near-duplicate (entries track the stream, not the first seed).
        if outcome.state is not None:
            entry.sf = sf2
            entry.result = result
            entry.state = outcome.state
            entry.report = None
        self.warm_hits += 1
        sim = (
            STRUCTURE_LOOKUP_SECONDS
            + RANGE_CHECK_SECONDS
            + result.iterations * WARM_PIVOT_SECONDS
        )
        if not outcome.reused_factors:
            sim += REFACTOR_SECONDS
        return ParametricAnswer(
            mode="resolve",
            result=result,
            x=result.x,
            sim_seconds=sim,
            pivots=result.iterations,
        )

    def _factors(self, entry: ParametricEntry):
        """Entry's resident factorization, built lazily on first use."""
        if entry.state.pfi is None:
            from repro.la.updates import ProductFormInverse

            try:
                entry.state.pfi = ProductFormInverse(
                    entry.sf.a[:, entry.state.basis]
                )
            except Exception:
                return None
        return entry.state.pfi
