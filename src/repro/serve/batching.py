"""Dynamic batching policy and shape-compatibility bucketing.

The §5.5 throughput lever is coalescing many *compatible* small problems
into one device-resident batch.  Compatibility is structural: the
lockstep batched simplex needs every member to share ``(m, n)`` and the
finite-upper-bound pattern, and MIPs can only share a concurrent round
with other MIPs.  :func:`bucket_key` maps a problem to its
compatibility class; the :class:`BatchQueue` keeps one FIFO per class.

A batch is flushed when either trigger fires:

- **size** — a bucket reaches ``max_batch_size`` members;
- **deadline** — the oldest member has waited ``max_wait`` simulated
  seconds (bounded latency for partial batches under light load).

``max_queue_depth`` bounds the total number of queued requests — the
admission-control knob the service enforces with
:class:`repro.errors.ServiceSaturated`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.lp.batch_simplex import lockstep_compatible
from repro.mip.problem import MIPProblem
from repro.serve.request import Problem, SolveRequest

BucketKey = Tuple


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the dynamic batcher (see module docstring)."""

    #: Flush a bucket once it holds this many requests.
    max_batch_size: int = 16
    #: Flush a bucket once its oldest member waited this long (simulated s).
    max_wait: float = 2e-3
    #: Admission control: max total queued (undispatched) requests.
    max_queue_depth: int = 256

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ServiceError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait < 0.0:
            raise ServiceError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


def bucket_key(problem: Problem) -> BucketKey:
    """Compatibility class of a problem.

    - ``("mip", n, m_ub, m_eq)`` — MIPs of one shape share concurrent
      batched-node rounds;
    - ``("lp", n, m_ub, ub_pattern)`` — lockstep-capable LPs sharing a
      shape *and* finite-ub pattern can run one SIMD tableau batch;
    - ``("lp-solo", n, m_ub, m_eq)`` — LPs outside the lockstep
      preconditions (equality rows, shifted bounds, negative rhs) are
      still grouped for concurrent-stream execution.
    """
    if isinstance(problem, MIPProblem):
        m_ub = 0 if problem.a_ub is None else problem.a_ub.shape[0]
        m_eq = 0 if problem.a_eq is None else problem.a_eq.shape[0]
        return ("mip", problem.n, m_ub, m_eq)
    if lockstep_compatible(problem):
        pattern = np.isfinite(problem.ub).tobytes()
        return ("lp", problem.n, problem.num_ub_rows, pattern)
    return ("lp-solo", problem.n, problem.num_ub_rows, problem.num_eq_rows)


class BatchQueue:
    """Per-compatibility-class FIFOs with deadline bookkeeping.

    Pure data structure — no clock of its own.  The service asks for the
    earliest pending event (:meth:`next_deadline`, :meth:`next_timeout`)
    and pops batches when a trigger fires.  All tie-breaks are
    deterministic: earliest time wins, then first-created bucket / lowest
    request id.
    """

    def __init__(self, policy: BatchingPolicy):
        self.policy = policy
        self._buckets: "OrderedDict[BucketKey, List[SolveRequest]]" = OrderedDict()

    @property
    def depth(self) -> int:
        """Total queued (undispatched) requests across all buckets."""
        return sum(len(reqs) for reqs in self._buckets.values())

    def bucket_len(self, key: BucketKey) -> int:
        """Queued requests in one bucket."""
        return len(self._buckets.get(key, ()))

    def nonempty_keys(self) -> List[BucketKey]:
        """Bucket keys holding requests, in bucket-creation order."""
        return [k for k, reqs in self._buckets.items() if reqs]

    def push(self, request: SolveRequest) -> BucketKey:
        """Append a request to its compatibility bucket; returns the key."""
        key = bucket_key(request.problem)
        self._buckets.setdefault(key, []).append(request)
        return key

    def pop_batch(self, key: BucketKey) -> List[SolveRequest]:
        """Remove and return up to ``max_batch_size`` oldest requests."""
        reqs = self._buckets.get(key, [])
        take = min(self.policy.max_batch_size, len(reqs))
        batch, self._buckets[key] = reqs[:take], reqs[take:]
        return batch

    def remove(self, request: SolveRequest) -> None:
        """Drop one queued request (timeout handling)."""
        for reqs in self._buckets.values():
            if request in reqs:
                reqs.remove(request)
                return

    def next_deadline(self) -> Optional[Tuple[float, BucketKey]]:
        """Earliest ``(oldest arrival + max_wait, bucket)`` flush event."""
        best: Optional[Tuple[float, BucketKey]] = None
        for key, reqs in self._buckets.items():
            if not reqs:
                continue
            when = reqs[0].arrival_time + self.policy.max_wait
            if best is None or when < best[0]:
                best = (when, key)
        return best

    def next_timeout(self) -> Optional[Tuple[float, SolveRequest]]:
        """Earliest per-request timeout event among queued requests."""
        best: Optional[Tuple[float, SolveRequest]] = None
        for reqs in self._buckets.values():
            for req in reqs:
                deadline = req.deadline
                if not np.isfinite(deadline):
                    continue
                if (
                    best is None
                    or deadline < best[0]
                    or (deadline == best[0] and req.request_id < best[1].request_id)
                ):
                    best = (deadline, req)
        return best
