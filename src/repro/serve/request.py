"""Solve requests, responses, and canonical problem fingerprints.

The serving layer (paper §5.5's "many small concurrent problems" regime)
speaks in :class:`SolveRequest` / :class:`SolveResponse` pairs.  Each
request carries a problem (an LP or a MIP), a simulated arrival time,
and an optional queue timeout; each response carries the solver outcome
plus the per-stage timestamps (arrival → batch formed → device start →
completion) the service's observability is built on.

:func:`fingerprint` is the canonical content hash used by the result
cache and by request coalescing: two problems with identical data (the
instance *name* is deliberately excluded) share a fingerprint, so a
duplicate request never hits the device twice.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import RequestTimeout, ServiceError
from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem

Problem = Union[LinearProgram, MIPProblem]

#: Accepted ``SolveRequest.mode`` values (string forms of
#: :class:`repro.api.SolveMode`; non-exact modes apply to MIPs only).
VALID_MODES = ("exact", "heuristic_first", "heuristic_only")


def _feed(digest, tag: str, arr: Optional[np.ndarray]) -> None:
    if arr is None:
        digest.update(f"{tag}:none;".encode())
        return
    a = np.ascontiguousarray(arr)
    digest.update(f"{tag}:{a.dtype.str}:{a.shape};".encode())
    digest.update(a.tobytes())


def fingerprint(problem: Problem) -> str:
    """Canonical content hash of a problem (instance name excluded)."""
    digest = hashlib.sha256()
    kind = "mip" if isinstance(problem, MIPProblem) else "lp"
    digest.update(kind.encode())
    for tag in ("c", "a_ub", "b_ub", "a_eq", "b_eq", "lb", "ub"):
        _feed(digest, tag, getattr(problem, tag))
    if kind == "mip":
        _feed(digest, "integer", problem.integer)
    return digest.hexdigest()


class Outcome(enum.Enum):
    """Terminal serving outcome of one request."""

    #: The solver reached a terminal answer (optimal/infeasible/unbounded).
    OK = "ok"
    #: The request's queue timeout elapsed before its batch was formed.
    TIMEOUT = "timeout"
    #: The solver failed to reach a terminal answer (crash, numerics, …).
    FAILED = "failed"
    #: A budget (deadline / node / iteration limit) stopped the solve;
    #: the response carries the anytime answer: best incumbent, the
    #: certified dual bound, and the gap between them.
    PARTIAL = "partial"
    #: SLO-aware admission refused the request at the cluster front door
    #: (low-priority traffic shed under overload); the device was never
    #: touched and the answer was never computed.
    SHED = "shed"


@dataclass
class SolveRequest:
    """One solve request in the service's simulated timeline."""

    problem: Problem
    #: Simulated arrival time (seconds); submissions must be time-ordered.
    arrival_time: float = 0.0
    #: Max simulated seconds the request may wait in queue (None = forever).
    timeout: Optional[float] = None
    #: Max simulated *device* seconds the solve itself may spend (None =
    #: unlimited).  A mid-solve expiry yields ``Outcome.PARTIAL`` with
    #: the anytime incumbent, dual bound, and gap — never a hang.
    solve_deadline: Optional[float] = None
    #: Quality-vs-latency contract (see :class:`repro.api.SolveMode`):
    #: ``"exact"``, ``"heuristic_first"``, or ``"heuristic_only"``.
    #: Non-exact modes are MIP-only and are served on a separate cache /
    #: coalescing channel — a heuristic answer never masquerades as an
    #: exact one.
    mode: str = "exact"
    #: Relative-gap goal threaded into non-exact solves.
    gap_target: Optional[float] = None
    #: Assigned by the service at admission.
    request_id: int = -1
    #: Canonical content hash; computed by the service at admission.
    fingerprint: str = ""
    #: Trace id assigned at admission (``req-000042``-style).
    trace_id: str = ""

    @property
    def kind(self) -> str:
        """``"mip"`` or ``"lp"``."""
        return "mip" if isinstance(self.problem, MIPProblem) else "lp"

    @property
    def cache_key(self) -> str:
        """Cache/coalescing channel key.

        Exact requests use the bare fingerprint (the historical key);
        non-exact requests get a distinct ``#h:`` channel that also
        encodes the gap target, so a ``heuristic_only`` answer can never
        be served from — or written into — the exact result cache, and
        requests with different quality goals never coalesce.
        """
        if self.mode == "exact":
            return self.fingerprint
        gap = "" if self.gap_target is None else f"{self.gap_target:.12g}"
        return f"{self.fingerprint}#h:{self.mode}:{gap}"

    @property
    def deadline(self) -> float:
        """Absolute time at which the queue timeout fires (inf if none)."""
        if self.timeout is None:
            return np.inf
        return self.arrival_time + self.timeout


@dataclass
class SolveResponse:
    """Per-request result with per-stage timestamps.

    Stage boundaries: ``arrival_time`` (admitted) → ``dispatch_time``
    (its batch was formed) → ``start_time`` (the batch began executing
    on a worker device) → ``completion_time`` (results available).
    """

    request_id: int
    fingerprint: str
    outcome: Outcome
    #: Solver status string (``LPStatus``/``MIPStatus`` value), "" on timeout.
    solver_status: str = ""
    objective: float = float("nan")
    x: Optional[np.ndarray] = None
    #: Certified dual bound (== objective when optimal; finite on PARTIAL).
    best_bound: float = float("inf")
    #: Relative optimality gap (0 when optimal; finite on PARTIAL with
    #: an incumbent, and on certified heuristic answers).
    gap: float = float("inf")
    #: Solve mode this response was produced under (see the request).
    mode: str = "exact"
    arrival_time: float = 0.0
    dispatch_time: float = 0.0
    start_time: float = 0.0
    completion_time: float = 0.0
    #: Served from the result cache — the device was never touched.
    cached: bool = False
    #: Coalesced onto an identical request that was already queued.
    coalesced: bool = False
    #: Members in the dispatched batch (0 for cached/timeout responses).
    batch_size: int = 0
    #: Worker (device-group rank) that executed the batch, -1 if none.
    worker: int = -1
    #: Trace id inherited from the request (``req-000042``-style).
    trace_id: str = ""
    #: Crash-recovery re-dispatch rounds this request survived (0 = none).
    retries: int = 0
    #: Parametric near-duplicate answer: "" (normal solve), "range"
    #: (sensitivity ranges proved the cached basis still optimal), or
    #: "resolve" (warm-started dual-simplex re-solve, certificate-audited).
    warm: str = ""
    #: Full LP solver result when the member ran the solo-LP path
    #: (internal: seeds the parametric re-solve cache; not serialized).
    lp_result: Optional[object] = None

    @property
    def ok(self) -> bool:
        """True when the solver reached a terminal answer."""
        return self.outcome is Outcome.OK

    @property
    def queue_wait(self) -> float:
        """Simulated seconds spent queued before the batch was formed."""
        return self.dispatch_time - self.arrival_time

    @property
    def assembly_wait(self) -> float:
        """Batch formed → device start (waiting for a free worker)."""
        return self.start_time - self.dispatch_time

    @property
    def device_time(self) -> float:
        """Device start → completion."""
        return self.completion_time - self.start_time

    @property
    def latency(self) -> float:
        """End-to-end: arrival → completion."""
        return self.completion_time - self.arrival_time

    def to_dict(self) -> dict:
        """JSON-friendly summary (:func:`repro.reporting.report_dict` shape).

        The serving surface has no strategy of its own (the worker pool
        picks the execution path), so ``strategy`` is ``None``; the
        serving-specific fields follow the shared core.
        """
        from repro.reporting import report_dict

        return report_dict(
            status=self.solver_status or self.outcome.value,
            objective=self.objective,
            strategy=None,
            mode=self.mode,
            trace_id=self.trace_id,
            best_bound=self.best_bound,
            gap=self.gap,
            outcome=self.outcome.value,
            request_id=self.request_id,
            cached=self.cached,
            coalesced=self.coalesced,
            warm=self.warm,
            batch_size=self.batch_size,
            worker=self.worker,
            retries=self.retries,
            timings={
                "queue_wait": self.queue_wait,
                "assembly_wait": self.assembly_wait,
                "device_time": self.device_time,
                "latency": self.latency,
            },
        )

    def raise_for_outcome(self) -> None:
        """Raise the typed error matching a non-OK outcome.

        No-op for OK and for PARTIAL — a partial response is a usable
        anytime answer (check :attr:`gap` to decide if it is enough).
        """
        if self.outcome is Outcome.TIMEOUT:
            raise RequestTimeout(self.request_id, self.queue_wait)
        if self.outcome is Outcome.FAILED:
            raise ServiceError(
                f"request {self.request_id} failed: "
                f"solver status {self.solver_status!r}"
            )
        if self.outcome is Outcome.SHED:
            raise ServiceError(
                f"request {self.request_id} was shed by SLO admission"
            )
