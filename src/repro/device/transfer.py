"""Host↔device transfer engine.

Sections 5.1–5.3 of the paper are arguments about *when data must cross
the PCIe/NVLink boundary*: rank-1 updates need no transfers, CPU-side cut
generation needs a device→host→device round trip, and tree-node reuse is
about keeping the matrix resident.  This engine prices and counts every
crossing so those claims become measurable quantities (experiments E4–E6).
"""

from __future__ import annotations

from repro.device.clock import SimClock
from repro.device.spec import LinkSpec
from repro.metrics import Metrics


class TransferEngine:
    """Models one link between host memory and one device's memory."""

    def __init__(self, link: LinkSpec, clock: SimClock, metrics: Metrics):
        self.link = link
        self.clock = clock
        self.metrics = metrics

    def host_to_device(self, nbytes: int) -> float:
        """Move ``nbytes`` host→device; returns the simulated seconds."""
        seconds = self.link.transfer_time(int(nbytes))
        self.clock.advance(seconds)
        self.metrics.inc("transfers.h2d")
        self.metrics.inc("transfers.h2d_bytes", int(nbytes))
        self.metrics.add_time("time.h2d", seconds)
        return seconds

    def device_to_host(self, nbytes: int) -> float:
        """Move ``nbytes`` device→host; returns the simulated seconds."""
        seconds = self.link.transfer_time(int(nbytes))
        self.clock.advance(seconds)
        self.metrics.inc("transfers.d2h")
        self.metrics.inc("transfers.d2h_bytes", int(nbytes))
        self.metrics.add_time("time.d2h", seconds)
        return seconds

    @property
    def total_transfers(self) -> int:
        """Total crossings in either direction."""
        return self.metrics.count("transfers.h2d") + self.metrics.count(
            "transfers.d2h"
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.metrics.count("transfers.h2d_bytes") + self.metrics.count(
            "transfers.d2h_bytes"
        )
