"""Host↔device transfer engine.

Sections 5.1–5.3 of the paper are arguments about *when data must cross
the PCIe/NVLink boundary*: rank-1 updates need no transfers, CPU-side cut
generation needs a device→host→device round trip, and tree-node reuse is
about keeping the matrix resident.  This engine prices and counts every
crossing so those claims become measurable quantities (experiments E4–E6).
"""

from __future__ import annotations

from repro.device.clock import SimClock
from repro.device.spec import LinkSpec
from repro.faults.injector import active as fault_active
from repro.metrics import Metrics
from repro import obs


class TransferEngine:
    """Models one link between host memory and one device's memory."""

    def __init__(self, link: LinkSpec, clock: SimClock, metrics: Metrics):
        self.link = link
        self.clock = clock
        self.metrics = metrics
        #: Obs timeline row for this link's crossings (set by the device).
        self.track_of = lambda: "link"

    def _move(self, direction: str, nbytes: int) -> float:
        seconds = self.link.transfer_time(int(nbytes))
        injector = fault_active()
        overhead = 0.0
        if injector is not None:
            # Timed-out/corrupted crossings retry with backoff; their
            # wasted time precedes the crossing that finally lands.
            # Raises TransferFaultError before anything is charged.
            overhead = injector.transfer_attempt(direction, seconds)
            if overhead:
                self.metrics.inc("faults.transfer_retries")
                self.metrics.add_time("time.fault.transfer", overhead)
        start = self.clock.now
        self.clock.advance(seconds + overhead)
        self.metrics.inc(f"transfers.{direction}")
        self.metrics.inc(f"transfers.{direction}_bytes", int(nbytes))
        self.metrics.add_time(f"time.{direction}", seconds)
        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                direction,
                start,
                seconds + overhead,
                self.track_of(),
                category="transfer",
                nbytes=int(nbytes),
            )
        return seconds + overhead

    def host_to_device(self, nbytes: int) -> float:
        """Move ``nbytes`` host→device; returns the simulated seconds."""
        return self._move("h2d", nbytes)

    def device_to_host(self, nbytes: int) -> float:
        """Move ``nbytes`` device→host; returns the simulated seconds."""
        return self._move("d2h", nbytes)

    @property
    def total_transfers(self) -> int:
        """Total crossings in either direction."""
        return self.metrics.count("transfers.h2d") + self.metrics.count(
            "transfers.d2h"
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.metrics.count("transfers.h2d_bytes") + self.metrics.count(
            "transfers.d2h_bytes"
        )
