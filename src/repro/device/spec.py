"""Calibrated hardware specifications for the simulated platform.

Numbers are the published peak rates of the accelerators the paper
discusses (§2.2 names Summit's V100s; §3 notes 80 GB devices, which is
the A100; Frontier uses AMD Instinct parts, represented by the MI100).
The host preset models a dual-socket server node.

The two efficiency knobs encode the paper's central §4/§5.4 asymmetry:

- ``dense_efficiency`` ≈ 0.8 — MAGMA dense solvers reach "approximately
  80 percent of the GPU's theoretical peak" (paper §4.1, citing [35]).
- ``sparse_efficiency`` — the fraction of peak sustained by irregular,
  divergent sparse kernels.  GPU sparse LU papers (GLU et al.) report a
  few percent of peak; CPUs tolerate irregularity far better, so the
  host's sparse efficiency is an order of magnitude higher *relative to
  its own peak*.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024 ** 3


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic model of one compute device (GPU or CPU host).

    ``parallel_lanes`` is the number of scalar fp64 lanes that must be
    occupied to reach peak; small kernels achieve a utilization of
    ``min(1, parallel_elements / parallel_lanes)``, which is what makes
    one small LP a poor GPU workload and a *batch* of them a good one
    (paper §5.5).
    """

    name: str
    #: Peak fp64 throughput in flop/s.
    peak_flops: float
    #: Main (HBM or DDR) memory bandwidth in B/s.
    mem_bandwidth: float
    #: Memory capacity in bytes.
    mem_capacity: int
    #: Latency to launch one kernel, seconds.
    kernel_launch_latency: float
    #: Latency of one intra-kernel device-wide synchronization point
    #: (pivot search, level barrier); far cheaper than a launch.
    sync_latency: float
    #: Fraction of peak sustained by dense regular kernels.
    dense_efficiency: float
    #: Fraction of peak sustained by sparse/divergent kernels.
    sparse_efficiency: float
    #: Scalar lanes needed for full utilization.
    parallel_lanes: int
    #: Maximum kernels that can make progress concurrently (streams).
    max_concurrent_kernels: int
    #: True for accelerator devices (data must be explicitly moved).
    is_accelerator: bool = True
    #: Board/package power while busy, watts (paper §2.2's efficiency
    #: argument: "GPUs offer more energy efficient computing").
    tdp_watts: float = 300.0

    def utilization(self, parallel_elements: int) -> float:
        """Fraction of lanes a kernel with this much parallelism fills."""
        if parallel_elements <= 0:
            return 1.0 / self.parallel_lanes
        return min(1.0, parallel_elements / self.parallel_lanes)

    def effective_flops(self, parallel_elements: int, sparse: bool = False) -> float:
        """Sustained flop/s for a kernel of given parallelism and kind."""
        eff = self.sparse_efficiency if sparse else self.dense_efficiency
        return self.peak_flops * eff * self.utilization(parallel_elements)


@dataclass(frozen=True)
class LinkSpec:
    """Host↔device (or device↔device) interconnect model."""

    name: str
    #: Per-transfer latency in seconds.
    latency: float
    #: Sustained bandwidth in B/s.
    bandwidth: float

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across this link."""
        return self.latency + nbytes / self.bandwidth


#: NVIDIA Tesla V100 (Summit's GPU): 7.8 TF fp64, 900 GB/s HBM2, 16 GB.
V100 = DeviceSpec(
    name="V100",
    peak_flops=7.8e12,
    mem_bandwidth=900e9,
    mem_capacity=16 * GIB,
    kernel_launch_latency=5e-6,
    sync_latency=0.5e-6,
    dense_efficiency=0.80,
    sparse_efficiency=0.05,
    parallel_lanes=2560 * 32,  # 2560 fp64 cores, ~32-deep latency hiding
    max_concurrent_kernels=32,
    tdp_watts=300.0,
)

#: NVIDIA A100 80GB: 9.7 TF fp64, 2.0 TB/s HBM2e — the "80GB" device of §3.
A100 = DeviceSpec(
    name="A100",
    peak_flops=9.7e12,
    mem_bandwidth=2.0e12,
    mem_capacity=80 * GIB,
    kernel_launch_latency=4e-6,
    sync_latency=0.4e-6,
    dense_efficiency=0.82,
    sparse_efficiency=0.06,
    parallel_lanes=3456 * 32,
    max_concurrent_kernels=32,
    tdp_watts=400.0,
)

#: AMD Instinct MI100: 11.5 TF fp64, 1.23 TB/s, 32 GB (Frontier-class part).
MI100 = DeviceSpec(
    name="MI100",
    peak_flops=11.5e12,
    mem_bandwidth=1.23e12,
    mem_capacity=32 * GIB,
    kernel_launch_latency=6e-6,
    sync_latency=0.6e-6,
    dense_efficiency=0.75,
    sparse_efficiency=0.05,
    parallel_lanes=7680 * 16,
    max_concurrent_kernels=32,
    tdp_watts=300.0,
)

#: Dual-socket 64-core host: ~2 TF fp64 peak, 400 GB/s, 512 GB DDR.
#: Sparse efficiency is 6× the GPU's *relative* value — CPUs tolerate
#: irregular access (the §5.4 / strategy-3 rationale).
CPU_HOST = DeviceSpec(
    name="CPU-host",
    peak_flops=2.0e12,
    mem_bandwidth=400e9,
    mem_capacity=512 * GIB,
    kernel_launch_latency=2e-7,
    sync_latency=2e-8,
    dense_efficiency=0.60,
    sparse_efficiency=0.30,
    parallel_lanes=64 * 8,  # 64 cores × 8-wide AVX-512 fp64
    max_concurrent_kernels=64,
    is_accelerator=False,
    tdp_watts=500.0,  # two 250 W sockets
)

#: PCIe gen3 x16: ~12 GB/s sustained, 10 µs latency.
PCIE3 = LinkSpec(name="PCIe3-x16", latency=10e-6, bandwidth=12e9)

#: PCIe gen4 x16: ~24 GB/s sustained.
PCIE4 = LinkSpec(name="PCIe4-x16", latency=8e-6, bandwidth=24e9)

#: NVLink 2.0 (Summit's CPU↔GPU link): 50 GB/s per direction per brick.
NVLINK = LinkSpec(name="NVLink2", latency=1.3e-6, bandwidth=50e9)

#: Inter-node network, Summit-class fat-tree EDR InfiniBand.
IB_EDR = LinkSpec(name="IB-EDR", latency=1.5e-6, bandwidth=12.5e9)
