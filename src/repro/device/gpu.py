"""The simulated device facade: resident arrays, streams, exact kernels.

:class:`Device` is what the LP/MIP stack programs against.  It plays the
role cuBLAS/cuSOLVER/MAGMA + the CUDA runtime play in the paper:

- data lives in *device arrays* whose bytes are accounted against the
  device's memory capacity (allocation fails with OOM, as strategy 1's
  tree-on-GPU eventually must);
- moving data in or out goes through the transfer engine and is counted
  (the §5.1–§5.3 transfer-minimization arguments become measurable);
- every operation computes its result **exactly** via :mod:`repro.la`
  and charges its roofline cost to the simulated clock;
- streams provide asynchronous launches with a work-and-span completion
  model: a sync completes at ``max(critical path, total work /
  max_concurrent_kernels)`` — which is how real concurrent kernels
  saturate a GPU (paper §5.5).

A `Device` constructed from :data:`repro.device.spec.CPU_HOST` models the
host itself: transfers are free and uncounted (data is already in host
memory), which lets one solver code path serve both paper strategies.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.device.clock import SimClock
from repro.device import kernels as K
from repro.device.memory import MemoryPool
from repro.device.spec import PCIE3, DeviceSpec, LinkSpec
from repro.device.transfer import TransferEngine
from repro.errors import InvalidHandleError, StreamError
from repro.faults.injector import active as fault_active
from repro.la import flops as F
from repro.la.batch import batched_cholesky, batched_lu_factor, batched_lu_solve
from repro.la.dense import LUFactors, lu_factor, lu_solve
from repro.la.sparse import CSCMatrix, CSRMatrix
from repro.la.sparse_lu import SparseLU, sparse_lu_factor
from repro.la.updates import ProductFormInverse
from repro.metrics import Metrics
from repro import obs

#: Distinguishes concurrently live devices on the shared obs timeline.
_DEVICE_SEQ = itertools.count()

Payload = Union[np.ndarray, CSRMatrix, CSCMatrix, LUFactors, SparseLU, ProductFormInverse, Tuple]


def payload_nbytes(payload: Payload) -> int:
    """Device-memory footprint of a payload, in bytes."""
    if isinstance(payload, np.ndarray):
        return int(payload.size) * 8
    if isinstance(payload, (CSRMatrix, CSCMatrix)):
        return F.csr_bytes(payload.shape[0], payload.nnz)
    if isinstance(payload, LUFactors):
        return int(payload.lu.size) * 8 + int(payload.piv.size) * 8
    if isinstance(payload, SparseLU):
        return F.csr_bytes(payload.n, payload.factor_nnz) + payload.n * 8
    if isinstance(payload, ProductFormInverse):
        n = payload.n
        return n * n * 8 + payload.num_etas * (n + 1) * 8
    if isinstance(payload, tuple):
        return sum(payload_nbytes(p) for p in payload)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class DeviceArray:
    """Handle to a payload resident in a device's memory."""

    __slots__ = ("device", "handle", "payload", "nbytes", "_alive")

    def __init__(self, device: "Device", handle: int, payload: Payload, nbytes: int):
        self.device = device
        self.handle = handle
        self.payload = payload
        self.nbytes = nbytes
        self._alive = True

    @property
    def alive(self) -> bool:
        """False once freed."""
        return self._alive

    def require_on(self, device: "Device") -> None:
        """Raise unless this array is live and resident on ``device``."""
        if not self._alive:
            raise InvalidHandleError("device array used after free")
        if self.device is not device:
            raise InvalidHandleError(
                f"array resident on {self.device.spec.name}, "
                f"operation issued on {device.spec.name}"
            )


class Stream:
    """An ordered queue of kernel launches on one device."""

    __slots__ = ("device", "sid", "ready")

    def __init__(self, device: "Device", sid: int):
        self.device = device
        self.sid = sid
        #: Absolute simulated time at which this stream's last kernel ends.
        self.ready = device.clock.now


class Device:
    """One simulated compute device (GPU accelerator or CPU host)."""

    def __init__(
        self,
        spec: DeviceSpec,
        link: LinkSpec = PCIE3,
        clock: Optional[SimClock] = None,
        metrics: Optional[Metrics] = None,
    ):
        self.spec = spec
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics if metrics is not None else Metrics()
        self.memory = MemoryPool(spec.mem_capacity)
        self.transfers = TransferEngine(link, self.clock, self.metrics)
        #: Row name on the unified obs timeline (override for stable labels).
        self.obs_track = f"{spec.name}#{next(_DEVICE_SEQ)}"
        self.transfers.track_of = lambda: self.obs_track
        self._streams: List[Stream] = []
        self._epoch_start = self.clock.now
        self._epoch_work = 0.0

    # -- memory & transfers --------------------------------------------------

    def alloc(self, payload: Payload, nbytes: Optional[int] = None) -> DeviceArray:
        """Place a payload in device memory without any transfer cost.

        Used for results produced *on* the device; raises
        :class:`repro.errors.DeviceMemoryError` when capacity is exceeded.
        """
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        handle = self.memory.alloc(size)
        self.metrics.inc("device.allocs")
        return DeviceArray(self, handle, payload, size)

    def upload(self, payload: Payload) -> DeviceArray:
        """Copy host data to the device (charged unless this is the host)."""
        arr = self.alloc(payload)
        if self.spec.is_accelerator:
            self.transfers.host_to_device(arr.nbytes)
        return arr

    def download(self, arr: DeviceArray) -> Payload:
        """Copy a device payload back to the host (charged on accelerators)."""
        arr.require_on(self)
        if self.spec.is_accelerator:
            self.transfers.device_to_host(arr.nbytes)
        return arr.payload

    def free(self, arr: DeviceArray) -> None:
        """Release a device array's memory."""
        arr.require_on(self)
        self.memory.freeing(arr.handle)
        arr._alive = False

    # -- streams & launch accounting ------------------------------------------

    def create_stream(self) -> Stream:
        """Create a new asynchronous stream."""
        stream = Stream(self, len(self._streams))
        self._streams.append(stream)
        return stream

    def _charge(self, cost: K.KernelCost, stream: Optional[Stream]) -> float:
        duration = cost.duration(self.spec)
        injector = fault_active()
        if injector is not None:
            # Failed launches retry in place; their partial work plus
            # backoff rides on top of the successful launch.  Raises a
            # FaultError (unrecoverable) before anything is charged.
            wasted = injector.kernel_attempt(cost, self.spec)
            if wasted:
                self.metrics.inc("faults.kernel_retries")
                self.metrics.add_time("time.fault.kernel", wasted)
                duration += wasted
        self.metrics.inc(f"kernels.{cost.name}")
        self.metrics.inc("kernels.total")
        self.metrics.add_time(f"time.kernel.{cost.name}", duration)
        self.metrics.add_time("time.kernel", duration)
        if stream is None:
            # Synchronous launch: the host waits for completion.
            start = self.clock.now
            self.clock.advance(duration)
        else:
            if stream.device is not self:
                raise StreamError("stream belongs to a different device")
            start = max(stream.ready, self.clock.now)
            stream.ready = start + duration
            self._epoch_work += duration
        tracer = obs.active()
        if tracer is not None:
            tracer.sim_span(
                cost.name, start, duration, self.obs_track, category="kernel"
            )
        return duration

    def synchronize(self) -> float:
        """Block until all streams drain; returns the new simulated time.

        Completion time is ``max(span, work / max_concurrent_kernels)``
        measured from the epoch start — full overlap while concurrency
        lasts, throughput-bound once the device saturates.
        """
        span_end = max([self.clock.now] + [s.ready for s in self._streams])
        throughput_end = self._epoch_start + self._epoch_work / self.spec.max_concurrent_kernels
        end = max(span_end, throughput_end)
        self.clock.advance_to(end)
        for stream in self._streams:
            stream.ready = end
        self._epoch_start = end
        self._epoch_work = 0.0
        return end

    # -- dense kernels --------------------------------------------------------

    def gemm(self, a: DeviceArray, b: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """C = A @ B on device."""
        a.require_on(self)
        b.require_on(self)
        m, k = a.payload.shape
        k2, n = b.payload.shape
        self._charge(K.gemm_kernel(m, n, k), stream)
        return self.alloc(a.payload @ b.payload)

    def gemv(self, a: DeviceArray, x: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """y = A @ x on device."""
        a.require_on(self)
        x.require_on(self)
        m, n = a.payload.shape
        self._charge(K.gemv_kernel(m, n), stream)
        return self.alloc(a.payload @ x.payload)

    def dot(self, x: DeviceArray, y: DeviceArray, stream: Optional[Stream] = None) -> float:
        """Scalar x·y.

        The scalar lands in pinned host memory as part of the kernel
        (cublas*Dot semantics); it is not counted as a matrix transfer.
        """
        x.require_on(self)
        y.require_on(self)
        self._charge(K.dot_kernel(x.payload.shape[0]), stream)
        return float(x.payload @ y.payload)

    def axpy(self, alpha: float, x: DeviceArray, y: DeviceArray, stream: Optional[Stream] = None) -> None:
        """In-place y += alpha·x on device."""
        x.require_on(self)
        y.require_on(self)
        self._charge(K.axpy_kernel(x.payload.shape[0]), stream)
        y.payload += alpha * x.payload

    def lu_factor(self, a: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """Dense LU factorization (cusolverDnDgetrf analogue)."""
        a.require_on(self)
        n = a.payload.shape[0]
        self._charge(K.getrf_kernel(n), stream)
        return self.alloc(lu_factor(a.payload))

    def lu_solve(
        self,
        factors: DeviceArray,
        b: DeviceArray,
        transposed: bool = False,
        stream: Optional[Stream] = None,
    ) -> DeviceArray:
        """Dense LU solve (two triangular solves)."""
        factors.require_on(self)
        b.require_on(self)
        n = factors.payload.n
        self._charge(K.trsv_kernel(n), stream)
        self._charge(K.trsv_kernel(n), stream)
        return self.alloc(lu_solve(factors.payload, b.payload, transposed=transposed))

    # -- product-form-of-inverse (basis management, §5.1) ----------------------

    def pfi_create(self, basis_matrix: DeviceArray) -> DeviceArray:
        """Factor a basis matrix into a device-resident PFI object."""
        basis_matrix.require_on(self)
        n = basis_matrix.payload.shape[0]
        self._charge(K.getrf_kernel(n), None)
        return self.alloc(ProductFormInverse(basis_matrix.payload))

    def pfi_ftran(self, pfi: DeviceArray, b: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """Solve B x = b with the resident PFI: LU solve + fused eta chain."""
        pfi.require_on(self)
        b.require_on(self)
        obj: ProductFormInverse = pfi.payload
        self._charge(K.trsv_kernel(obj.n), stream)
        self._charge(K.trsv_kernel(obj.n), stream)
        if obj.num_etas:
            self._charge(K.eta_chain_kernel(obj.n, obj.num_etas), stream)
        return self.alloc(obj.ftran(b.payload))

    def pfi_btran(self, pfi: DeviceArray, c: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """Solve Bᵀ y = c with the resident PFI."""
        pfi.require_on(self)
        c.require_on(self)
        obj: ProductFormInverse = pfi.payload
        if obj.num_etas:
            self._charge(K.eta_chain_kernel(obj.n, obj.num_etas), stream)
        self._charge(K.trsv_kernel(obj.n), stream)
        self._charge(K.trsv_kernel(obj.n), stream)
        return self.alloc(obj.btran(c.payload))

    def pfi_update(self, pfi: DeviceArray, ftran_col: DeviceArray, pos: int) -> None:
        """Append one eta (a rank-1 basis change) — zero transfers.

        This is the paper's §5.1 inner loop: resident data, O(n) work.
        """
        pfi.require_on(self)
        ftran_col.require_on(self)
        obj: ProductFormInverse = pfi.payload
        obj.update(ftran_col.payload, pos)
        self._charge(K.axpy_kernel(obj.n), None)
        grow = (obj.n + 1) * 8
        self.memory.freeing(pfi.handle)
        pfi.handle = self.memory.alloc(pfi.nbytes + grow)
        pfi.nbytes += grow
        self.metrics.inc("pfi.updates")

    def pfi_refactorize(self, pfi: DeviceArray, basis_matrix: DeviceArray) -> None:
        """Refactorize the resident basis, dropping the eta chain."""
        pfi.require_on(self)
        basis_matrix.require_on(self)
        obj: ProductFormInverse = pfi.payload
        self._charge(K.getrf_kernel(obj.n), None)
        obj.refactorize(basis_matrix.payload)
        new_bytes = payload_nbytes(obj)
        self.memory.freeing(pfi.handle)
        pfi.handle = self.memory.alloc(new_bytes)
        pfi.nbytes = new_bytes
        self.metrics.inc("pfi.refactorizations")

    # -- sparse kernels ---------------------------------------------------------

    def spmv(self, a: DeviceArray, x: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """CSR sparse matrix-vector product."""
        a.require_on(self)
        x.require_on(self)
        csr: CSRMatrix = a.payload
        self._charge(K.spmv_kernel(csr.shape[0], csr.nnz), stream)
        return self.alloc(csr.matvec(x.payload))

    def sparse_lu(self, a: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """Level-scheduled sparse LU (GLU analogue)."""
        a.require_on(self)
        csc: CSCMatrix = a.payload
        factors = sparse_lu_factor(csc)
        self._charge(
            K.sparse_getrf_kernel(csc.shape[0], factors.factor_nnz, factors.num_levels),
            stream,
        )
        return self.alloc(factors)

    def sparse_solve(self, factors: DeviceArray, b: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """Sparse triangular solves from a resident sparse LU."""
        factors.require_on(self)
        b.require_on(self)
        slu: SparseLU = factors.payload
        self._charge(K.sparse_trsv_kernel(slu.n, slu.l.nnz, slu.num_levels), stream)
        self._charge(K.sparse_trsv_kernel(slu.n, slu.u.nnz, slu.num_levels), stream)
        return self.alloc(slu.solve(b.payload))

    # -- batched kernels (MAGMA analogue, §4.3/§5.5) -----------------------------

    def batched_lu_factor(self, batch: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """One launch factoring a (k, n, n) batch."""
        batch.require_on(self)
        k, n, _ = batch.payload.shape
        self._charge(K.batched_getrf_kernel(k, n), stream)
        return self.alloc(batched_lu_factor(batch.payload))

    def batched_lu_solve(self, factors: DeviceArray, b: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """One launch solving a (k, n) batch of right-hand sides."""
        factors.require_on(self)
        b.require_on(self)
        lu, piv = factors.payload
        k, n = b.payload.shape
        self._charge(K.batched_trsv_kernel(k, n), stream)
        self._charge(K.batched_trsv_kernel(k, n), stream)
        return self.alloc(batched_lu_solve(lu, piv, b.payload))

    def batched_cholesky(self, batch: DeviceArray, stream: Optional[Stream] = None) -> DeviceArray:
        """One launch Cholesky-factoring a (k, n, n) batch."""
        batch.require_on(self)
        k, n, _ = batch.payload.shape
        self._charge(K.batched_potrf_kernel(k, n), stream)
        return self.alloc(batched_cholesky(batch.payload))

    # -- introspection ----------------------------------------------------------

    @property
    def busy_seconds(self) -> float:
        """Total simulated seconds the device spent executing kernels."""
        return self.metrics.time("time.kernel")

    @property
    def energy_joules(self) -> float:
        """Busy-time energy at the device's TDP (paper §2.2).

        Idle power is excluded: the comparison of interest is energy per
        unit of useful work across devices/strategies.
        """
        return self.busy_seconds * self.spec.tdp_watts

    def kernel_count(self, name: Optional[str] = None) -> int:
        """Launched kernels (of one name, or total)."""
        key = "kernels.total" if name is None else f"kernels.{name}"
        return self.metrics.count(key)

    def summary(self) -> Dict[str, float]:
        """Headline accounting for reports."""
        return {
            "sim_time_s": self.clock.now,
            "kernels": self.metrics.count("kernels.total"),
            "h2d": self.metrics.count("transfers.h2d"),
            "d2h": self.metrics.count("transfers.d2h"),
            "bytes_moved": self.transfers.total_bytes,
            "mem_peak_bytes": self.memory.peak,
            "energy_joules": self.energy_joules,
        }
