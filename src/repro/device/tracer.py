"""Operation tracing for the simulated device.

Attach a :class:`Tracer` to a :class:`repro.device.gpu.Device` and every
kernel launch and transfer is recorded with its simulated start time and
duration — the nvprof-style timeline a performance engineer would read.
``utilization_report`` aggregates busy time per kernel class, which the
ablation benches use to attribute where a strategy's time went.

This device-local tracer predates :mod:`repro.obs` and is kept for the
benches that want one device's events in isolation.  When an obs tracer
is active (``repro.obs.tracing()``), every device already emits the
same kernel/transfer events onto the unified timeline natively — no
wrapping needed; :meth:`Tracer.export_to` bridges the other direction,
replaying an existing device-local capture into an obs tracer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.gpu import Device
from repro.device import kernels as K


@dataclass(frozen=True)
class TraceEvent:
    """One recorded operation."""

    kind: str  # "kernel" | "h2d" | "d2h"
    name: str
    start: float
    duration: float
    nbytes: int = 0

    @property
    def end(self) -> float:
        """Completion time."""
        return self.start + self.duration


class Tracer:
    """Records a device's operations by wrapping its charge/transfer paths."""

    def __init__(self, device: Device):
        self.device = device
        self.events: List[TraceEvent] = []
        self._orig_charge = device._charge
        self._orig_h2d = device.transfers.host_to_device
        self._orig_d2h = device.transfers.device_to_host
        device._charge = self._charge  # type: ignore[method-assign]
        device.transfers.host_to_device = self._h2d  # type: ignore[method-assign]
        device.transfers.device_to_host = self._d2h  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the device's original methods."""
        self.device._charge = self._orig_charge  # type: ignore[method-assign]
        self.device.transfers.host_to_device = self._orig_h2d  # type: ignore[method-assign]
        self.device.transfers.device_to_host = self._orig_d2h  # type: ignore[method-assign]

    # -- wrapped paths -----------------------------------------------------------

    def _charge(self, cost: K.KernelCost, stream) -> float:
        start = self.device.clock.now if stream is None else max(
            stream.ready, self.device.clock.now
        )
        duration = self._orig_charge(cost, stream)
        self.events.append(
            TraceEvent(kind="kernel", name=cost.name, start=start, duration=duration)
        )
        return duration

    def _h2d(self, nbytes: int) -> float:
        start = self.device.clock.now
        seconds = self._orig_h2d(nbytes)
        self.events.append(
            TraceEvent(kind="h2d", name="h2d", start=start, duration=seconds, nbytes=nbytes)
        )
        return seconds

    def _d2h(self, nbytes: int) -> float:
        start = self.device.clock.now
        seconds = self._orig_d2h(nbytes)
        self.events.append(
            TraceEvent(kind="d2h", name="d2h", start=start, duration=seconds, nbytes=nbytes)
        )
        return seconds

    # -- analysis -----------------------------------------------------------------

    def export_to(self, tracer) -> int:
        """Replay the captured events into a :class:`repro.obs.Tracer`.

        Kernel events land with category ``"kernel"``, transfers with
        ``"transfer"``, all on this device's obs track.  Returns the
        number of spans exported.
        """
        track = self.device.obs_track
        for event in self.events:
            category = "kernel" if event.kind == "kernel" else "transfer"
            attrs = {"nbytes": event.nbytes} if event.nbytes else {}
            tracer.sim_span(
                event.name, event.start, event.duration, track,
                category=category, **attrs,
            )
        return len(self.events)

    def utilization_report(self) -> Dict[str, float]:
        """Busy simulated seconds per operation name."""
        busy: Dict[str, float] = {}
        for event in self.events:
            busy[event.name] = busy.get(event.name, 0.0) + event.duration
        return busy

    def total_transfer_bytes(self) -> int:
        """Bytes moved in either direction while traced."""
        return sum(e.nbytes for e in self.events if e.kind in ("h2d", "d2h"))

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable event list (first ``limit`` events)."""
        rows = self.events if limit is None else self.events[:limit]
        lines = [
            f"{e.start * 1e6:12.2f} µs  {e.kind:6s} {e.name:16s} "
            f"{e.duration * 1e6:10.2f} µs" + (f"  {e.nbytes} B" if e.nbytes else "")
            for e in rows
        ]
        return "\n".join(lines)
