"""Simulated accelerator substrate.

No GPU is available in this environment, so the paper's platform
(V100-class accelerators, CUDA streams, PCIe/NVLink links) is replaced by
a calibrated analytic model (see DESIGN.md's substitution table):

- :mod:`repro.device.spec` — device/host/link presets with published
  peak-rate numbers (V100, A100, MI100, a 2×32-core host).
- :mod:`repro.device.clock` — monotone simulated clock.
- :mod:`repro.device.memory` — capacity-accounted allocator with OOM.
- :mod:`repro.device.transfer` — host↔device transfer engine that counts
  and prices every byte moved (paper §4.3/§5.1–5.3 are about these).
- :mod:`repro.device.kernels` — roofline cost model for each kernel the
  MIP solver issues (GEMM, GETRF, TRSV, SpMV, batched, sparse LU).
- :mod:`repro.device.gpu` — the `Device` facade: device-resident arrays,
  streams, and numerically exact kernel execution with simulated timing.

All numerics are computed exactly with :mod:`repro.la`; only *time* is
simulated, using a work-and-span model (elapsed = max(critical path,
total work / concurrency)) so stream overlap behaves like real hardware.
"""

from repro.device.clock import SimClock
from repro.device.gpu import Device, DeviceArray, Stream
from repro.device.group import DeviceGroup, allreduce_seconds
from repro.device.tracer import TraceEvent, Tracer
from repro.device.memory import MemoryPool
from repro.device.spec import (
    A100,
    CPU_HOST,
    MI100,
    NVLINK,
    PCIE3,
    PCIE4,
    DeviceSpec,
    LinkSpec,
    V100,
)
from repro.device.transfer import TransferEngine

__all__ = [
    "SimClock",
    "MemoryPool",
    "TransferEngine",
    "Device",
    "DeviceArray",
    "Stream",
    "DeviceGroup",
    "allreduce_seconds",
    "Tracer",
    "TraceEvent",
    "DeviceSpec",
    "LinkSpec",
    "V100",
    "A100",
    "MI100",
    "CPU_HOST",
    "PCIE3",
    "PCIE4",
    "NVLINK",
]
